"""Kernel compilation benchmark (§4.2.1).

"Represents file system usage in a software development environment,
similar to the Andrew benchmark.  The kernel is a Red Hat Linux 2.4.18,
and the compilation consists of four major steps, 'make dep', 'make
bzImage', 'make modules' and 'make modules_install', which involve
substantial reads and writes on a large number of files."

The model spreads the source tree over many guest files so the
many-small-file open/stat pattern (LOOKUP/GETATTR storms over the WAN)
and the source-read + object-write mix both appear.  Two consecutive
runs reproduce Figure 5's cold/warm pair: the second run's reads come
mostly from the guest page cache, leaving write traffic and attribute
revalidation as the remaining overhead.
"""

from __future__ import annotations

from typing import List

from repro.vm.image import GuestFile
from repro.workloads.base import ComputeStep, Phase, ReadStep, Workload, WriteStep

__all__ = ["KernelCompile"]

KB = 1024
MB = 1024 * 1024


class KernelCompile(Workload):
    """The 4-step Red Hat 2.4.18 kernel build."""

    #: Number of modelled source groups (the real tree's ~10k files are
    #: grouped into compilation units to keep step counts tractable
    #: while preserving the bytes moved and the open/stat pattern).
    SOURCE_GROUPS = 160
    GROUP_BYTES = 1 * MB          # ~160 MB of source + headers read
    OBJECT_GROUPS = 120
    OBJECT_BYTES = 512 * KB       # ~60 MB of objects written

    def __init__(self):
        sources = [GuestFile(f"usr/src/linux/group{i:03d}", self.GROUP_BYTES)
                   for i in range(self.SOURCE_GROUPS)]
        objects = [GuestFile(f"usr/src/linux/obj{i:03d}.o", self.OBJECT_BYTES)
                   for i in range(self.OBJECT_GROUPS)]
        modules = [GuestFile(f"usr/src/linux/mod{i:03d}.o", self.OBJECT_BYTES)
                   for i in range(self.OBJECT_GROUPS // 2)]
        installed = [GuestFile(f"lib/modules/2.4.18/m{i:03d}.o",
                               self.OBJECT_BYTES)
                     for i in range(self.OBJECT_GROUPS // 2)]

        dep_steps: List = []
        for src in sources:
            dep_steps.append(ReadStep(src, fraction=0.5))  # header scanning
            dep_steps.append(ComputeStep(0.6))
        dep_steps.append(WriteStep(GuestFile("usr/src/linux/.depend", 4 * MB)))

        bzimage_steps: List = []
        for i, src in enumerate(sources[: self.SOURCE_GROUPS // 2]):
            bzimage_steps.append(ReadStep(src))
            bzimage_steps.append(ComputeStep(9.0))
            if i % 2 == 0:
                bzimage_steps.append(WriteStep(objects[i // 2]))
        bzimage_steps.append(WriteStep(GuestFile("usr/src/linux/bzImage",
                                                 1 * MB)))

        modules_steps: List = []
        for i, src in enumerate(sources[self.SOURCE_GROUPS // 2:]):
            modules_steps.append(ReadStep(src))
            modules_steps.append(ComputeStep(8.0))
            if i % 2 == 0:
                modules_steps.append(WriteStep(modules[i // 2 % len(modules)]))

        install_steps: List = []
        for i, mod in enumerate(modules):
            install_steps.append(ReadStep(mod))
            install_steps.append(WriteStep(installed[i]))
            install_steps.append(ComputeStep(0.4))

        # Compiler processes are memory-hungry: little guest RAM is left
        # for page cache, so cross-run re-reads leave the VM and hit the
        # (proxy-cacheable) distributed file system.
        super().__init__("kernel-compile", [
            Phase("make dep", dep_steps),
            Phase("make bzImage", bzimage_steps),
            Phase("make modules", modules_steps),
            Phase("make modules_install", install_steps),
        ], guest_cache_bytes=48 * MB)
