"""Guest I/O trace recording and replay.

Middleware that wants to "accumulate knowledge for applications from
their past behaviors" (§3.2.2) needs a record of what an application
actually did.  :class:`TraceRecorder` wraps a running VM and records
every guest-level operation (file reads/writes with their sizes,
compute bursts); the resulting :class:`IoTrace` serializes to bytes and
replays as an ordinary :class:`~repro.workloads.base.Workload`, so a
captured session can be re-run under any scenario — e.g. to evaluate a
cache configuration against a real workload without re-running the
application.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Generator, List

from repro.vm.image import GuestFile
from repro.vm.monitor import VirtualMachine
from repro.workloads.base import (
    ComputeStep,
    Phase,
    ReadStep,
    Workload,
    WriteStep,
)

__all__ = ["IoTrace", "TraceEvent", "TraceRecorder", "trace_to_workload"]

_MAGIC = "GVFS-TRACE-1"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded guest operation."""

    kind: str                 # "read" | "write" | "compute"
    name: str = ""            # guest file name (read/write)
    size: int = 0             # guest file size in bytes (read/write)
    fraction: float = 1.0     # prefix fraction accessed
    seconds: float = 0.0      # CPU time (compute)


@dataclass
class IoTrace:
    """An ordered trace of guest operations."""

    application: str
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def n_events(self) -> int:
        return len(self.events)

    def bytes_read(self) -> int:
        return sum(int(e.size * e.fraction) for e in self.events
                   if e.kind == "read")

    def bytes_written(self) -> int:
        return sum(int(e.size * e.fraction) for e in self.events
                   if e.kind == "write")

    def compute_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.kind == "compute")

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        doc = {"application": self.application,
               "events": [[e.kind, e.name, e.size, e.fraction, e.seconds]
                          for e in self.events]}
        return (_MAGIC + "\n" + json.dumps(doc, separators=(",", ":"))).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IoTrace":
        text = raw.decode()
        magic, _, body = text.partition("\n")
        if magic != _MAGIC:
            raise ValueError(f"bad trace magic: {magic!r}")
        doc = json.loads(body)
        return cls(application=doc["application"],
                   events=[TraceEvent(kind=k, name=n, size=s, fraction=f,
                                      seconds=c)
                           for k, n, s, f, c in doc["events"]])


class TraceRecorder:
    """A recording wrapper with the VirtualMachine guest-I/O surface.

    Run a workload against the recorder instead of the bare VM; every
    operation is recorded *and* forwarded, so timing is unchanged.
    """

    def __init__(self, vm: VirtualMachine, application: str):
        self.vm = vm
        self.env = vm.env
        self.trace = IoTrace(application=application)

    # The workload framework only touches these four members.
    @property
    def host(self):
        return self.vm.host

    def read_guest_file(self, gf: GuestFile,
                        fraction: float = 1.0) -> Generator:
        self.trace.events.append(TraceEvent("read", gf.name, gf.size,
                                            fraction))
        yield from self.vm.read_guest_file(gf, fraction)

    def write_guest_file(self, gf: GuestFile, fraction: float = 1.0,
                         sync: bool = False) -> Generator:
        self.trace.events.append(TraceEvent("write", gf.name, gf.size,
                                            fraction))
        yield from self.vm.write_guest_file(gf, fraction, sync)

    def compute(self, cpu_seconds: float):
        self.trace.events.append(TraceEvent("compute", seconds=cpu_seconds))
        return self.vm.compute(cpu_seconds)


def trace_to_workload(trace: IoTrace, phase_name: str = "replay") -> Workload:
    """Convert a recorded trace into a replayable workload."""
    steps = []
    for event in trace.events:
        if event.kind == "read":
            steps.append(ReadStep(GuestFile(event.name, event.size),
                                  event.fraction))
        elif event.kind == "write":
            steps.append(WriteStep(GuestFile(event.name, event.size),
                                   event.fraction))
        elif event.kind == "compute":
            steps.append(ComputeStep(event.seconds))
        else:
            raise ValueError(f"unknown trace event kind: {event.kind!r}")
    return Workload(f"{trace.application}-replay",
                    [Phase(phase_name, steps)])
