"""Application workload models (§4.2.1).

Each benchmark is expressed as phases of guest-level work — computation
on the VM's vCPU, reads/writes of guest files that the VM maps onto its
virtual disk — so a workload runs *inside* the VM model and its I/O
flows through whichever GVFS scenario the VM was instantiated on.

The three benchmarks reproduce the paper's suite:

* :class:`~repro.workloads.specseis.SpecSeis` — 4-phase seismic
  processing, I/O-intensive (phase 1 creates a large trace file) and
  compute-intensive (phase 4);
* :class:`~repro.workloads.latex.LatexBenchmark` — 20 interactive
  edit/compile iterations of a 190-page document;
* :class:`~repro.workloads.kernelcompile.KernelCompile` — the 4-step
  Red Hat 2.4.18 build, many-small-file reads and writes.
"""

from repro.workloads.base import (
    ComputeStep,
    Phase,
    PhaseResult,
    ReadStep,
    Workload,
    WorkloadResult,
    WriteStep,
)
from repro.workloads.specseis import SpecSeis
from repro.workloads.latex import LatexBenchmark
from repro.workloads.kernelcompile import KernelCompile
from repro.workloads.traces import (
    IoTrace,
    TraceEvent,
    TraceRecorder,
    trace_to_workload,
)

__all__ = [
    "ComputeStep",
    "IoTrace",
    "KernelCompile",
    "LatexBenchmark",
    "Phase",
    "PhaseResult",
    "ReadStep",
    "SpecSeis",
    "TraceEvent",
    "TraceRecorder",
    "Workload",
    "WorkloadResult",
    "WriteStep",
    "trace_to_workload",
]
