"""SPECseis96 model (§4.2.1).

"It consists of four phases, where the first phase generates a large
trace file on disk, and the last phase involves intensive seismic
processing computations. ... It models a scientific application that is
both I/O intensive and compute intensive."  Run sequentially with the
small dataset on a 1.1 GHz PIII-class node.

Phase structure (sizes for the *small* dataset, CPU at the reference
node's speed):

1. data generation — writes the large trace file (dominated by write
   bandwidth; this is where write-back caching wins a factor ~2);
2. stacking — reads the trace once, moderate CPU, small outputs;
3. time migration — re-reads part of the trace, moderate CPU;
4. depth migration — intensive computation, negligible I/O (within
   10 % across all scenarios in the paper).
"""

from __future__ import annotations

from repro.vm.image import GuestFile
from repro.workloads.base import ComputeStep, Phase, ReadStep, Workload, WriteStep

__all__ = ["SpecSeis"]

MB = 1024 * 1024


class SpecSeis(Workload):
    """The 4-phase SPECseis96 benchmark (sequential, small dataset)."""

    #: The large trace file phase 1 creates and later phases consume.
    TRACE_BYTES = 60 * MB
    #: Static input dataset read by phase 1.
    INPUT_BYTES = 40 * MB

    def __init__(self):
        trace = GuestFile("specseis/trace.data", self.TRACE_BYTES)
        stack = GuestFile("specseis/stack.out", 12 * MB)
        migrate = GuestFile("specseis/migrate.out", 10 * MB)
        inputs = GuestFile("specseis/input.geo", self.INPUT_BYTES)
        final = GuestFile("specseis/depth.out", 6 * MB)
        super().__init__("SPECseis96", [
            Phase("phase1", [
                ReadStep(inputs),
                ComputeStep(95.0),
                WriteStep(trace),
            ]),
            Phase("phase2", [
                ReadStep(trace, fraction=0.6),
                ComputeStep(130.0),
                WriteStep(stack),
            ]),
            Phase("phase3", [
                ReadStep(trace, fraction=0.4),
                ReadStep(stack),
                ComputeStep(160.0),
                WriteStep(migrate),
            ]),
            Phase("phase4", [
                ReadStep(migrate),
                ComputeStep(430.0),
                WriteStep(final),
            ]),
        ], guest_cache_bytes=128 * MB)  # solver arrays squeeze the cache
