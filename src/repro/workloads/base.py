"""Workload framework: phases of typed steps replayed inside a VM."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence, Union

from repro.vm.image import GuestFile
from repro.vm.monitor import VirtualMachine

__all__ = [
    "ComputeStep",
    "Phase",
    "PhaseResult",
    "ReadStep",
    "Step",
    "Workload",
    "WorkloadResult",
    "WriteStep",
]


@dataclass(frozen=True)
class ComputeStep:
    """Burn guest CPU for ``seconds`` (at reference-host speed)."""

    seconds: float


@dataclass(frozen=True)
class ReadStep:
    """Read a prefix ``fraction`` of ``gfile`` from the guest."""

    gfile: GuestFile
    fraction: float = 1.0


@dataclass(frozen=True)
class WriteStep:
    """Write a prefix ``fraction`` of ``gfile`` from the guest."""

    gfile: GuestFile
    fraction: float = 1.0


Step = Union[ComputeStep, ReadStep, WriteStep]


@dataclass(frozen=True)
class Phase:
    """A named list of steps timed as one unit (a figure's bar segment)."""

    name: str
    steps: Sequence[Step]


@dataclass(frozen=True)
class PhaseResult:
    name: str
    seconds: float


@dataclass(frozen=True)
class WorkloadResult:
    workload: str
    phases: List[PhaseResult]

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def phase_seconds(self, name: str) -> float:
        for p in self.phases:
            if p.name == name:
                return p.seconds
        raise KeyError(name)


class Workload:
    """A replayable benchmark: an ordered list of phases.

    ``guest_cache_bytes`` caps the VM's usable page cache while this
    workload runs: applications with large resident sets (compilers)
    squeeze the guest's page cache, pushing re-reads out of the VM and
    onto the (proxy-cacheable) file system path — the effect behind
    Figure 5's warm-run WAN/WAN+C divergence.
    """

    def __init__(self, name: str, phases: Sequence[Phase],
                 guest_cache_bytes: int = None):
        self.name = name
        self.phases = list(phases)
        self.guest_cache_bytes = guest_cache_bytes

    def run(self, vm: VirtualMachine) -> Generator:
        """Process: execute every phase in ``vm``; returns WorkloadResult."""
        results: List[PhaseResult] = []
        for phase in self.phases:
            start = vm.env.now
            for step in phase.steps:
                yield vm.env.process(self._execute(vm, step))
            results.append(PhaseResult(phase.name, vm.env.now - start))
        return WorkloadResult(self.name, results)

    def _execute(self, vm: VirtualMachine, step: Step) -> Generator:
        if isinstance(step, ComputeStep):
            yield vm.compute(step.seconds)
        elif isinstance(step, ReadStep):
            yield vm.env.process(vm.read_guest_file(step.gfile, step.fraction))
        elif isinstance(step, WriteStep):
            yield vm.env.process(vm.write_guest_file(step.gfile, step.fraction))
        else:
            raise TypeError(f"unknown step type: {step!r}")

    @property
    def total_compute_seconds(self) -> float:
        """Pure-CPU lower bound (for sanity checks in tests)."""
        return sum(s.seconds for p in self.phases for s in p.steps
                   if isinstance(s, ComputeStep))
