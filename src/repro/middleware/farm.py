"""Sharded, replicated image-server farm: the namenode/datanode split.

The paper stores every golden image on one image server (§3.2.3); this
module refactors that origin tier into a *farm* in the H(M)DFS style:

- :class:`MetadataService` — the namenode.  Maps ``(fileid, chunk
  range)`` keys to ``replication`` data servers with deterministic
  rendezvous placement (same seed ⇒ same map), retires crashed servers
  from every placement, and mirrors namespace mutations so all live
  replicas export an identical tree (same creation order ⇒ same
  fileids, so one NFS file handle resolves on any replica).
- :class:`DataServerNode` — one datanode: a host with its own access
  link (:meth:`~repro.net.topology.Testbed.add_origin_pool`) running a
  :class:`~repro.core.session.ServerEndpoint` (kernel NFS server +
  record-mode checksum proxy) over a full copy of the namespace and
  the replica ranges it owns.
- :class:`ImageFarm` — the farm façade: provisions the pool, ingests
  golden images onto every replica (digests persisted beside each
  image via ``ChecksumRegistry.save``), re-replicates lost ranges when
  a server crashes, and audits acknowledged writes after a run.
- :class:`FarmOriginClient` — the client-side origin selector that
  plugs into the ``UpstreamRpcLayer`` seam (it *is* the session's
  upstream RPC client): reads resolve to a replica owning the block
  and fail over on crash; writes fan out to every live owner and are
  acknowledged when at least one replica has them; namespace
  mutations serialize through the primary and mirror to the rest.
- :class:`FarmChannelSelector` — the whole-file counterpart for the
  ``FileChannelLayer`` seam: fetches route to a live replica, flush
  uploads replicate to all of them.

Failure handling follows PR 8's peer-retirement pattern rather than
retransmission timers: when a data server crashes
(:meth:`DataServerNode.crash`, driven by ``FaultPlan.server_crash``
through ``repro.sim.chaos.attach_data_servers``), the farm immediately
retires it from the placement map, interrupts every in-flight RPC
attempt bound for it (the callers fail over to a surviving replica at
the same instant instead of stalling on a dead server), and starts a
re-replication process that copies each under-replicated range from a
survivor to the next server in preference order, verifying every block
against the persisted digests before admitting the new replica.
"""

from __future__ import annotations

import itertools
import zlib
from collections import defaultdict
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.channel import FileChannel, RemoteFileLocator
from repro.core.layers.checksum import ChecksumRegistry
from repro.core.session import ServerEndpoint
from repro.middleware.imageserver import ImageCatalog
from repro.net.ssh import ScpTransfer, SshTunnel
from repro.nfs.protocol import FileHandle, NfsProc
from repro.nfs.rpc import RpcClient, RpcTimeout
from repro.sim import AllOf, FifoResource, Interrupt
from repro.storage.vfs import FsError

__all__ = ["DataServerNode", "FarmChannelSelector", "FarmOriginClient",
           "ImageFarm", "MetadataService"]

#: Mutations of the namespace (not block data): serialized through the
#: primary replica and mirrored synchronously to the others, so every
#: live server keeps assigning the same fileids in the same order.
NAMESPACE_PROCS = frozenset([
    NfsProc.CREATE, NfsProc.MKDIR, NfsProc.SYMLINK, NfsProc.REMOVE,
    NfsProc.RMDIR, NfsProc.RENAME, NfsProc.SETATTR,
])


class FarmInvariantError(Exception):
    """Replica state diverged (fileid misalignment — a bug, not a fault)."""


class MetadataService:
    """The namenode: deterministic replica placement over chunk ranges.

    Placement is rendezvous (highest-random-weight) hashing: for key
    ``(fileid, range)`` every server gets the score
    ``crc32(f"{seed}:{fileid}:{range}:{server.name}")`` and the top
    ``replication`` *live* servers own the range.  Scores depend only
    on the seed and names, so the same seed always yields the same map
    (the determinism test), dead servers drop out without reshuffling
    survivors (the rendezvous property), and placements materialize
    lazily on first touch — registering a 10 GB image costs nothing
    until ranges are read or written.
    """

    def __init__(self, seed: int = 0, replication: int = 2,
                 range_blocks: int = 64, block_size: int = 8192):
        if replication < 1:
            raise ValueError(f"replication must be >= 1: {replication}")
        if range_blocks < 1:
            raise ValueError(f"range_blocks must be >= 1: {range_blocks}")
        self.seed = seed
        self.replication = replication
        self.range_blocks = range_blocks
        self.block_size = block_size
        self.range_bytes = range_blocks * block_size
        self.servers: List["DataServerNode"] = []
        self.retired: Set[str] = set()
        self._placement: Dict[Tuple[int, int], List["DataServerNode"]] = {}
        # Counters for reports.
        self.placements = 0
        self.retirements = 0
        self.entries_retracted = 0

    # -- membership ----------------------------------------------------------
    def register_server(self, node: "DataServerNode") -> None:
        self.servers.append(node)

    def alive_servers(self) -> List["DataServerNode"]:
        return [node for node in self.servers if node.alive]

    def primary(self) -> "DataServerNode":
        """The first live server — the serialization point for
        namespace mutations."""
        for node in self.servers:
            if node.alive:
                return node
        raise RpcTimeout("image farm has no live data servers")

    # -- placement -----------------------------------------------------------
    def _score(self, fileid: int, rng: int, name: str) -> int:
        return zlib.crc32(f"{self.seed}:{fileid}:{rng}:{name}".encode())

    def preference(self, fileid: int, rng: int) -> List["DataServerNode"]:
        """All servers (alive or not) in rendezvous order for a key."""
        return sorted(
            self.servers,
            key=lambda node: (-self._score(fileid, rng, node.name),
                              node.name))

    def placement_of(self, fileid: int,
                     rng: int) -> List["DataServerNode"]:
        """The owners of range ``rng`` of file ``fileid``, materialized
        from the live prefix of the preference order on first touch."""
        key = (fileid, rng)
        owners = self._placement.get(key)
        if owners is None:
            owners = [node for node in self.preference(fileid, rng)
                      if node.alive][:self.replication]
            self._placement[key] = owners
            self.placements += 1
        return owners

    def locate_block(self, fileid: int,
                     block_idx: int) -> List["DataServerNode"]:
        """Live owners of the range containing ``block_idx``."""
        owners = self.placement_of(fileid, block_idx // self.range_blocks)
        return [node for node in owners if node.alive]

    def ranges_spanning(self, offset: int, length: int) -> range:
        """Range indices touched by a byte span."""
        first = offset // self.range_bytes
        last = (offset + max(length - 1, 0)) // self.range_bytes
        return range(first, last + 1)

    def admit_replica(self, fileid: int, rng: int,
                      node: "DataServerNode") -> None:
        """Record a rebuilt (verified) replica in the placement map."""
        owners = self.placement_of(fileid, rng)
        if node not in owners:
            owners.append(node)

    def retire_server(self, node: "DataServerNode"
                      ) -> List[Tuple[int, int]]:
        """Retract a crashed server from every placement.

        Returns the keys the retirement left under-replicated, in
        deterministic order, for the re-replication process.  Retired
        servers never rejoin placements — a restarted process comes
        back with no claim on its old ranges (re-replication has moved
        them on), matching how PR 8 retires crashed peers.
        """
        self.retired.add(node.name)
        self.retirements += 1
        lost: List[Tuple[int, int]] = []
        for key, owners in self._placement.items():
            if node in owners:
                owners.remove(node)
                self.entries_retracted += 1
                lost.append(key)
        lost.sort()
        return lost

    def placement_snapshot(self) -> Dict[str, List[str]]:
        """Materialized placements as plain names (determinism tests)."""
        return {f"{fileid}:{rng}": [node.name for node in owners]
                for (fileid, rng), owners in sorted(self._placement.items())}

    # -- namespace mirroring -------------------------------------------------
    def mirror_namespace(self, request, reply,
                         served_by: "DataServerNode") -> None:
        """Apply a namespace mutation (already applied by the primary
        of record, ``served_by``) to every other live replica.

        Mirroring is synchronous and untimed — it models the namenode's
        control-plane metadata update, not a data transfer — and it is
        what keeps fileid assignment aligned: the primary serializes
        the mutation order, and each mirror replays it in that order,
        so per-filesystem inode counters advance in lockstep.  A
        diverging fileid is a bug in the model, not a simulated fault,
        and raises :class:`FarmInvariantError`.
        """
        for node in self.alive_servers():
            if node is served_by:
                continue
            self._apply_namespace(node, request, reply)

    def _apply_namespace(self, node: "DataServerNode", request,
                         reply) -> None:
        fs = node.fs
        proc = request.proc
        if proc is NfsProc.CREATE:
            made = fs.create_in(fs.get_inode(request.fh.fileid),
                                request.name, exclusive=request.exclusive)
        elif proc is NfsProc.MKDIR:
            made = fs.mkdir_in(fs.get_inode(request.fh.fileid), request.name)
        elif proc is NfsProc.SYMLINK:
            made = fs.symlink_in(fs.get_inode(request.fh.fileid),
                                 request.name, request.target)
        elif proc is NfsProc.REMOVE:
            fs.remove_in(fs.get_inode(request.fh.fileid), request.name)
            return
        elif proc is NfsProc.RMDIR:
            fs.rmdir_in(fs.get_inode(request.fh.fileid), request.name)
            return
        elif proc is NfsProc.RENAME:
            from_dir = fs.get_inode(request.fh.fileid)
            to_dir = (fs.get_inode(request.to_fh.fileid)
                      if request.to_fh else from_dir)
            fs.rename_in(from_dir, request.name, to_dir, request.to_name)
            return
        elif proc is NfsProc.SETATTR:
            inode = fs.get_inode(request.fh.fileid)
            if request.size is not None:
                inode.data.truncate(request.size)
                inode.touch()
            return
        else:
            raise ValueError(f"not a namespace proc: {proc}")
        if reply.fh is not None and made.fileid != reply.fh.fileid:
            raise FarmInvariantError(
                f"{node.name}: {proc.name} {request.name!r} assigned "
                f"fileid {made.fileid}, primary assigned {reply.fh.fileid}")

    def mirror_size(self, fileid: int, end: int,
                    receivers: List["DataServerNode"]) -> None:
        """Grow every live non-receiver's inode to at least ``end``.

        Replicated writes land only on the owners of the ranges they
        touch, but GETATTR may be answered by *any* live replica — so
        file sizes (attributes are namenode metadata) mirror to all."""
        for node in self.alive_servers():
            if node in receivers:
                continue
            try:
                inode = node.fs.get_inode(fileid)
            except FsError:
                continue
            if inode.data.size < end:
                inode.data.truncate(end)
                inode.touch()


class DataServerNode:
    """One datanode: a provisioned host running an image-server endpoint."""

    def __init__(self, farm: "ImageFarm", index: int, host):
        self.farm = farm
        self.index = index
        self.host = host
        self.name = host.name
        self.endpoint = ServerEndpoint(farm.env, host, fsid=farm.fsid,
                                       integrity=farm.integrity)
        self.retired = False

    @property
    def fs(self):
        return self.endpoint.export.fs

    @property
    def alive(self) -> bool:
        return not self.endpoint.server.crashed and not self.retired

    def crash(self) -> None:
        """Fault-injection port (``FaultKind.SERVER_CRASH``): kill the
        server process and retire this node from the farm."""
        if self.endpoint.server.crashed:
            return
        self.endpoint.server.crash()
        self.farm.on_server_down(self)

    def restart(self) -> None:
        """Boot the server process back up.  The node stays retired —
        re-replication has already moved its ranges on; a rejoining
        server would re-enter through placement of *new* ranges, which
        this model does not grant to once-crashed nodes."""
        self.endpoint.server.restart()

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.alive else "down"
        return f"<DataServerNode {self.name} {state}>"


class FarmOriginClient:
    """Per-session origin selector and upstream RPC client.

    One instance serves one GVFS session: it owns an SSH tunnel pair
    and an :class:`RpcClient` per data server, and routes each request
    by procedure:

    - **READ** → the live owners of the block's range, rotated per
      session (load spread), tried in order with failover;
    - **WRITE** → parallel fan-out to every live owner of the touched
      ranges; acknowledged when at least one replica succeeds (the
      ack is logged for the post-run audit), file size mirrored to
      non-owners;
    - **COMMIT** → broadcast to all live servers (each syncs its own
      write-behind pool);
    - namespace mutations → the primary, then mirrored by the
      namenode;
    - everything else (LOOKUP, GETATTR, READDIR, …) → any live server
      (the namespace is fully replicated), rotated, with failover.

    Failover is timer-free: in-flight attempts are registered per
    server, and :meth:`abandon` (called by the farm at the crash
    instant) interrupts them so the caller moves to the next replica
    immediately instead of waiting out a retransmission ladder.

    The object is duck-type compatible with :class:`RpcClient` where
    the stack needs it: ``call(request)`` for the terminal layer and
    block-cache write-backs, and the ``timeout``/``max_retries``/
    ``backoff``/``max_timeout``/``breaker`` knobs (fanned out to every
    replica client) for ``GvfsSession.harden_rpc``.
    """

    def __init__(self, farm: "ImageFarm", name: str, compute_host):
        self.farm = farm
        self.env = farm.env
        self.metadata = farm.metadata
        self.name = name
        self.compute_host = compute_host
        self.rotation = farm.next_rotation()
        self._clients: Dict[str, RpcClient] = {}
        for node in farm.data_servers:
            out = SshTunnel(self.env,
                            farm.testbed.route(compute_host, node.host),
                            name=f"{name}.{node.name}.out")
            back = SshTunnel(self.env,
                             farm.testbed.route(node.host, compute_host),
                             name=f"{name}.{node.name}.back")
            self._clients[node.name] = RpcClient(
                self.env, node.endpoint.proxy, out, back,
                name=f"{name}.{node.name}.rpc")
        self._inflight: Dict[str, Set] = defaultdict(set)
        # Counters.
        self.failovers = 0
        self.aborted_attempts = 0
        self.degraded_reads = 0
        self.replicated_writes = 0
        self.acked_writes = 0
        self.failed_writes = 0

    # -- RpcClient-compatible knob surface (harden_rpc fans out) -------------
    def _fan_knob(self, knob: str, value) -> None:
        for client in self._clients.values():
            setattr(client, knob, value)

    @property
    def timeout(self):
        return next(iter(self._clients.values())).timeout

    @timeout.setter
    def timeout(self, value):
        self._fan_knob("timeout", value)

    @property
    def max_retries(self):
        return next(iter(self._clients.values())).max_retries

    @max_retries.setter
    def max_retries(self, value):
        self._fan_knob("max_retries", value)

    @property
    def backoff(self):
        return next(iter(self._clients.values())).backoff

    @backoff.setter
    def backoff(self, value):
        self._fan_knob("backoff", value)

    @property
    def max_timeout(self):
        return next(iter(self._clients.values())).max_timeout

    @max_timeout.setter
    def max_timeout(self, value):
        self._fan_knob("max_timeout", value)

    @property
    def breaker(self):
        return next(iter(self._clients.values())).breaker

    @breaker.setter
    def breaker(self, value):
        self._fan_knob("breaker", value)

    # -- dispatch ------------------------------------------------------------
    def call(self, request) -> Generator:
        return (yield from self.dispatch(request))

    def dispatch(self, request) -> Generator:
        proc = request.proc
        if proc is NfsProc.WRITE:
            return (yield from self._replicated_write(request))
        if proc is NfsProc.COMMIT:
            return (yield from self._broadcast_commit(request))
        if proc in NAMESPACE_PROCS:
            return (yield from self._namespace_op(request))
        if proc is NfsProc.READ:
            targets = self._read_targets(request)
        else:
            # Rotate over the *full* pool: a retired server left in the
            # order is skipped by the failover loop, which counts the
            # skip — the fast-path failover the namenode's retraction
            # buys us (no timeout, just a live replica one slot over).
            targets = self._rotated(list(self.metadata.servers),
                                    self.rotation)
        node, reply = yield from self._failover_call(request, targets)
        return reply

    # -- target selection ----------------------------------------------------
    @staticmethod
    def _rotated(nodes: List[DataServerNode],
                 rot: int) -> List[DataServerNode]:
        if len(nodes) > 1:
            rot %= len(nodes)
            return nodes[rot:] + nodes[:rot]
        return nodes

    def _read_targets(self, request) -> List[DataServerNode]:
        block = request.offset // self.metadata.block_size
        rng = block // self.metadata.range_blocks
        owners = self.metadata.locate_block(request.fh.fileid, block)
        if (self.metadata.retirements
                and len(owners) < self.metadata.replication):
            # A crash took one of this range's owners and re-replication
            # hasn't refilled it yet: the read is served degraded, from
            # a surviving replica the retraction failed us over to.
            self.degraded_reads += 1
        # Rotate by session and range so concurrent cloners spread
        # across both replicas of a hot range instead of mobbing one.
        return self._rotated(owners, self.rotation + rng)

    # -- failover machinery --------------------------------------------------
    def _attempt(self, node: DataServerNode, request) -> Generator:
        """Process-wrapped single-replica call, registered so the farm
        can interrupt it the instant ``node`` crashes."""
        proc = self.env.process(
            self._clients[node.name].call(request),
            name=f"{self.name}.{node.name}.attempt")
        self._inflight[node.name].add(proc)
        try:
            reply = yield proc
        finally:
            self._inflight[node.name].discard(proc)
        return reply

    def _failover_call(self, request,
                       targets: List[DataServerNode]) -> Generator:
        last_error: Optional[Exception] = None
        for i, node in enumerate(targets):
            if not node.alive:
                continue
            try:
                reply = yield from self._attempt(node, request)
            except (Interrupt, RpcTimeout) as error:
                last_error = error
                self.failovers += 1
                continue
            if i > 0:
                self.failovers += 1
            return node, reply
        raise last_error or RpcTimeout(
            f"{self.name}: no live replica for {request.proc.name}")

    def abandon(self, node: DataServerNode) -> None:
        """Interrupt every in-flight attempt bound for a crashed node;
        the awaiting callers fail over to a surviving replica now."""
        for proc in list(self._inflight[node.name]):
            if proc.is_alive:
                proc.interrupt("data server crashed")
                self.aborted_attempts += 1
        self._inflight[node.name].clear()

    def _settled(self, node: DataServerNode, request,
                 results: List) -> Generator:
        """Fan-out arm: never fails (AllOf would abandon its siblings),
        it records ``(node, reply-or-None)`` instead."""
        try:
            reply = yield from self._attempt(node, request)
        except (Interrupt, RpcTimeout):
            results.append((node, None))
            return
        results.append((node, reply))

    # -- write path ----------------------------------------------------------
    def _replicated_write(self, request) -> Generator:
        fileid = request.fh.fileid
        owners: List[DataServerNode] = []
        for rng in self.metadata.ranges_spanning(request.offset,
                                                 len(request.data)):
            for node in self.metadata.placement_of(fileid, rng):
                if node.alive and node not in owners:
                    owners.append(node)
        if not owners:
            self.failed_writes += 1
            raise RpcTimeout(f"{self.name}: no live owner for WRITE "
                             f"{fileid}@{request.offset}")
        results: List[Tuple[DataServerNode, object]] = []
        yield AllOf(self.env, [
            self.env.process(self._settled(node, request, results),
                             name=f"{self.name}.{node.name}.write")
            for node in owners])
        acked = [(node, reply) for node, reply in results
                 if reply is not None and reply.ok]
        if not acked:
            self.failed_writes += 1
            raise RpcTimeout(f"{self.name}: no replica acknowledged WRITE "
                             f"{fileid}@{request.offset}")
        self.replicated_writes += len(acked)
        self.acked_writes += 1
        lost_arms = len(owners) - len(acked)
        if lost_arms:
            self.failovers += lost_arms
        self.farm.record_acknowledged_write(request)
        self.metadata.mirror_size(fileid, request.offset + len(request.data),
                                  [node for node, _ in acked])
        return acked[0][1]

    def _broadcast_commit(self, request) -> Generator:
        targets = self.metadata.alive_servers()
        if not targets:
            raise RpcTimeout(f"{self.name}: no live replica for COMMIT")
        results: List[Tuple[DataServerNode, object]] = []
        yield AllOf(self.env, [
            self.env.process(self._settled(node, request, results),
                             name=f"{self.name}.{node.name}.commit")
            for node in targets])
        acked = [reply for _, reply in results
                 if reply is not None and reply.ok]
        if not acked:
            raise RpcTimeout(f"{self.name}: no replica completed COMMIT")
        return acked[0]

    # -- namespace path ------------------------------------------------------
    def _namespace_op(self, request) -> Generator:
        # The namenode's global namespace lock: apply-on-primary and
        # mirror-to-replicas form one critical section, so two sessions'
        # concurrent CREATEs cannot reach the primary in one order and
        # the mirrors in the other (which would assign divergent
        # fileids).  Primary-first target order, NOT rotated — one
        # serialization point for the mutation stream.
        grant = self.farm.namespace_lock.request()
        yield grant
        try:
            node, reply = yield from self._failover_call(
                request, list(self.metadata.servers))
            if reply.ok:
                self.metadata.mirror_namespace(request, reply,
                                               served_by=node)
        finally:
            self.farm.namespace_lock.release(grant)
        return reply

    def stats_snapshot(self) -> Dict[str, int]:
        return {"failovers": self.failovers,
                "aborted_attempts": self.aborted_attempts,
                "degraded_reads": self.degraded_reads,
                "replicated_writes": self.replicated_writes,
                "acked_writes": self.acked_writes,
                "failed_writes": self.failed_writes}


class FarmChannelSelector:
    """Per-session whole-file channel selection across the farm.

    The ``FileChannelLayer`` seam: ``fetch_channel`` returns a
    failover facade — a fetch runs against a live replica's file
    channel (rotated per session) as an interruptible process, and
    when the farm crashes that replica mid-transfer the attempt is
    abandoned and retried from the next live replica (an interrupted
    fetch installs nothing, so the retry restarts cleanly).
    ``upload_channels`` returns one channel per live replica so a
    flushed whole-file write lands everywhere.  All channels share the
    session's one file cache, so a fetch through any replica installs
    into the same cache entry.
    """

    def __init__(self, farm: "ImageFarm", file_cache, compute_host,
                 name: str):
        self.farm = farm
        self.env = farm.env
        self.name = name
        self.rotation = farm.next_channel_rotation()
        self._channels: Dict[str, FileChannel] = {}
        self._inflight: Dict[str, Set] = defaultdict(set)
        self.failovers = 0
        self.aborted_fetches = 0
        for node in farm.data_servers:
            locator = RemoteFileLocator(resolve=node.endpoint.resolve,
                                        server_host=node.host,
                                        server_fs=node.endpoint.export,
                                        client_host=compute_host)
            scp = ScpTransfer(farm.env,
                              farm.testbed.route(node.host, compute_host),
                              name=f"{name}.{node.name}.scp")
            upload = ScpTransfer(farm.env,
                                 farm.testbed.route(compute_host, node.host),
                                 name=f"{name}.{node.name}.scp-up")
            self._channels[node.name] = FileChannel(
                farm.env, locator, scp, file_cache, upload_scp=upload)

    def _alive(self) -> List[DataServerNode]:
        return self.farm.metadata.alive_servers()

    @property
    def primary(self) -> FileChannel:
        """The default channel slot (``ProxyStack.channel`` et al.)."""
        nodes = self._alive() or self.farm.data_servers
        return self._channels[nodes[0].name]

    def fetch_channel(self, fh) -> "FarmChannelSelector":
        # The selector itself is the channel facade: its ``fetch``
        # below runs the replica selection + failover loop.
        return self

    def fetch(self, fh) -> Generator:
        # Rotate over the *full* pool so a session whose preferred
        # replica has been retired visibly fails over to the next live
        # one (the fast path: the namenode's retraction spares us the
        # timeout, but it is still a fetch served despite a dead
        # replica, and counts as one).
        nodes = self.farm.data_servers
        if not self._alive():
            raise RpcTimeout(f"{self.name}: no live replica for file fetch")
        rot = self.rotation % len(nodes)
        order = nodes[rot:] + nodes[:rot]
        last_error: Optional[Exception] = None
        for i, node in enumerate(order):
            if not node.alive:
                continue
            proc = self.env.process(self._channels[node.name].fetch(fh),
                                    name=f"{self.name}.{node.name}.fetch")
            self._inflight[node.name].add(proc)
            try:
                entry = yield proc
            except (Interrupt, RpcTimeout) as error:
                last_error = error
                self.failovers += 1
                continue
            finally:
                self._inflight[node.name].discard(proc)
            if i > 0:
                self.failovers += 1
            return entry
        raise last_error or RpcTimeout(
            f"{self.name}: every replica failed the file fetch")

    def abandon(self, node: DataServerNode) -> None:
        """Interrupt in-flight fetches from a crashed replica; their
        callers restart the transfer from a surviving one."""
        for proc in list(self._inflight[node.name]):
            if proc.is_alive:
                proc.interrupt("data server crashed")
                self.aborted_fetches += 1
        self._inflight[node.name].clear()

    def upload_channels(self, fh) -> List[FileChannel]:
        return [self._channels[node.name] for node in self._alive()]


class ImageFarm:
    """The farm façade: pool + namenode + ingest + recovery + audit.

    Build one per testbed, register golden images through it, and hand
    it to ``GvfsSession.build(origin=...)`` (or
    ``VmSessionManager(origin=...)``) — each session then resolves its
    misses across the farm instead of a single image server.
    """

    def __init__(self, testbed, n_servers: int = 4, replication: int = 2,
                 seed: int = 0, range_blocks: int = 64,
                 block_size: int = 8192, profile: str = "site",
                 prefix: str = "data-server", fsid: str = "images",
                 integrity: Optional[ChecksumRegistry] = None):
        self.testbed = testbed
        self.env = testbed.env
        self.fsid = fsid
        self.integrity = integrity if integrity is not None \
            else ChecksumRegistry()
        self.metadata = MetadataService(
            seed=seed, replication=min(replication, n_servers),
            range_blocks=range_blocks, block_size=block_size)
        self.data_servers: List[DataServerNode] = []
        for i, host in enumerate(testbed.add_origin_pool(
                n_servers, prefix=prefix, profile=profile)):
            node = DataServerNode(self, i, host)
            self.data_servers.append(node)
            self.metadata.register_server(node)
        # The catalog lives on the first server's tree; every other
        # replica replays the same creation order (fileid alignment).
        self.catalog = ImageCatalog(self.data_servers[0].fs)
        for node in self.data_servers[1:]:
            if not node.fs.exists(self.catalog.root):
                node.fs.mkdir(self.catalog.root, parents=True)
        self.clients: List[FarmOriginClient] = []
        self.channel_selectors: List[FarmChannelSelector] = []
        # Separate rotation sequences for RPC clients and file channels:
        # interleaved allocation from one counter would stride sessions
        # across only every other replica (e.g. servers {0, 2} of 4).
        self._client_rotation = itertools.count()
        self._channel_rotation = itertools.count()
        # The namenode's namespace mutation lock (see _namespace_op).
        self.namespace_lock = FifoResource(self.env, capacity=1,
                                           name="farm.namespace")
        # Ack log for the post-run audit: (fileid, block) -> (crc, len)
        # of the last acknowledged bytes for that block.
        self.ack_log: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.recovery_log: List[Dict] = []
        self._recovery_procs: List = []

    # -- session wiring (the GvfsSession.build(origin=...) protocol) ---------
    @property
    def endpoint(self) -> ServerEndpoint:
        """Root-handle source for mounts.  Handles resolve identically
        on every replica, so the first server's endpoint serves."""
        return self.data_servers[0].endpoint

    def upstream_client(self, name: str, compute_host) -> FarmOriginClient:
        client = FarmOriginClient(self, name, compute_host)
        self.clients.append(client)
        return client

    def session_channels(self, file_cache, compute_host,
                         name: str) -> FarmChannelSelector:
        selector = FarmChannelSelector(self, file_cache, compute_host, name)
        self.channel_selectors.append(selector)
        return selector

    def next_rotation(self) -> int:
        return next(self._client_rotation)

    def next_channel_rotation(self) -> int:
        return next(self._channel_rotation)

    # -- ingest --------------------------------------------------------------
    def register_image(self, name: str, config, applications=(),
                       zero_fraction: float = 0.92,
                       generate_metadata: bool = True):
        """Create a golden image on *every* replica and place it.

        The catalog registers on the first server; each other replica
        replays the identical ``VmImage.create`` (content is procedural
        and lazy, so mirroring costs no bulk copying), fileid alignment
        is asserted, per-block digests are computed into the shared
        checksum registry and persisted beside the image on every
        replica, and every file's ranges get placements eagerly so the
        map is inspectable before traffic arrives.
        """
        from repro.vm.image import VmImage
        image = self.catalog.register(name, config,
                                      applications=applications,
                                      zero_fraction=zero_fraction,
                                      generate_metadata=generate_metadata)
        for node in self.data_servers[1:]:
            mirrored = VmImage.create(node.fs, image.directory, config,
                                      zero_fraction=zero_fraction)
            if generate_metadata:
                mirrored.generate_metadata()
        fileids = self._verify_alignment(image.directory)
        self._ingest_digests(image.directory, fileids)
        # Eager placement: materialize every range of every image file
        # now, while all servers are up, so the placement map is fully
        # inspectable (and snapshot-comparable) before traffic arrives.
        fs = self.data_servers[0].fs
        for fileid in fileids:
            size = fs.get_inode(fileid).data.size
            for rng in range(max(
                    1, -(-size // self.metadata.range_bytes))):
                self.metadata.placement_of(fileid, rng)
        return image

    def provision_dir(self, path: str) -> None:
        """Create a directory on every replica (pre-run provisioning,
        e.g. a ``/checkpoints`` tree), keeping fileids aligned."""
        for node in self.data_servers:
            if not node.fs.exists(path):
                node.fs.mkdir(path, parents=True)

    def _verify_alignment(self, directory: str) -> List[int]:
        """Assert every file under ``directory`` has one fileid
        everywhere; returns the fileids (for the digest sidecar)."""
        reference = self.data_servers[0].fs
        fileids = []
        for path, inode in sorted(reference.walk_files(directory)):
            fileid = inode.fileid
            fileids.append(fileid)
            for node in self.data_servers[1:]:
                other = node.fs.lookup(path).fileid
                if other != fileid:
                    raise FarmInvariantError(
                        f"{node.name}: {path} is fileid {other}, "
                        f"expected {fileid}")
        return fileids

    def _ingest_digests(self, directory: str, fileids: List[int]) -> None:
        """Record per-block digests of the image into the shared
        registry (untimed middleware pre-processing), then persist the
        sidecar beside the image on every replica — a rebuilt replica
        is verified against these digests on re-replication."""
        bs = self.metadata.block_size
        fs = self.data_servers[0].fs
        for path, inode in sorted(fs.walk_files(directory)):
            fh = FileHandle(self.fsid, inode.fileid)
            for idx in range((inode.data.size + bs - 1) // bs):
                self.integrity.record((fh, idx),
                                      inode.data.read(idx * bs, bs))
        sidecar = f"{directory}/{ChecksumRegistry.PERSIST_NAME}"
        for node in self.data_servers:
            self.integrity.save(node.fs, sidecar, fileids=set(fileids))

    # -- crash handling ------------------------------------------------------
    def on_server_down(self, node: DataServerNode) -> None:
        """The crash epoch: retire the dead server from every
        placement, release its in-flight callers to fail over, and
        start re-replicating what it owned."""
        if node.retired:
            return
        node.retired = True
        lost = self.metadata.retire_server(node)
        for client in self.clients:
            client.abandon(node)
        for selector in self.channel_selectors:
            selector.abandon(node)
        if lost and self.metadata.alive_servers():
            self._recovery_procs.append(self.env.process(
                self._rereplicate(node, lost),
                name=f"farm.rereplicate.{node.name}"))

    def _rereplicate(self, dead: DataServerNode,
                     keys: List[Tuple[int, int]]) -> Generator:
        """Process: rebuild replication for every range ``dead`` owned.

        For each lost range: read it from a surviving owner (timed disk
        scan), stream it across the farm's site links, write it onto
        the next live server in the range's preference order, verify
        every block against the registry digests, and only then admit
        the new replica to the placement map.
        """
        record = {"server": dead.name, "started": self.env.now,
                  "ranges_lost": len(keys), "ranges_rebuilt": 0,
                  "ranges_unrecoverable": 0, "ranges_underreplicated": 0,
                  "bytes_copied": 0, "blocks_verified": 0,
                  "verify_failures": 0}
        self.recovery_log.append(record)
        bs = self.metadata.block_size
        for fileid, rng in keys:
            survivors = [n for n in self.metadata.placement_of(fileid, rng)
                         if n.alive]
            if not survivors:
                record["ranges_unrecoverable"] += 1
                continue
            target = next(
                (n for n in self.metadata.preference(fileid, rng)
                 if n.alive and n not in survivors), None)
            if target is None:
                # Fewer live servers than the replication factor: the
                # survivors still hold the data (nothing is lost), the
                # farm just cannot restore full replication.
                record["ranges_underreplicated"] += 1
                continue
            source = survivors[0]
            try:
                src_inode = source.fs.get_inode(fileid)
                dst_inode = target.fs.get_inode(fileid)
            except FsError:
                record["ranges_unrecoverable"] += 1
                continue
            start = rng * self.metadata.range_bytes
            length = min(self.metadata.range_bytes,
                         src_inode.data.size - start)
            if length > 0:
                data = yield from source.endpoint.export.timed_read_inode(
                    src_inode, start, length)
                yield from self.testbed.route(
                    source.host, target.host).transmit(len(data) + 128)
                yield from target.endpoint.export.timed_write_inode(
                    dst_inode, data, start)
                bad = 0
                fh = FileHandle(self.fsid, fileid)
                for i in range(0, len(data), bs):
                    idx = (start + i) // bs
                    ok = self.integrity.matches((fh, idx), data[i:i + bs])
                    if ok is False:
                        bad += 1
                    elif ok:
                        record["blocks_verified"] += 1
                if bad:
                    record["verify_failures"] += bad
                    continue  # do not admit an unverifiable replica
                record["bytes_copied"] += len(data)
            self.metadata.admit_replica(fileid, rng, target)
            record["ranges_rebuilt"] += 1
        record["finished"] = self.env.now
        record["seconds"] = self.env.now - record["started"]

    # -- post-run audit ------------------------------------------------------
    def record_acknowledged_write(self, request) -> None:
        """Log the block-aligned content of an acknowledged WRITE; the
        audit later proves some live replica still holds these bytes."""
        bs = self.metadata.block_size
        data, offset = request.data, request.offset
        fileid = request.fh.fileid
        head = (-offset) % bs
        if head:
            # Unaligned head fragment: not auditable standalone.
            data = data[head:]
            offset += head
        idx = offset // bs
        for i in range(0, len(data), bs):
            chunk = data[i:i + bs]
            self.ack_log[(fileid, idx + i // bs)] = (zlib.crc32(chunk),
                                                     len(chunk))

    def audit_acknowledged_writes(self) -> Dict:
        """Check every acknowledged block against the live replicas.

        A block is *lost* if no live owner of its range holds matching
        bytes; *stale* replicas are live owners whose copy mismatches
        (e.g. a write arm interrupted by the crash before the server
        applied it — the surviving ack'd copy is authoritative)."""
        lost: List[List[int]] = []
        stale = 0
        for (fileid, idx), (crc, length) in sorted(self.ack_log.items()):
            owners = self.metadata.locate_block(fileid, idx)
            good = 0
            bs = self.metadata.block_size
            for node in owners:
                try:
                    inode = node.fs.get_inode(fileid)
                except FsError:
                    continue
                chunk = inode.data.read(idx * bs, length)
                if len(chunk) == length and zlib.crc32(chunk) == crc:
                    good += 1
                else:
                    stale += 1
            if good == 0:
                lost.append([fileid, idx])
        return {"acked_blocks": len(self.ack_log),
                "lost_blocks": len(lost),
                "stale_replicas": stale,
                "lost_examples": lost[:8]}

    # -- reporting -----------------------------------------------------------
    def recovery_complete(self) -> bool:
        return all("finished" in rec for rec in self.recovery_log)

    def client_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {"failovers": 0, "aborted_attempts": 0,
                                  "degraded_reads": 0,
                                  "replicated_writes": 0, "acked_writes": 0,
                                  "failed_writes": 0,
                                  "channel_failovers": 0,
                                  "aborted_fetches": 0}
        for client in self.clients:
            for key, value in client.stats_snapshot().items():
                totals[key] += value
        for selector in self.channel_selectors:
            totals["channel_failovers"] += selector.failovers
            totals["aborted_fetches"] += selector.aborted_fetches
        return totals

    def farm_snapshot(self) -> Dict:
        return {
            "servers": {node.name: {"alive": node.alive,
                                    "calls": node.endpoint.server.calls}
                        for node in self.data_servers},
            "replication": self.metadata.replication,
            "placements": self.metadata.placements,
            "retirements": self.metadata.retirements,
            "entries_retracted": self.metadata.entries_retracted,
            "clients": self.client_totals(),
            "recovery": [dict(rec) for rec in self.recovery_log],
            "digests": len(self.integrity),
        }
