"""Grid middleware substrate (§2, §3.1).

The pieces of the In-VIGO-style middleware that GVFS assumes: logical
user accounts with short-lived identity allocation
(:mod:`~repro.middleware.accounts`), a golden-image catalog with
requirement matchmaking (:mod:`~repro.middleware.imageserver`), the
sharded/replicated image-server farm — namenode placement over
datanode replicas (:mod:`~repro.middleware.farm`) — and the VM-session
orchestrator that ties accounts, sessions, cloning and consistency
signals together (:mod:`~repro.middleware.sessions`).
"""

from repro.middleware.accounts import AccountManager, LogicalAccount
from repro.middleware.farm import (DataServerNode, FarmChannelSelector,
                                   FarmOriginClient, ImageFarm,
                                   MetadataService)
from repro.middleware.imageserver import ImageCatalog, ImageRequirements
from repro.middleware.sessions import VmSessionManager, VmSession
from repro.middleware.scheduler import Task, TaskResult, TaskScheduler

__all__ = [
    "AccountManager",
    "DataServerNode",
    "FarmChannelSelector",
    "FarmOriginClient",
    "ImageCatalog",
    "ImageFarm",
    "ImageRequirements",
    "LogicalAccount",
    "MetadataService",
    "Task",
    "TaskResult",
    "TaskScheduler",
    "VmSession",
    "VmSessionManager",
]
