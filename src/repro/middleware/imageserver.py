"""Golden-image catalog and matchmaking (§3.2.3).

"The image server stores a number of non-persistent VMs for the purpose
of cloning.  These generic images have application-tailored hardware
and software configurations, and when a VM is requested ... the image
server is searched against the requirements of the desired VM.  The
best match is returned as the golden image."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.storage.vfs import FileSystem
from repro.vm.image import VmConfig, VmImage

__all__ = ["ImageCatalog", "ImageRequirements"]


@dataclass(frozen=True)
class ImageRequirements:
    """What a user's job needs from an execution environment."""

    os_name: Optional[str] = None
    min_memory_mb: int = 0
    min_disk_gb: float = 0.0
    applications: Sequence[str] = ()


@dataclass
class CatalogEntry:
    image: VmImage
    applications: tuple
    clones_served: int = 0


class ImageCatalog:
    """The image server's registry of golden images."""

    def __init__(self, fs: FileSystem, root: str = "/images"):
        self.fs = fs
        self.root = root.rstrip("/")
        self._entries: Dict[str, CatalogEntry] = {}
        if not fs.exists(self.root):
            fs.mkdir(self.root, parents=True)

    # -- registration ------------------------------------------------------
    def register(self, name: str, config: VmConfig,
                 applications: Sequence[str] = (),
                 zero_fraction: float = 0.92,
                 generate_metadata: bool = True) -> VmImage:
        """Create and register a golden image (middleware archival)."""
        if name in self._entries:
            raise ValueError(f"image already registered: {name}")
        image = VmImage.create(self.fs, f"{self.root}/{name}", config,
                               zero_fraction=zero_fraction)
        if generate_metadata:
            image.generate_metadata()
        self._entries[name] = CatalogEntry(image=image,
                                           applications=tuple(applications))
        return image

    def register_existing(self, name: str,
                          applications: Sequence[str] = ()) -> VmImage:
        """Register an image already present on this server's disk
        (e.g. archived by another middleware instance)."""
        if name in self._entries:
            raise ValueError(f"image already registered: {name}")
        image = VmImage.load(self.fs, f"{self.root}/{name}")
        self._entries[name] = CatalogEntry(image=image,
                                           applications=tuple(applications))
        return image

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str) -> VmImage:
        return self._entries[name].image

    # -- matchmaking ----------------------------------------------------------
    def _score(self, entry: CatalogEntry, req: ImageRequirements) -> Optional[int]:
        cfg = entry.image.config
        if req.os_name and cfg.os_name != req.os_name:
            return None
        if cfg.memory_mb < req.min_memory_mb:
            return None
        if cfg.disk_gb < req.min_disk_gb:
            return None
        if any(app not in entry.applications for app in req.applications):
            return None
        # Prefer the leanest image that satisfies the requirements
        # (less state to transfer), breaking ties toward popular images
        # (their state is more likely cached along the way).
        return (-cfg.memory_mb * 1024 - int(cfg.disk_gb * 16)
                + min(entry.clones_served, 64))

    def best_match(self, req: ImageRequirements) -> VmImage:
        """The golden image that best satisfies ``req``."""
        best_name, best_score = None, None
        for name in sorted(self._entries):
            score = self._score(self._entries[name], req)
            if score is not None and (best_score is None or score > best_score):
                best_name, best_score = name, score
        if best_name is None:
            raise LookupError(f"no image satisfies {req}")
        self._entries[best_name].clones_served += 1
        return self._entries[best_name].image
