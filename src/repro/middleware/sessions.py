"""VM-session orchestration: the middleware loop of §2.

Ties the substrate together the way In-VIGO does: a user asks for an
execution environment; middleware leases a logical account, matches a
golden image, builds a GVFS session to the image server, clones the
image to a compute server, and hands back a live VM.  At session end it
signals the proxies to write back (middleware-driven consistency) and
releases the lease.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.core.consistency import ConsistencySignal, MiddlewareConsistency
from repro.core.session import GvfsSession, LocalMount, Scenario, ServerEndpoint
from repro.middleware.accounts import AccountManager, LogicalAccount
from repro.middleware.imageserver import ImageCatalog, ImageRequirements
from repro.net.topology import Testbed
from repro.vm.cloning import CloneManager, CloneResult
from repro.vm.image import VmImage
from repro.vm.monitor import VirtualMachine, VmMonitor

__all__ = ["VmSession", "VmSessionManager"]


@dataclass
class VmSession:
    """One user's live VM session."""

    user: str
    account: LogicalAccount
    image: VmImage
    gvfs: GvfsSession
    vm: Optional[VirtualMachine]
    clone: CloneResult
    compute_index: int
    #: The user's data-server session (None if no data server is wired).
    data_session: Optional[GvfsSession] = None
    closed: bool = False


class VmSessionManager:
    """Middleware front door: create and tear down VM sessions.

    When a ``data_endpoint`` is configured (Figure 1's data servers —
    "data management for both virtual machine images and user file
    systems"), each session also mounts the user's home directory from
    the data server and attaches it inside the VM, as the In-VIGO
    virtual workspace does (§2).
    """

    def __init__(self, testbed: Testbed,
                 endpoint: Optional[ServerEndpoint] = None,
                 scenario: Scenario = Scenario.WAN_CACHED,
                 data_endpoint: Optional[ServerEndpoint] = None,
                 account_pool_size: int = 16,
                 origin=None):
        self.testbed = testbed
        self.env = testbed.env
        self.scenario = scenario
        # ``origin`` (an ImageFarm, or any object with the same session
        # protocol) replaces the single image server with the replicated
        # data-server farm: sessions resolve their misses through it, and
        # its catalog (on the first replica, mirrored to the rest) becomes
        # the image catalog of record.
        self.origin = origin
        if origin is not None:
            if endpoint is not None:
                raise ValueError("endpoint and origin are mutually exclusive")
            self.endpoint = origin.endpoint
            self.catalog = origin.catalog
        else:
            self.endpoint = endpoint or ServerEndpoint(self.env,
                                                       testbed.wan_server)
            self.catalog = ImageCatalog(self.endpoint.export.fs)
        self.data_endpoint = data_endpoint
        # The logical-account pool bounds concurrent sessions; fleet
        # workloads size it to their expected peak.
        self.accounts = AccountManager(self.env,
                                       pool_size=account_pool_size)
        self.consistency = MiddlewareConsistency(self.env)
        self._next_compute = 0
        self._session_seq = 0
        self.sessions: List[VmSession] = []

    def provision_user_home(self, user: str) -> str:
        """Create the user's home tree on the data server (idempotent)."""
        if self.data_endpoint is None:
            raise RuntimeError("no data server configured")
        home = f"/home/{user}"
        fs = self.data_endpoint.export.fs
        if not fs.exists(home):
            fs.mkdir(home, parents=True)
        return home

    def _pick_compute(self) -> int:
        index = self._next_compute % len(self.testbed.compute)
        self._next_compute += 1
        return index

    def create_session(self, user: str, requirements: ImageRequirements,
                       compute_index: Optional[int] = None) -> Generator:
        """Process: build a complete session; returns :class:`VmSession`.

        Steps: lease identity -> match golden image -> wire GVFS ->
        clone -> resume.  The returned session's ``vm`` is live.
        """
        account = self.accounts.lease(user)
        image = self.catalog.best_match(requirements)
        index = (self._pick_compute() if compute_index is None
                 else compute_index)
        gvfs = GvfsSession.build(self.testbed, self.scenario,
                                 endpoint=None if self.origin else
                                 self.endpoint,
                                 compute_index=index, origin=self.origin)
        compute = self.testbed.compute[index]
        monitor = VmMonitor(self.env, compute)
        manager = CloneManager(self.env, monitor, gvfs.mount,
                               LocalMount(compute.local))
        self._session_seq += 1
        clone_name = f"{user}-vm{self._session_seq}"
        clone = yield self.env.process(manager.clone(
            image.directory, f"/sessions/{clone_name}",
            clone_name=clone_name))
        data_session = None
        if self.data_endpoint is not None and clone.vm is not None:
            home = self.provision_user_home(user)
            data_session = GvfsSession.build(
                self.testbed, self.scenario, endpoint=self.data_endpoint,
                compute_index=index)
            clone.vm.attach_user_data(data_session.mount, home)
        session = VmSession(user=user, account=account, image=image,
                            gvfs=gvfs, vm=clone.vm, clone=clone,
                            compute_index=index, data_session=data_session)
        self.sessions.append(session)
        return session

    def end_session(self, session: VmSession) -> Generator:
        """Process: flush session state and release the identity lease.

        The consistency point is middleware-driven: dirty write-back
        data (redo logs, user files) reaches the image server before
        the lease is released.
        """
        if session.closed:
            raise RuntimeError("session already closed")
        yield self.env.process(session.gvfs.flush())
        if session.data_session is not None:
            yield self.env.process(session.data_session.flush())
            if session.data_session.client_proxy is not None:
                yield self.env.process(self.consistency.signal(
                    session.data_session.client_proxy,
                    ConsistencySignal.FLUSH))
        if session.gvfs.client_proxy is not None:
            yield self.env.process(self.consistency.signal(
                session.gvfs.client_proxy, ConsistencySignal.FLUSH))
        self.accounts.release(session.user)
        if session.vm is not None:
            session.vm.running = False
        session.closed = True

    @property
    def active_sessions(self) -> int:
        return sum(1 for s in self.sessions if not s.closed)

    def start_adaptive_sizing(self, interval: float,
                              rounds: Optional[int] = None,
                              apply: bool = True, **planner_kwargs):
        """Start PR 7's cascade-sizing planner on an engine timer.

        Each tick re-plans every *live* session's cascade from a deep
        stats snapshot and (unless ``apply=False``) enacts the verdicts
        on the running stacks — the §3.2.2 middleware knowledge loop
        running periodically *during* the workload rather than between
        phases.  Returns the :class:`~repro.core.adaptive.PeriodicSizer`
        (call ``.stop()`` at workload end, or bound it with ``rounds``,
        so ``env.run()`` can drain).
        """
        from repro.core.adaptive import PeriodicSizer

        def live_stacks():
            return [s.gvfs.client_proxy for s in self.sessions
                    if not s.closed and s.gvfs.client_proxy is not None]

        sizer = PeriodicSizer(self.env, live_stacks, interval,
                              rounds=rounds, apply=apply, **planner_kwargs)
        sizer.start()
        return sizer

    # ---------------------------------------------------------------- telemetry
    def session_telemetry(self, deep: bool = True) -> List[dict]:
        """Per-session proxy telemetry, one entry per session.

        Surfaces each session's per-layer
        ``stats_snapshot(deep=deep)`` — with ``deep=True`` the
        snapshot descends the whole cascade (intermediate cache levels
        and the server-side forwarding proxy included), so middleware
        sees exactly where every session's requests were absorbed.
        Sessions without a client proxy (LAN/WAN uncached) report only
        their identity fields.
        """
        entries = []
        for index, session in enumerate(self.sessions):
            entry: dict = {"session": index, "user": session.user,
                           "compute_index": session.compute_index,
                           "closed": session.closed}
            if session.gvfs.client_proxy is not None:
                entry["layers"] = session.gvfs.client_proxy.stats_snapshot(
                    deep=deep)
            if (session.data_session is not None
                    and session.data_session.client_proxy is not None):
                entry["data_layers"] = (
                    session.data_session.client_proxy.stats_snapshot(deep=deep))
            entries.append(entry)
        return entries

    def fleet_snapshot(self, deep: bool = True) -> dict:
        """The manager-level telemetry document: per-session snapshots
        plus fleet-wide per-layer counter totals (upstream levels
        excluded from the totals — shared cascade levels would be
        double-counted per session)."""
        sessions = self.session_telemetry(deep=deep)
        totals: Dict[str, Dict[str, int]] = {}
        for entry in sessions:
            for role, counters in entry.get("layers", {}).items():
                if role == "upstream":
                    continue
                bucket = totals.setdefault(role, {})
                for key, value in counters.items():
                    bucket[key] = bucket.get(key, 0) + value
        return {"sessions": len(self.sessions),
                "active_sessions": self.active_sessions,
                "per_session": sessions,
                "layer_totals": totals}

    def format_fleet_report(self, deep: bool = True) -> str:
        """Human-readable fleet telemetry (the CLI's ``--fleet-report``)."""
        snap = self.fleet_snapshot(deep=deep)
        lines = [f"fleet: {snap['sessions']} session(s), "
                 f"{snap['active_sessions']} active"]
        for role, counters in snap["layer_totals"].items():
            shown = {k: v for k, v in counters.items() if v}
            body = ("  ".join(f"{k}={v}" for k, v in shown.items())
                    if shown else "(idle)")
            lines.append(f"  {role:<14} {body}")
        return "\n".join(lines)
