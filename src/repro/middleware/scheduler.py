"""High-throughput task scheduling over VM sessions.

§3.2.1 justifies middleware-driven consistency with schedulers that
*know* tasks are independent: "it is sufficient to support many Grid
applications, e.g. when tasks are known to be independent by a
scheduler for high-throughput computing (e.g. as in Condor)".

:class:`TaskScheduler` is that scheduler: it takes a bag of independent
tasks (each a workload factory plus image requirements), fans them out
across the testbed's compute servers — one VM session per task, bounded
concurrency per node — and flushes each session's write-back state when
its task completes.  Because tasks are independent, sessions never need
coherence with each other; the write-back proxies run at full tilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.middleware.imageserver import ImageRequirements
from repro.middleware.sessions import VmSession, VmSessionManager
from repro.sim import AllOf, Environment, FifoResource
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["Task", "TaskResult", "TaskScheduler"]


@dataclass(frozen=True)
class Task:
    """One independent unit of work."""

    name: str
    user: str
    workload_factory: Callable[[], Workload]
    requirements: ImageRequirements = ImageRequirements()


@dataclass
class TaskResult:
    """Outcome of one scheduled task."""

    task: Task
    compute_index: int
    queued_seconds: float       # submission -> session creation started
    instantiation_seconds: float  # session creation (clone + resume)
    execution_seconds: float    # the workload itself
    teardown_seconds: float     # flush + lease release
    workload: Optional[WorkloadResult] = None

    @property
    def turnaround_seconds(self) -> float:
        return (self.queued_seconds + self.instantiation_seconds
                + self.execution_seconds + self.teardown_seconds)


class TaskScheduler:
    """Fan independent tasks out across compute servers."""

    def __init__(self, middleware: VmSessionManager,
                 slots_per_node: int = 1):
        if slots_per_node < 1:
            raise ValueError("slots_per_node must be >= 1")
        self.middleware = middleware
        self.env: Environment = middleware.env
        self._slots = [
            FifoResource(self.env, capacity=slots_per_node,
                         name=f"sched.node{i}")
            for i in range(len(middleware.testbed.compute))]
        self.results: List[TaskResult] = []

    def _least_loaded(self) -> int:
        """Node with the shortest queue (ties to the lowest index)."""
        return min(range(len(self._slots)),
                   key=lambda i: (self._slots[i].count
                                  + self._slots[i].queue_length, i))

    def _run_task(self, task: Task, submitted: float) -> Generator:
        node = self._least_loaded()
        slot = self._slots[node].request()
        yield slot
        try:
            queued = self.env.now - submitted
            t0 = self.env.now
            session: VmSession = yield self.env.process(
                self.middleware.create_session(task.user, task.requirements,
                                               compute_index=node))
            instantiation = self.env.now - t0

            t1 = self.env.now
            workload = task.workload_factory()
            if workload.guest_cache_bytes is not None and session.vm:
                session.vm._guest_cache_capacity = max(
                    workload.guest_cache_bytes // session.vm.block_size, 16)
            result = yield self.env.process(workload.run(session.vm))
            execution = self.env.now - t1

            t2 = self.env.now
            yield self.env.process(self.middleware.end_session(session))
            teardown = self.env.now - t2

            record = TaskResult(task=task, compute_index=node,
                                queued_seconds=queued,
                                instantiation_seconds=instantiation,
                                execution_seconds=execution,
                                teardown_seconds=teardown,
                                workload=result)
            self.results.append(record)
            return record
        finally:
            self._slots[node].release(slot)

    def run_batch(self, tasks: List[Task]) -> Generator:
        """Process: run every task; returns results in completion order.

        Tasks queue on node slots; with more tasks than slots the batch
        naturally pipelines — while one task computes, the next node's
        clone is already streaming in.
        """
        submitted = self.env.now
        jobs = [self.env.process(self._run_task(task, submitted),
                                 name=f"task.{task.name}")
                for task in tasks]
        outcomes = yield AllOf(self.env, jobs)
        return list(outcomes)

    @property
    def makespan_seconds(self) -> float:
        """Total wall time of the last finished batch (max turnaround)."""
        if not self.results:
            return 0.0
        return max(r.turnaround_seconds for r in self.results)
