"""Logical user accounts and short-lived identities (§3.1).

Grid users do not own Unix accounts on every resource; middleware keeps
a pool of *logical accounts* per server and leases one to a user for
the duration of a session ("dynamically map between short-lived user
identities allocated by middleware on behalf of a user").  The
server-side GVFS proxy then rewrites RPC credentials to the leased
identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["AccountManager", "LogicalAccount"]


@dataclass
class LogicalAccount:
    """One leasable Unix identity on a server."""

    uid: int
    gid: int
    leased_to: Optional[str] = None
    lease_expires: float = 0.0

    @property
    def credentials(self) -> Tuple[int, int]:
        return (self.uid, self.gid)


class AccountManager:
    """Pool of logical accounts on one server."""

    def __init__(self, env, base_uid: int = 2000, pool_size: int = 16,
                 lease_seconds: float = 8 * 3600.0):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.env = env
        self.lease_seconds = lease_seconds
        self._pool: List[LogicalAccount] = [
            LogicalAccount(uid=base_uid + i, gid=base_uid + i)
            for i in range(pool_size)]
        self._by_user: Dict[str, LogicalAccount] = {}

    def lease(self, grid_user: str) -> LogicalAccount:
        """Lease an account to ``grid_user`` (idempotent while active)."""
        existing = self._by_user.get(grid_user)
        if existing is not None and existing.lease_expires > self.env.now:
            existing.lease_expires = self.env.now + self.lease_seconds
            return existing
        self._expire()
        for account in self._pool:
            if account.leased_to is None:
                account.leased_to = grid_user
                account.lease_expires = self.env.now + self.lease_seconds
                self._by_user[grid_user] = account
                return account
        raise RuntimeError("logical account pool exhausted")

    def release(self, grid_user: str) -> None:
        """End a lease (session teardown)."""
        account = self._by_user.pop(grid_user, None)
        if account is not None:
            account.leased_to = None
            account.lease_expires = 0.0

    def _expire(self) -> None:
        for account in self._pool:
            if account.leased_to and account.lease_expires <= self.env.now:
                self._by_user.pop(account.leased_to, None)
                account.leased_to = None

    def active_leases(self) -> int:
        self._expire()
        return sum(1 for a in self._pool if a.leased_to is not None)

    def account_of(self, grid_user: str) -> Optional[LogicalAccount]:
        account = self._by_user.get(grid_user)
        if account is not None and account.lease_expires > self.env.now:
            return account
        return None
