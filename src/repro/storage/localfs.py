"""Timed local filesystem: a VFS bound to a disk model.

Simulation processes read and write through :class:`LocalFileSystem`
and are charged the disk's seek/transfer time; the underlying data is
the plain untimed :class:`~repro.storage.vfs.FileSystem`, so untimed
setup code (image preparation, assertions in tests) can bypass timing
via the ``fs`` attribute.

A small in-memory page cache mimics the host buffer cache over local
files: recently accessed chunks cost no disk time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.sim import Environment
from repro.storage.disk import Disk, DiskParams, SCSI_2003
from repro.storage.vfs import CHUNK_SIZE, FileSystem, Inode

__all__ = ["LocalFileSystem"]


class LocalFileSystem:
    """Disk-timed access to an in-memory filesystem tree."""

    def __init__(self, env: Environment, name: str = "localfs",
                 disk_params: DiskParams = SCSI_2003,
                 page_cache_bytes: int = 256 * 1024 * 1024):
        self.env = env
        self.fs = FileSystem(name=name, clock=lambda: env.now)
        self.disk = Disk(env, disk_params, name=f"{name}.disk")
        self._page_cache_capacity = max(page_cache_bytes // CHUNK_SIZE, 1)
        self._page_cache: OrderedDict = OrderedDict()
        # Write-behind state: dirty bytes drain to disk in the background;
        # writers block only when the dirty pool exceeds the limit (the
        # kernel's dirty-ratio behaviour).
        self.dirty_limit = 16 * 1024 * 1024
        self._dirty_bytes = 0
        self._flusher_running = False
        self._below_limit_waiters: list = []
        self._flush_seq = 0  # synthetic sequential offset for flusher writes
        # Adaptive readahead: per-file next-sequential offset; misses on
        # a detected sequential stream pull a whole window off the disk.
        self.readahead_bytes = 128 * 1024
        self._scan_pos: dict = {}          # fileid -> next sequential offset
        # Statistics
        self.cache_hits = 0
        self.cache_misses = 0
        self.readahead_fills = 0

    # -- page cache ------------------------------------------------------------
    def _cache_key(self, inode: Inode, chunk_index: int):
        return (inode.fileid, chunk_index)

    def _cache_touch(self, key) -> bool:
        """Return True on hit; refresh LRU position."""
        if key in self._page_cache:
            self._page_cache.move_to_end(key)
            self.cache_hits += 1
            return True
        self.cache_misses += 1
        return False

    def _cache_insert(self, key) -> None:
        self._page_cache[key] = True
        self._page_cache.move_to_end(key)
        while len(self._page_cache) > self._page_cache_capacity:
            self._page_cache.popitem(last=False)

    def drop_caches(self) -> None:
        """Forget all cached pages (cold-cache experiment setup)."""
        self._page_cache.clear()

    # -- timed I/O ---------------------------------------------------------------
    def timed_read(self, path: str, offset: int, count: int) -> Generator:
        """Process: read bytes with disk/page-cache timing.

        Returns the bytes read (via the process event value).
        """
        inode = self.fs.lookup(path)
        data = yield from self.timed_read_inode(inode, offset, count)
        return data

    def timed_read_inode(self, inode: Inode, offset: int, count: int) -> Generator:
        """Process: like :meth:`timed_read` but addressed by inode."""
        yield from self.timed_scan_inode(inode, offset, count)
        inode.atime = self.env.now
        return inode.data.read(offset, count)

    def timed_scan_inode(self, inode: Inode, offset: int, count: int) -> Generator:
        """Process: charge the time of reading a range without assembling
        the bytes (for bulk pipelines like compress-on-server, where the
        data is consumed by a model, not by the caller).

        Sequential access patterns trigger readahead: the final miss run
        is extended by a window whose chunks land warm in the page
        cache, so streaming reads cost one disk access per window rather
        than one per block.
        """
        size = inode.data.size
        end = min(offset + count, size)
        fid = inode.fileid
        sequential = self._scan_pos.get(fid) == offset
        # Hot loop: one iteration per chunk of every timed read in the
        # system.  The per-chunk cache bookkeeping is inlined (key
        # tuples built in place, LRU methods bound once, hit/miss
        # counters accumulated locally) — the chunk walk order and the
        # disk yields are unchanged, so timing is identical.
        cache = self._page_cache
        move_to_end = cache.move_to_end
        popitem = cache.popitem
        capacity = self._page_cache_capacity
        hits = 0
        misses = 0
        pos = offset
        miss_start: Optional[int] = None
        while pos < end:
            idx = pos // CHUNK_SIZE
            key = (fid, idx)
            chunk_end = (idx + 1) * CHUNK_SIZE
            if chunk_end > end:
                chunk_end = end
            if key in cache:
                move_to_end(key)
                hits += 1
                if miss_start is not None:
                    yield from self.disk.read(inode, miss_start, pos - miss_start)
                    miss_start = None
            else:
                misses += 1
                if miss_start is None:
                    miss_start = idx * CHUNK_SIZE
                cache[key] = True
                while len(cache) > capacity:
                    popitem(last=False)
            pos = chunk_end
        self.cache_hits += hits
        self.cache_misses += misses
        if miss_start is not None:
            read_end = end
            if sequential and end < size:
                read_end = min(end + self.readahead_bytes, size)
                ra_pos = end
                while ra_pos < read_end:
                    key = (fid, ra_pos // CHUNK_SIZE)
                    cache[key] = True
                    move_to_end(key)
                    while len(cache) > capacity:
                        popitem(last=False)
                    ra_pos += CHUNK_SIZE
                self.readahead_fills += 1
            yield from self.disk.read(inode, miss_start, read_end - miss_start)
        self._scan_pos[fid] = end
        return end - max(offset, 0)

    def timed_write(self, path: str, data: bytes, offset: int = 0,
                    sync: bool = False) -> Generator:
        """Process: write bytes; async writes cost only page-cache time,
        ``sync`` writes are charged to the disk immediately."""
        inode = self.fs.lookup(path)
        yield from self.timed_write_inode(inode, data, offset, sync)

    def timed_write_inode(self, inode: Inode, data: bytes, offset: int = 0,
                          sync: bool = False) -> Generator:
        """Process: like :meth:`timed_write` but addressed by inode."""
        inode.data.write(offset, data)
        inode.touch()
        fid = inode.fileid
        cache = self._page_cache
        move_to_end = cache.move_to_end
        popitem = cache.popitem
        capacity = self._page_cache_capacity
        pos = offset
        end = offset + len(data)
        while pos < end:
            idx = pos // CHUNK_SIZE
            key = (fid, idx)
            cache[key] = True
            move_to_end(key)
            while len(cache) > capacity:
                popitem(last=False)
            pos = (idx + 1) * CHUNK_SIZE
        if sync:
            yield from self.disk.write(inode, offset, len(data))
            return
        # Async write-behind: account the bytes as dirty and let the
        # background flusher drain them; block only above the dirty limit.
        self._dirty_bytes += len(data)
        if not self._flusher_running:
            self._flusher_running = True
            self.env.process(self._flusher(), name=f"{self.fs.name}.flusher")
        while self._dirty_bytes > self.dirty_limit:
            gate = self.env.event()
            self._below_limit_waiters.append(gate)
            yield gate

    def stage_bulk_write(self, inode: Inode, nbytes: int,
                         warm_chunks: Optional[list] = None) -> Generator:
        """Process: account a bulk write of ``nbytes`` to ``inode`` whose
        payload was placed in the tree out-of-band (e.g. a whole-file
        install into a proxy cache).

        The bytes enter the write-behind pool (the flusher drains them
        at disk speed) and the given chunk indices are warmed in the
        page cache, so an immediately following read runs at memory
        speed — exactly what a freshly written file looks like on a
        real host.
        """
        if nbytes < 0:
            raise ValueError(f"negative bulk write: {nbytes}")
        for idx in warm_chunks or ():
            self._cache_insert(self._cache_key(inode, idx))
        self._dirty_bytes += nbytes
        if not self._flusher_running:
            self._flusher_running = True
            self.env.process(self._flusher(), name=f"{self.fs.name}.flusher")
        while self._dirty_bytes > self.dirty_limit:
            gate = self.env.event()
            self._below_limit_waiters.append(gate)
            yield gate

    def _flusher(self) -> Generator:
        """Background process draining dirty bytes at disk speed."""
        batch = 1024 * 1024
        while self._dirty_bytes > 0:
            take = min(batch, self._dirty_bytes)
            offset = self._flush_seq
            self._flush_seq += take
            yield from self.disk.write(self, offset, take)
            self._dirty_bytes -= take
            if self._dirty_bytes <= self.dirty_limit and self._below_limit_waiters:
                waiters, self._below_limit_waiters = self._below_limit_waiters, []
                for gate in waiters:
                    gate.succeed()
        self._flusher_running = False

    def sync(self) -> Generator:
        """Process: wait until all dirty write-behind data is on disk."""
        while self._dirty_bytes > 0:
            gate = self.env.event()
            self._below_limit_waiters.append(gate)
            yield gate

    @property
    def dirty_bytes(self) -> int:
        """Bytes written but not yet flushed to the disk model."""
        return self._dirty_bytes
