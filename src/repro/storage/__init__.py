"""Local storage substrate: disk timing, sparse files, POSIX-ish VFS.

Everything GVFS serves ultimately lives in a :class:`~repro.storage.vfs.
FileSystem` — an in-memory inode/directory tree whose file contents are
held sparsely (explicit chunks over an implicit zero/generator fill),
so multi-gigabyte VM images cost only their touched bytes.  The
:class:`~repro.storage.disk.Disk` model charges era-accurate seek and
transfer time; :class:`~repro.storage.localfs.LocalFileSystem` binds the
two together for timed access from simulation processes.
"""

from repro.storage.disk import Disk, DiskParams, SCSI_2003, IDE_2003
from repro.storage.vfs import (
    FileSystem,
    FsError,
    Inode,
    SparseFile,
)
from repro.storage.localfs import LocalFileSystem

__all__ = [
    "Disk",
    "DiskParams",
    "FileSystem",
    "FsError",
    "IDE_2003",
    "Inode",
    "LocalFileSystem",
    "SCSI_2003",
    "SparseFile",
]
