"""In-memory POSIX-ish filesystem with sparse file contents.

Real bytes flow through the whole reproduction — when a cloned VM reads
its memory state through two proxies and a WAN, the bytes it gets are
checked against the golden image.  To keep multi-GB VM images cheap,
:class:`SparseFile` stores only written chunks explicitly; unwritten
ranges come from an optional deterministic :class:`ContentSource` (used
to give virtual disks realistic non-zero content without materializing
them) or are zero.

The tree supports directories, regular files, symbolic links, rename,
and stable inode numbers — everything the NFS substrate needs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "CHUNK_SIZE",
    "ContentSource",
    "FileSystem",
    "FsError",
    "Inode",
    "SparseFile",
]

#: Internal chunk granularity of sparse files (bytes).
CHUNK_SIZE = 8192

_ZERO_CHUNK = bytes(CHUNK_SIZE)


class FsError(Exception):
    """Filesystem error with an errno-style symbolic code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ContentSource:
    """Deterministic generator of a file's initial (unwritten) content.

    Subclasses override :meth:`chunk`; override :meth:`is_zero` too when
    zero-ness can be decided without generating the bytes (important for
    scanning multi-hundred-MB memory images quickly).
    """

    def chunk(self, index: int) -> bytes:
        """Return the ``CHUNK_SIZE`` bytes of chunk ``index``."""
        raise NotImplementedError

    def is_zero(self, index: int) -> bool:
        """True when chunk ``index`` is all zero bytes."""
        data = self.chunk(index)
        return data.count(0) == len(data)


class SparseFile:
    """Byte container: explicit written chunks over source/zero fill."""

    def __init__(self, size: int = 0, source: Optional[ContentSource] = None):
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.size = size
        self.source = source
        self._chunks: Dict[int, bytes] = {}

    # -- chunk-level access ------------------------------------------------
    def _chunk_bytes(self, index: int) -> bytes:
        data = self._chunks.get(index)
        if data is not None:
            return data
        if self.source is not None:
            return self.source.chunk(index)
        return _ZERO_CHUNK

    def chunk_is_zero(self, index: int) -> bool:
        """True when chunk ``index`` currently holds only zero bytes."""
        data = self._chunks.get(index)
        if data is not None:
            # Full chunks compare against the zero constant (memcmp with
            # early exit) instead of counting every zero byte.
            if len(data) == CHUNK_SIZE:
                return data == _ZERO_CHUNK
            return data.count(0) == len(data)
        if self.source is not None:
            return self.source.is_zero(index)
        return True

    @property
    def materialized_chunks(self) -> int:
        """Number of chunks held explicitly (memory cost indicator)."""
        return len(self._chunks)

    # -- byte-level access ---------------------------------------------------
    def read(self, offset: int, count: int) -> bytes:
        """Read up to ``count`` bytes at ``offset`` (short read at EOF)."""
        if offset < 0 or count < 0:
            raise ValueError(f"bad read offset={offset} count={count}")
        if offset >= self.size:
            return b""
        count = min(count, self.size - offset)
        end = offset + count
        idx, within = divmod(offset, CHUNK_SIZE)
        if end <= (idx + 1) * CHUNK_SIZE:
            # Single-chunk read (every block-granular access): hand back
            # the stored chunk or one slice of it, no scratch buffer.
            chunk = self._chunk_bytes(idx)
            if within == 0 and count == CHUNK_SIZE and len(chunk) == CHUNK_SIZE:
                return chunk
            return chunk[within:within + count]
        out = bytearray()
        pos = offset
        while pos < end:
            idx, within = divmod(pos, CHUNK_SIZE)
            take = min(CHUNK_SIZE - within, end - pos)
            chunk = self._chunk_bytes(idx)
            if within == 0 and take == CHUNK_SIZE:
                out += chunk
            else:
                out += chunk[within:within + take]
            pos += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, extending the file if needed."""
        if offset < 0:
            raise ValueError(f"negative write offset: {offset}")
        if (len(data) == CHUNK_SIZE and offset % CHUNK_SIZE == 0
                and type(data) is bytes):
            # Aligned whole-chunk write (every block-granular copy):
            # store the caller's immutable bytes directly, skipping the
            # memoryview walk and its re-buffering.
            idx = offset // CHUNK_SIZE
            if self.source is None and data == _ZERO_CHUNK:
                self._chunks.pop(idx, None)
            else:
                self._chunks[idx] = data
            end = offset + CHUNK_SIZE
            if end > self.size:
                self.size = end
            return
        pos = offset
        remaining = memoryview(bytes(data))
        while len(remaining):
            idx, within = divmod(pos, CHUNK_SIZE)
            take = min(CHUNK_SIZE - within, len(remaining))
            if within == 0 and take == CHUNK_SIZE:
                blob = bytes(remaining[:take])
                if self.source is None and blob == _ZERO_CHUNK:
                    # All-zero chunk in a zero-filled file: stay sparse, so
                    # copying a mostly-zero VM memory image costs only its
                    # payload.
                    self._chunks.pop(idx, None)
                else:
                    self._chunks[idx] = blob
            else:
                base = bytearray(self._chunk_bytes(idx))
                base[within:within + take] = remaining[:take]
                self._chunks[idx] = bytes(base)
            remaining = remaining[take:]
            pos += take
        if pos > self.size:
            self.size = pos

    def truncate(self, new_size: int) -> None:
        """Shrink or grow the file; dropped chunks are discarded."""
        if new_size < 0:
            raise ValueError(f"negative size: {new_size}")
        if new_size < self.size:
            keep_last = (new_size + CHUNK_SIZE - 1) // CHUNK_SIZE
            self._chunks = {i: c for i, c in self._chunks.items() if i < keep_last}
            # Zero the tail of the now-final chunk so re-extension reads zeros.
            if new_size % CHUNK_SIZE and (new_size // CHUNK_SIZE) in self._chunks:
                idx = new_size // CHUNK_SIZE
                cut = new_size % CHUNK_SIZE
                base = bytearray(self._chunks[idx])
                base[cut:] = bytes(CHUNK_SIZE - cut)
                self._chunks[idx] = bytes(base)
        self.size = new_size

    # -- bulk helpers ----------------------------------------------------------
    def n_chunks(self) -> int:
        return (self.size + CHUNK_SIZE - 1) // CHUNK_SIZE

    def iter_chunks(self) -> Iterator[Union[bytes, int]]:
        """Yield the file's content as literal ``bytes`` chunks or
        ``int`` lengths of zero runs (for compression-size estimation)."""
        zero_run = 0
        total = self.n_chunks()
        for idx in range(total):
            length = (min(CHUNK_SIZE, self.size - idx * CHUNK_SIZE))
            if self.chunk_is_zero(idx):
                zero_run += length
                continue
            if zero_run:
                yield zero_run
                zero_run = 0
            yield self._chunk_bytes(idx)[:length]
        if zero_run:
            yield zero_run

    def zero_chunk_indices(self) -> List[int]:
        """Indices of all currently-zero chunks (metadata generation)."""
        return [i for i in range(self.n_chunks()) if self.chunk_is_zero(i)]

    def copy(self) -> "SparseFile":
        """Cheap logical copy (chunks are immutable bytes, shared)."""
        clone = SparseFile(self.size, self.source)
        clone._chunks = dict(self._chunks)
        return clone


class Inode:
    """Filesystem object metadata plus payload."""

    FILE = "file"
    DIR = "dir"
    SYMLINK = "symlink"

    def __init__(self, fileid: int, kind: str, clock: Callable[[], float]):
        self.fileid = fileid
        self.kind = kind
        self._clock = clock
        self.mode = 0o755 if kind == Inode.DIR else 0o644
        self.uid = 0
        self.gid = 0
        self.ctime = clock()
        self.mtime = self.ctime
        self.atime = self.ctime
        self.nlink = 1
        # Payload: exactly one of these is used, per kind.
        self.data: Optional[SparseFile] = SparseFile() if kind == Inode.FILE else None
        self.entries: Optional[Dict[str, "Inode"]] = ({} if kind == Inode.DIR else None)
        self.target: Optional[str] = None  # symlink target path

    @property
    def size(self) -> int:
        if self.kind == Inode.FILE:
            return self.data.size
        if self.kind == Inode.SYMLINK:
            return len(self.target or "")
        return CHUNK_SIZE  # conventional directory size

    def touch(self) -> None:
        """Update mtime (content changed)."""
        self.mtime = self._clock()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Inode #{self.fileid} {self.kind} size={self.size}>"


class FileSystem:
    """A mountable tree of inodes addressed by absolute slash paths."""

    MAX_SYMLINK_DEPTH = 16

    def __init__(self, name: str = "fs", clock: Optional[Callable[[], float]] = None):
        self.name = name
        self._clock = clock or itertools.count(1).__next__
        self._next_fileid = itertools.count(2)
        self.root = Inode(1, Inode.DIR, self._wrapped_clock)
        self._by_fileid: Dict[int, Inode] = {1: self.root}

    def _wrapped_clock(self) -> float:
        return float(self._clock())

    # -- path plumbing -------------------------------------------------------
    @staticmethod
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise FsError("EINVAL", f"path must be absolute: {path!r}")
        return [p for p in path.split("/") if p]

    def _walk(self, parts: List[str], follow: bool = True,
              _depth: int = 0) -> Inode:
        if _depth > self.MAX_SYMLINK_DEPTH:
            raise FsError("ELOOP", "too many levels of symbolic links")
        node = self.root
        for i, part in enumerate(parts):
            if node.kind == Inode.SYMLINK:
                node = self._walk(self._split(node.target), True, _depth + 1)
            if node.kind != Inode.DIR:
                raise FsError("ENOTDIR", "/".join(parts[:i]))
            child = node.entries.get(part)
            if child is None:
                raise FsError("ENOENT", "/".join(parts[:i + 1]))
            node = child
        if follow and node.kind == Inode.SYMLINK:
            node = self._walk(self._split(node.target), True, _depth + 1)
        return node

    def lookup(self, path: str, follow: bool = True) -> Inode:
        """Resolve ``path`` to an inode, following symlinks by default."""
        return self._walk(self._split(path), follow)

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except FsError:
            return False

    def get_inode(self, fileid: int) -> Inode:
        """Fetch an inode by number (NFS file-handle resolution)."""
        try:
            return self._by_fileid[fileid]
        except KeyError:
            raise FsError("ESTALE", f"no inode #{fileid}") from None

    def _parent_of(self, path: str) -> Tuple[Inode, str]:
        parts = self._split(path)
        if not parts:
            raise FsError("EINVAL", "operation on root")
        parent = self._walk(parts[:-1], follow=True)
        if parent.kind != Inode.DIR:
            raise FsError("ENOTDIR", "/".join(parts[:-1]))
        return parent, parts[-1]

    def _new_inode(self, kind: str) -> Inode:
        node = Inode(next(self._next_fileid), kind, self._wrapped_clock)
        self._by_fileid[node.fileid] = node
        return node

    # -- namespace operations ---------------------------------------------------
    def mkdir(self, path: str, parents: bool = False) -> Inode:
        """Create a directory; with ``parents`` create missing ancestors."""
        if parents:
            parts = self._split(path)
            for i in range(1, len(parts)):
                prefix = "/" + "/".join(parts[:i])
                if not self.exists(prefix):
                    self.mkdir(prefix)
        parent, name = self._parent_of(path)
        if name in parent.entries:
            raise FsError("EEXIST", path)
        node = self._new_inode(Inode.DIR)
        parent.entries[name] = node
        parent.touch()
        return node

    def create(self, path: str, size: int = 0,
               source: Optional[ContentSource] = None,
               exclusive: bool = True) -> Inode:
        """Create a regular file (optionally pre-sized with a source)."""
        parent, name = self._parent_of(path)
        existing = parent.entries.get(name)
        if existing is not None:
            if exclusive:
                raise FsError("EEXIST", path)
            if existing.kind != Inode.FILE:
                raise FsError("EISDIR", path)
            return existing
        node = self._new_inode(Inode.FILE)
        node.data = SparseFile(size, source)
        parent.entries[name] = node
        parent.touch()
        return node

    def symlink(self, path: str, target: str) -> Inode:
        """Create a symbolic link at ``path`` pointing to ``target``."""
        parent, name = self._parent_of(path)
        if name in parent.entries:
            raise FsError("EEXIST", path)
        node = self._new_inode(Inode.SYMLINK)
        node.target = target
        parent.entries[name] = node
        parent.touch()
        return node

    def readlink(self, path: str) -> str:
        node = self.lookup(path, follow=False)
        if node.kind != Inode.SYMLINK:
            raise FsError("EINVAL", f"not a symlink: {path}")
        return node.target

    def readdir(self, path: str) -> List[str]:
        node = self.lookup(path)
        if node.kind != Inode.DIR:
            raise FsError("ENOTDIR", path)
        return sorted(node.entries)

    def unlink(self, path: str) -> None:
        """Remove a file or symlink."""
        parent, name = self._parent_of(path)
        node = parent.entries.get(name)
        if node is None:
            raise FsError("ENOENT", path)
        if node.kind == Inode.DIR:
            raise FsError("EISDIR", path)
        del parent.entries[name]
        del self._by_fileid[node.fileid]
        parent.touch()

    def rmdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.entries.get(name)
        if node is None:
            raise FsError("ENOENT", path)
        if node.kind != Inode.DIR:
            raise FsError("ENOTDIR", path)
        if node.entries:
            raise FsError("ENOTEMPTY", path)
        del parent.entries[name]
        del self._by_fileid[node.fileid]
        parent.touch()

    def rename(self, old: str, new: str) -> None:
        """Atomically move ``old`` to ``new`` (replacing a plain file)."""
        old_parent, old_name = self._parent_of(old)
        node = old_parent.entries.get(old_name)
        if node is None:
            raise FsError("ENOENT", old)
        new_parent, new_name = self._parent_of(new)
        displaced = new_parent.entries.get(new_name)
        if displaced is not None:
            if displaced.kind == Inode.DIR:
                raise FsError("EISDIR", new)
            del self._by_fileid[displaced.fileid]
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = node
        old_parent.touch()
        new_parent.touch()

    # -- inode-level namespace operations (NFS-style (dir, name) addressing) --
    def lookup_in(self, directory: Inode, name: str) -> Inode:
        """Find ``name`` inside ``directory`` (no symlink following)."""
        if directory.kind != Inode.DIR:
            raise FsError("ENOTDIR", f"#{directory.fileid}")
        child = directory.entries.get(name)
        if child is None:
            raise FsError("ENOENT", name)
        return child

    def create_in(self, directory: Inode, name: str,
                  exclusive: bool = True) -> Inode:
        if directory.kind != Inode.DIR:
            raise FsError("ENOTDIR", f"#{directory.fileid}")
        existing = directory.entries.get(name)
        if existing is not None:
            if exclusive:
                raise FsError("EEXIST", name)
            if existing.kind != Inode.FILE:
                raise FsError("EISDIR", name)
            return existing
        node = self._new_inode(Inode.FILE)
        directory.entries[name] = node
        directory.touch()
        return node

    def mkdir_in(self, directory: Inode, name: str) -> Inode:
        if directory.kind != Inode.DIR:
            raise FsError("ENOTDIR", f"#{directory.fileid}")
        if name in directory.entries:
            raise FsError("EEXIST", name)
        node = self._new_inode(Inode.DIR)
        directory.entries[name] = node
        directory.touch()
        return node

    def symlink_in(self, directory: Inode, name: str, target: str) -> Inode:
        if directory.kind != Inode.DIR:
            raise FsError("ENOTDIR", f"#{directory.fileid}")
        if name in directory.entries:
            raise FsError("EEXIST", name)
        node = self._new_inode(Inode.SYMLINK)
        node.target = target
        directory.entries[name] = node
        directory.touch()
        return node

    def remove_in(self, directory: Inode, name: str) -> None:
        """REMOVE: unlink a file or symlink by (dir, name)."""
        node = self.lookup_in(directory, name)
        if node.kind == Inode.DIR:
            raise FsError("EISDIR", name)
        del directory.entries[name]
        del self._by_fileid[node.fileid]
        directory.touch()

    def rmdir_in(self, directory: Inode, name: str) -> None:
        node = self.lookup_in(directory, name)
        if node.kind != Inode.DIR:
            raise FsError("ENOTDIR", name)
        if node.entries:
            raise FsError("ENOTEMPTY", name)
        del directory.entries[name]
        del self._by_fileid[node.fileid]
        directory.touch()

    def rename_in(self, from_dir: Inode, name: str,
                  to_dir: Inode, new_name: str) -> None:
        node = self.lookup_in(from_dir, name)
        if to_dir.kind != Inode.DIR:
            raise FsError("ENOTDIR", f"#{to_dir.fileid}")
        displaced = to_dir.entries.get(new_name)
        if displaced is not None:
            if displaced.kind == Inode.DIR:
                raise FsError("EISDIR", new_name)
            del self._by_fileid[displaced.fileid]
        del from_dir.entries[name]
        to_dir.entries[new_name] = node
        from_dir.touch()
        to_dir.touch()

    # -- convenience data access ---------------------------------------------
    def read(self, path: str, offset: int = 0, count: Optional[int] = None) -> bytes:
        node = self.lookup(path)
        if node.kind != Inode.FILE:
            raise FsError("EISDIR", path)
        node.atime = self._wrapped_clock()
        if count is None:
            count = node.data.size - offset
        return node.data.read(offset, max(count, 0))

    def write(self, path: str, data: bytes, offset: int = 0) -> None:
        node = self.lookup(path)
        if node.kind != Inode.FILE:
            raise FsError("EISDIR", path)
        node.data.write(offset, data)
        node.touch()

    def walk_files(self, path: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Yield ``(path, inode)`` for every regular file under ``path``."""
        node = self.lookup(path)
        base = path.rstrip("/")
        if node.kind == Inode.FILE:
            yield path, node
            return
        for name in sorted(node.entries or {}):
            child = node.entries[name]
            child_path = f"{base}/{name}"
            if child.kind == Inode.DIR:
                yield from self.walk_files(child_path)
            elif child.kind == Inode.FILE:
                yield child_path, child
