"""Rotating-disk timing model (2003-era SCSI/IDE).

Charges positioning time (seek + rotational latency) for
non-sequential accesses and media transfer time for every byte; a
single disk arm is a FIFO resource so concurrent requests queue.
Sequentiality is tracked per disk: a request that starts where the
previous one ended skips positioning, which is what makes warm proxy
cache banks (written and read back largely sequentially) fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim import Environment, FifoResource

__all__ = ["Disk", "DiskParams", "SCSI_2003", "IDE_2003"]


@dataclass(frozen=True)
class DiskParams:
    """Static performance characteristics of a disk."""

    #: Average positioning time (seek + half-rotation), seconds.
    positioning: float
    #: Sustained media transfer rate, bytes/second.
    bandwidth: float
    #: Per-request controller/driver overhead, seconds.
    overhead: float = 50e-6
    #: Cost of the arm hopping between two sequential streams — far
    #: below a full positioning because the elevator batches requests
    #: and the track cache absorbs short hops.
    stream_switch: float = 1.5e-3

    def access_time(self, nbytes: int, sequential: bool,
                    switched_stream: bool = False) -> float:
        """Service time for one request, excluding queueing."""
        t = self.overhead + nbytes / self.bandwidth
        if not sequential:
            t += self.positioning
        elif switched_stream:
            t += self.stream_switch
        return t


#: 10k-RPM SCSI disk of the paper's cluster nodes (18 GB Ultra160).
SCSI_2003 = DiskParams(positioning=5.5e-3, bandwidth=40e6)

#: Contemporary desktop IDE disk (for workstation scenarios).
IDE_2003 = DiskParams(positioning=9.0e-3, bandwidth=25e6)


class Disk:
    """A single-arm disk with FIFO queueing and sequential detection.

    A request is *sequential* when its offset continues where the last
    request **of the same stream** (file) ended — per-stream tracking
    models the elevator and per-file readahead keeping interleaved
    sequential streams efficient; hopping between streams costs only a
    small switch penalty, while a genuine discontinuity pays the full
    positioning time.
    """

    def __init__(self, env: Environment, params: DiskParams = SCSI_2003,
                 name: str = "disk"):
        self.env = env
        self.params = params
        self.name = name
        self._arm = FifoResource(env, capacity=1, name=f"{name}.arm")
        self._stream_pos: dict = {}        # id(stream) -> next seq offset
        self._last_served: Optional[int] = None
        # Statistics
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0
        self.seeks = 0

    def _access(self, stream: object, offset: int, nbytes: int) -> Generator:
        if nbytes < 0 or offset < 0:
            raise ValueError(f"bad access offset={offset} nbytes={nbytes}")
        req = self._arm.request()
        try:
            yield req
            sid = id(stream)
            sequential = self._stream_pos.get(sid) == offset
            switched = self._last_served != sid
            if not sequential:
                self.seeks += 1
            t = self.params.access_time(nbytes, sequential, switched)
            yield self.env.timeout(t)
            self.busy_time += t
            self._stream_pos[sid] = offset + nbytes
            self._last_served = sid
        finally:
            self._arm.release(req)

    def read(self, stream: object, offset: int, nbytes: int) -> Generator:
        """Process: time a read of ``nbytes`` at ``offset`` of ``stream``."""
        yield from self._access(stream, offset, nbytes)
        self.reads += 1
        self.bytes_read += nbytes

    def write(self, stream: object, offset: int, nbytes: int) -> Generator:
        """Process: time a write of ``nbytes`` at ``offset`` of ``stream``."""
        yield from self._access(stream, offset, nbytes)
        self.writes += 1
        self.bytes_written += nbytes

    @property
    def queue_length(self) -> int:
        return self._arm.queue_length
