"""Cloning experiments (§4.3): Figure 6 and Table 1.

Clones 320 MB-RAM / 1.6 GB-disk non-persistent images under the
scenarios of §4.3.1:

* **LOCAL** — images on the compute server's own disk;
* **WAN_S1** — one golden image cloned eight times sequentially
  (temporal locality between clonings);
* **WAN_S2** — eight distinct images cloned once each (no locality);
* **WAN_S3** — eight distinct images with a *second-level* proxy cache
  on a LAN server, pre-warmed by earlier clonings for other compute
  servers on the same LAN;
* **WAN_P** — eight images cloned to eight compute servers in parallel,
  sharing one image server and server-side proxy (Table 1).

All GVFS extensions are active: private data channels, proxy disk
caching and meta-data handling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.session import (
    GvfsSession,
    LocalMount,
    Scenario,
    SecondLevelCache,
    ServerEndpoint,
)
from repro.net.topology import Testbed, make_paper_testbed
from repro.vm.cloning import CloneManager, CloneResult
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VmMonitor

__all__ = ["CloneBenchResult", "CloneScenario", "run_cloning_benchmark",
           "run_parallel_cloning"]

#: The cloning VM of §4.3.2.
CLONE_VM_CONFIG = VmConfig(name="golden", memory_mb=320, disk_gb=1.6,
                           persistent=False)

N_CLONES = 8

#: Zero-filled fraction of the golden images' memory state.  Post-boot
#: images are zero-rich (§3.2.2 measures ~92 % for a 512 MB VM); the
#: 320 MB cloning images carry a somewhat larger resident set.
CLONE_IMAGE_ZERO_FRACTION = 0.82


def _cloning_testbed(n_compute: int) -> Testbed:
    """§4.1's cloning nodes: quad 2.4 GHz Xeons (~2.2x the PIII
    reference), idle while cloning, so nearly all RAM is page cache."""
    return make_paper_testbed(
        n_compute=n_compute, compute_cpu_speed=2.2,
        compute_page_cache_bytes=768 * 1024 * 1024)


class CloneScenario(enum.Enum):
    LOCAL = "Local"
    WAN_S1 = "WAN-S1"
    WAN_S2 = "WAN-S2"
    WAN_S3 = "WAN-S3"


@dataclass
class CloneBenchResult:
    """Times of a sequence of clonings."""

    scenario: str
    clone_seconds: List[float] = field(default_factory=list)
    details: List[CloneResult] = field(default_factory=list)
    #: Wall-clock of a parallel batch (== sum for sequential runs).
    wall_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total footprint: wall-clock for parallel batches, sum of the
        per-clone times for sequential runs."""
        return self.wall_seconds or sum(self.clone_seconds)


def _make_images(fs, n: int, distinct: bool) -> List[VmImage]:
    """Create golden images (with meta-data) on the image server."""
    images = []
    for i in range(n):
        seed = 100 + (i if distinct else 0)
        directory = f"/images/golden{i if distinct else 0}"
        if fs.exists(directory):
            images.append(VmImage.load(fs, directory))
            continue
        cfg = VmConfig(name=f"golden{i if distinct else 0}",
                       memory_mb=CLONE_VM_CONFIG.memory_mb,
                       disk_gb=CLONE_VM_CONFIG.disk_gb,
                       persistent=False, seed=seed)
        image = VmImage.create(fs, directory, cfg,
                               zero_fraction=CLONE_IMAGE_ZERO_FRACTION)
        image.generate_metadata()
        images.append(image)
    return images


def run_cloning_benchmark(scenario: CloneScenario,
                          n_clones: int = N_CLONES,
                          warm: bool = False,
                          cold_between: bool = False,
                          testbed: Optional[Testbed] = None,
                          ) -> CloneBenchResult:
    """Sequential cloning under one §4.3.1 scenario.

    ``warm=True`` runs a full warm-up pass first (Table 1's warm row);
    ``cold_between=True`` flushes every cache between clonings (Table
    1's cold row: each of the eight clonings starts cold).  For WAN_S3
    the warm-up happens on a *different* compute node, which warms only
    the shared second-level LAN cache.
    """
    testbed = testbed or _cloning_testbed(
        n_compute=2 if scenario is CloneScenario.WAN_S3 else 1)
    env = testbed.env
    result = CloneBenchResult(scenario=scenario.value)

    if scenario is CloneScenario.LOCAL:
        compute = testbed.compute[0]
        images = _make_images(compute.local.fs, n_clones, distinct=False)
        mount = LocalMount(compute.local)
        monitor = VmMonitor(env, compute)
        manager = CloneManager(env, monitor, mount, LocalMount(compute.local))

        def driver(env):
            for i in range(n_clones):
                res = yield env.process(manager.clone(
                    images[0].directory, f"/clones/clone{i}",
                    clone_name=f"clone{i}"))
                result.clone_seconds.append(res.total_seconds)
                result.details.append(res)

        env.process(driver(env))
        env.run()
        return result

    endpoint = ServerEndpoint(env, testbed.wan_server)
    distinct = scenario is not CloneScenario.WAN_S1
    images = _make_images(endpoint.export.fs, n_clones, distinct=distinct)

    second_level = None
    if scenario is CloneScenario.WAN_S3:
        second_level = SecondLevelCache(testbed, endpoint)

    def make_rig(compute_index: int):
        session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                    endpoint=endpoint,
                                    compute_index=compute_index,
                                    via=second_level)
        compute = testbed.compute[compute_index]
        monitor = VmMonitor(env, compute)
        manager = CloneManager(env, monitor, session.mount,
                               LocalMount(compute.local))
        return session, manager

    session, manager = make_rig(0)

    def clone_sequence(manager, tag: str, record: bool):
        for i in range(n_clones):
            image = images[i]
            if cold_between:
                yield env.process(session.cold_caches())
            res = yield env.process(manager.clone(
                image.directory, f"/clones/{tag}{i}",
                clone_name=f"{tag}{i}"))
            if record:
                result.clone_seconds.append(res.total_seconds)
                result.details.append(res)

    def driver(env):
        if scenario is CloneScenario.WAN_S3:
            # Pre-warm the LAN second-level cache via another node.
            _, warm_manager = make_rig(1)
            yield env.process(clone_sequence(warm_manager, "warmup", False))
        if warm:
            yield env.process(clone_sequence(manager, "warmpass", False))
        yield env.process(clone_sequence(manager, "clone", True))

    env.process(driver(env))
    env.run()
    return result


def run_parallel_cloning(n_clones: int = N_CLONES, warm: bool = False,
                         testbed: Optional[Testbed] = None) -> CloneBenchResult:
    """WAN-P: eight images cloned to eight compute servers in parallel,
    sharing one image server and one server-side GVFS proxy (Table 1)."""
    testbed = testbed or _cloning_testbed(n_compute=n_clones)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    images = _make_images(endpoint.export.fs, n_clones, distinct=True)
    result = CloneBenchResult(scenario="WAN-P")

    managers = []
    for i in range(n_clones):
        session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                    endpoint=endpoint, compute_index=i)
        monitor = VmMonitor(env, testbed.compute[i])
        managers.append(CloneManager(env, monitor, session.mount,
                                     LocalMount(testbed.compute[i].local)))

    def one(env, i, tag, record):
        res = yield env.process(managers[i].clone(
            images[i].directory, f"/clones/{tag}{i}", clone_name=f"{tag}{i}"))
        if record:
            result.details.append(res)
        return res.total_seconds

    def driver(env):
        from repro.sim import AllOf
        if warm:
            warmups = [env.process(one(env, i, "warm", False))
                       for i in range(n_clones)]
            yield AllOf(env, warmups)
        t0 = env.now
        clones = [env.process(one(env, i, "par", True))
                  for i in range(n_clones)]
        times = yield AllOf(env, clones)
        result.clone_seconds.extend(times)
        # For parallel cloning the paper reports wall-clock of the batch.
        result.wall_seconds = env.now - t0

    env.process(driver(env))
    env.run()
    return result
