"""Chaos sweep: layer-targeted faults with end-to-end integrity (PR 8).

The fault benchmark (:mod:`repro.experiments.faultbench`) kills whole
links, servers and proxies.  This sweep aims smaller: one cached frame
garbled inside one named cache, one RPC procedure blackholed at one
layer of one cascade level, one upload dropped on the floor — and
asserts three properties the coarse scenarios cannot:

* **zero corrupted bytes served** — every read is compared against the
  written payload; the verify-mode :class:`~repro.core.layers.checksum
  .ChecksumLayer` must catch injected corruption wherever the bytes
  came from (own frame, cascade level, peer borrow) and repair it by
  refetching from the upstream of record;
* **zero lost acknowledged writes** — once a write is acknowledged,
  dropped uploads and blackholed WRITEs may delay durability but never
  lose it;
* **layer-local blast radius** — the fault markers (frames corrupted,
  procs blackholed/delayed/duplicated, uploads stalled/dropped) light
  up *only* on the targeted layer of the targeted stack.

Each cell of the (layer x fault x workload) matrix is an independent
seeded run on a depth-2 cascade (tiny client cache -> LAN second level
-> WAN origin) with a cooperative peer and exclusive demotion armed,
so every provenance path a block can take is in play.  Cells run
twice; ``replay_identical`` asserts bit-identical metrics and fault
timelines.

Two control runs anchor the sweep:

* the **negative control** repeats a corruption cell with the checksum
  layer absent and must show corrupted bytes reaching the reader —
  proof the sweep's zeros are earned by the layer, not by luck;
* the **golden check** runs the clean workload with and without the
  checksum layer and requires bit-identical elapsed time — recording
  and verifying are synchronous crc32 calls, so integrity costs zero
  simulation events on the happy path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.config import ProxyCacheConfig
from repro.core.layers.checksum import ChecksumRegistry
from repro.core.session import (
    CascadeLevelSpec,
    GvfsSession,
    Scenario,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import make_paper_testbed
from repro.sim import Environment
from repro.sim.chaos import attach_stack, layer_fault, layer_outage
from repro.sim.faults import FaultInjector, FaultKind
from repro.vm.image import VmConfig, VmImage

__all__ = ["DEFAULT_SEED", "check_report", "format_report",
           "run_chaosbench", "run_golden_check", "run_negative_control"]

DEFAULT_SEED = 17

#: Client cache: 8 frames, so reads thrash, evict and demote constantly.
TINY_CACHE = ProxyCacheConfig(capacity_bytes=8 * 8192,
                              n_banks=4, associativity=2)
#: Peer / second-level cache: holds the whole working set.
BIG_CACHE = ProxyCacheConfig(capacity_bytes=64 * 1024 * 1024,
                             n_banks=32, associativity=4)

#: A faulted run may be slower than its clean baseline by at most this
#: many simulated seconds (outages are <= 3 s; the retry ladder adds
#: bounded backoff on top).
RECOVERY_BOUND_S = 20.0

#: Fault-marker counters: each is bumped only by its layer's fault
#: port, so "markers light up off-target" means the blast radius leaked.
_MARKERS = ("frames_corrupted", "procs_blackholed", "procs_delayed",
            "procs_duplicated", "stalled_uploads", "dropped_uploads")


def _n_blocks(quick: bool) -> int:
    return 24 if quick else 48


def _n_write_blocks(quick: bool) -> int:
    return 12 if quick else 24


def _payload(seed: int, size: int) -> bytes:
    return random.Random(seed).randbytes(size)


def _lost_blocks(server: bytes, written: bytes, block_size: int) -> int:
    n = (len(written) + block_size - 1) // block_size
    return sum(1 for i in range(n)
               if server[i * block_size:(i + 1) * block_size]
               != written[i * block_size:(i + 1) * block_size])


def _mismatch_bytes(got: bytes, want: bytes) -> int:
    return (sum(1 for a, b in zip(got, want) if a != b)
            + abs(len(got) - len(want)))


def _fault_markers(stacks: Dict[str, object]) -> Dict[str, int]:
    """Nonzero fault markers as ``{"stack/role.counter": n}``."""
    out: Dict[str, int] = {}
    for sname, stack in stacks.items():
        for lay in stack.layers:
            for field in _MARKERS:
                value = getattr(lay.stats, field, 0)
                if value:
                    out[f"{sname}/{lay.ROLE}.{field}"] = value
    return out


def _checksum_totals(stacks: Dict[str, object]) -> Dict[str, int]:
    totals = {"corruptions_caught": 0, "corruptions_repaired": 0,
              "verify_unrepaired": 0, "crcs_verified": 0}
    for stack in stacks.values():
        lay = stack.layer("checksum")
        if lay is None:
            continue
        for field in totals:
            totals[field] += getattr(lay.stats, field)
    return totals


# --------------------------------------------------------------------------
# The cell matrix
# --------------------------------------------------------------------------

def _cells(quick: bool, seed: int) -> List[Dict]:
    """The (layer x fault x workload) matrix, >= 24 cells.

    ``arg`` picks which frame to corrupt: ``-1`` is the newest clean
    frame of the tiny client cache (probed first by the backward
    re-read, so the corruption is served from the client's own cache),
    while a seeded draw from the lower half of the blob picks a block
    the thrashing client has certainly evicted — so the corrupt copy
    is served sideways, from the peer or the second level.
    """
    n = _n_blocks(quick)

    def low_block(name: str) -> int:
        return random.Random(f"{seed}:{name}").randrange(max(1, n // 2))

    def cell(name, workload, kind, target, phase,
             arg=None, down_for=None) -> Dict:
        return {"name": name, "workload": workload, "kind": kind,
                "target": target, "phase": phase, "arg": arg,
                "down_for": down_for}

    cells = [
        # -- cold read: everything misses, so the forwarding path is hot.
        cell("cold:blackhole-read@l2-rpc", "cold_read",
             FaultKind.BLACKHOLE_PROC, "l2/upstream-rpc", "start",
             arg="READ", down_for=2.0),
        cell("cold:delay-read@l2-rpc", "cold_read",
             FaultKind.DELAY_PROC, "l2/upstream-rpc", "start",
             arg=("READ", 0.05)),
        cell("cold:duplicate-read@l2-rpc", "cold_read",
             FaultKind.DUPLICATE_PROC, "l2/upstream-rpc", "start",
             arg="READ"),
        cell("cold:blackhole-read@c0-rpc", "cold_read",
             FaultKind.BLACKHOLE_PROC, "c0/upstream-rpc", "start",
             arg="READ", down_for=1.5),
        cell("cold:delay-read@c0-peer", "cold_read",
             FaultKind.DELAY_PROC, "c0/peer-cache", "start",
             arg=("READ", 0.02)),
        cell("cold:blackhole-read@c0-peer", "cold_read",
             FaultKind.BLACKHOLE_PROC, "c0/peer-cache", "start",
             arg="READ", down_for=1.5),
        cell("cold:blackhole-write@origin-rpc", "cold_read",
             FaultKind.BLACKHOLE_PROC, "origin/upstream-rpc", "pre_push",
             arg="WRITE", down_for=2.0),
        cell("cold:delay-write@origin-rpc", "cold_read",
             FaultKind.DELAY_PROC, "origin/upstream-rpc", "pre_push",
             arg=("WRITE", 0.05)),

        # -- warm peer: the neighbour holds the blob; borrows are hot.
        cell("peer:corrupt@c1-cache", "warm_peer",
             FaultKind.CORRUPT_FRAME, "c1/block-cache", "pre_probe",
             arg=low_block("peer:corrupt@c1-cache")),
        cell("peer:corrupt2@c1-cache", "warm_peer",
             FaultKind.CORRUPT_FRAME, "c1/block-cache", "pre_probe",
             arg=low_block("peer:corrupt2@c1-cache") + 1),
        cell("peer:corrupt@c0-cache", "warm_peer",
             FaultKind.CORRUPT_FRAME, "c0/block-cache", "pre_probe",
             arg=-1),
        cell("peer:delay-read@c0-peer", "warm_peer",
             FaultKind.DELAY_PROC, "c0/peer-cache", "pre_probe",
             arg=("READ", 0.02)),
        cell("peer:blackhole-read@c0-peer", "warm_peer",
             FaultKind.BLACKHOLE_PROC, "c0/peer-cache", "pre_probe",
             arg="READ", down_for=1.5),
        cell("peer:duplicate-demote@l2-cache", "warm_peer",
             FaultKind.DUPLICATE_PROC, "l2/block-cache", "pre_probe",
             arg="DEMOTE"),
        cell("peer:delay-demote@l2-cache", "warm_peer",
             FaultKind.DELAY_PROC, "l2/block-cache", "pre_probe",
             arg=("DEMOTE", 0.02)),
        cell("peer:duplicate-write@origin-rpc", "warm_peer",
             FaultKind.DUPLICATE_PROC, "origin/upstream-rpc", "pre_push",
             arg="WRITE"),

        # -- warm second level: the peer is cold; misses fall to l2.
        cell("l2:corrupt@l2-cache", "warm_l2",
             FaultKind.CORRUPT_FRAME, "l2/block-cache", "pre_probe",
             arg=low_block("l2:corrupt@l2-cache")),
        cell("l2:corrupt@c0-cache", "warm_l2",
             FaultKind.CORRUPT_FRAME, "c0/block-cache", "pre_probe",
             arg=-1),
        cell("l2:blackhole-demote@l2-cache", "warm_l2",
             FaultKind.BLACKHOLE_PROC, "l2/block-cache", "pre_probe",
             arg="DEMOTE", down_for=3.0),
        cell("l2:duplicate-demote@l2-cache", "warm_l2",
             FaultKind.DUPLICATE_PROC, "l2/block-cache", "pre_probe",
             arg="DEMOTE"),
        cell("l2:delay-demote@l2-cache", "warm_l2",
             FaultKind.DELAY_PROC, "l2/block-cache", "pre_probe",
             arg=("DEMOTE", 0.02)),
        cell("l2:delay-read@c0-rpc", "warm_l2",
             FaultKind.DELAY_PROC, "c0/upstream-rpc", "pre_probe",
             arg=("READ", 0.03)),
        cell("l2:duplicate-read@c0-rpc", "warm_l2",
             FaultKind.DUPLICATE_PROC, "c0/upstream-rpc", "pre_probe",
             arg="READ"),

        # -- whole-file channel: uploads stalled and dropped.
        cell("upload:stall@c0-channel", "upload",
             FaultKind.STALL_UPLOADS, "c0/file-channel", "pre_write",
             down_for=1.0),
        cell("upload:drop@c0-channel", "upload",
             FaultKind.DROP_UPLOAD, "c0/file-channel", "pre_write",
             arg=1),
    ]
    return cells


# --------------------------------------------------------------------------
# The cascade rig and workload drivers
# --------------------------------------------------------------------------

class _Rig:
    """Depth-2 cascade + cooperative peer, instrumented for chaos.

    Stacks are attached to the injector under stable names: ``c0`` (the
    session under test, tiny cache), ``c1`` (its LAN peer, big cache),
    ``l2`` (the second-level cache) and ``origin`` (the server-side
    forwarding proxy, where checksums are recorded).
    """

    def __init__(self, quick: bool, seed: int, integrity: bool):
        env = Environment()
        self.env = env
        self.testbed = make_paper_testbed(env, n_compute=2)
        self.registry = ChecksumRegistry() if integrity else None
        self.endpoint = ServerEndpoint(env, self.testbed.wan_server,
                                       integrity=self.registry)
        self.fs = self.endpoint.export.fs
        self.bs = TINY_CACHE.block_size
        self.n_blocks = _n_blocks(quick)
        self.payload = _payload(seed, self.n_blocks * self.bs)
        self.wpayload = _payload(seed + 1,
                                 _n_write_blocks(quick) * self.bs)
        self.fs.mkdir("/data")
        self.fs.create("/data/blob")
        self.fs.write("/data/blob", self.payload)
        self.fs.create("/data/wfile")

        self.cascade = build_cascade(
            self.testbed, self.endpoint,
            [CascadeLevelSpec(cache_config=BIG_CACHE, name="l2")])
        peers = self.testbed.peer_directory()
        self.s0 = GvfsSession.build(
            self.testbed, Scenario.WAN_CACHED, endpoint=self.endpoint,
            compute_index=0, cache_config=TINY_CACHE, metadata=False,
            via=self.cascade, peer_directory=peers, exclusive=True,
            integrity=self.registry)
        self.s1 = GvfsSession.build(
            self.testbed, Scenario.WAN_CACHED, endpoint=self.endpoint,
            compute_index=1, cache_config=BIG_CACHE, metadata=False,
            via=self.cascade, peer_directory=peers, exclusive=True,
            integrity=self.registry)
        for session in (self.s0, self.s1):
            session.harden_rpc(timeout=0.5, max_retries=10, backoff=2.0,
                               max_timeout=8.0)

        self.injector = FaultInjector(env)
        self.stacks = {"c0": self.s0.client_proxy,
                       "c1": self.s1.client_proxy,
                       "l2": self.cascade.levels[0].proxy,
                       "origin": self.endpoint.proxy}
        for name, stack in self.stacks.items():
            attach_stack(self.injector, name, stack)


def _fire(rig, cell: Optional[Dict], phase: str) -> bool:
    if cell is None or cell["phase"] != phase:
        return False
    at = rig.env.now + 1e-3
    if cell["down_for"] is not None:
        plan = layer_outage(cell["kind"], cell["target"], at,
                            cell["down_for"], cell["arg"])
    else:
        plan = layer_fault(cell["kind"], cell["target"], at, cell["arg"])
    rig.injector.schedule(plan)
    return True


def _read_span(env, f, payload: bytes, bs: int, order) -> object:
    """Process: read the listed blocks, counting bytes that differ from
    the payload of record (the zero-corruption metric)."""
    bad = 0
    for idx in order:
        data = yield env.process(f.read(idx * bs, bs))
        bad += _mismatch_bytes(data, payload[idx * bs:(idx + 1) * bs])
    return bad


def _run_cascade_cell(workload: str, cell: Optional[Dict], quick: bool,
                      seed: int, integrity: bool = True) -> Dict:
    """One sweep cell (or, with ``cell=None``, its clean baseline)."""
    rig = _Rig(quick, seed, integrity)
    env = rig.env
    bs, n = rig.bs, rig.n_blocks
    fwd = list(range(n))
    back = fwd[::-1]
    box: Dict = {}

    def driver(env):
        bad = 0
        if _fire(rig, cell, "start"):
            yield env.timeout(0.002)
        if workload == "warm_peer":
            f1 = yield env.process(rig.s1.mount.open("/data/blob"))
            bad += yield from _read_span(env, f1, rig.payload, bs, fwd)
            f0 = yield env.process(rig.s0.mount.open("/data/blob"))
            bad += yield from _read_span(env, f0, rig.payload, bs, fwd)
        elif workload == "warm_l2":
            f0 = yield env.process(rig.s0.mount.open("/data/blob"))
            bad += yield from _read_span(env, f0, rig.payload, bs, fwd)
        else:                                   # cold_read
            f0 = yield env.process(rig.s0.mount.open("/data/blob"))
        if _fire(rig, cell, "pre_probe"):
            yield env.timeout(0.002)
        if workload == "cold_read":
            bad += yield from _read_span(env, f0, rig.payload, bs, fwd)
        # Drop the *kernel* client's page cache so every probe read
        # crosses the proxy stack; the proxy/cascade/peer caches stay
        # warm — their contents are exactly what is under test.
        rig.s0.mount.drop_caches()
        bad += yield from _read_span(env, f0, rig.payload, bs, back)

        # Write phase: absorb, then push the full depth of the cascade.
        if _fire(rig, cell, "pre_write"):
            yield env.timeout(0.002)
        w = yield env.process(rig.s0.mount.open("/data/wfile"))
        yield env.process(w.write(0, rig.wpayload))
        yield env.process(rig.s0.mount.flush_all())
        if _fire(rig, cell, "pre_push"):
            yield env.timeout(0.002)
        yield env.process(rig.s0.client_proxy.flush())
        for level in rig.cascade.levels:
            yield env.process(level.proxy.flush())
        box["bad"] = bad
        box["elapsed"] = env.now

    env.process(driver(env))
    env.run()

    markers = _fault_markers(rig.stacks)
    target = cell["target"] if cell is not None else None
    engaged = {k: v for k, v in markers.items()
               if target is not None and k.startswith(target + ".")}
    offtarget = {k: v for k, v in markers.items() if k not in engaged}
    result = {
        "workload": workload,
        "kind": cell["kind"].value if cell else None,
        "target": target,
        "phase": cell["phase"] if cell else None,
        "elapsed_s": box["elapsed"],
        "corrupted_bytes_served": box["bad"],
        "lost_writes": _lost_blocks(rig.fs.read("/data/wfile"),
                                    rig.wpayload, bs),
        "blocks_written": len(rig.wpayload) // bs,
        "engaged_markers": engaged,
        "offtarget_markers": offtarget,
        "timeline": [list(entry) for entry in rig.injector.timeline],
    }
    result.update(_checksum_totals(rig.stacks))
    return result


def _run_upload_cell(cell: Optional[Dict], quick: bool, seed: int,
                     integrity: bool = True) -> Dict:
    """The whole-file data-channel workload: modify a memory-state file
    pulled through the file channel, then flush it back upstream."""
    env = Environment()
    testbed = make_paper_testbed(env)
    registry = ChecksumRegistry() if integrity else None
    endpoint = ServerEndpoint(env, testbed.wan_server, integrity=registry)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=2,
                                    disk_gb=0.01, seed=7))
    image.generate_metadata()
    mem = image.memory_inode
    nonzero = next(i for i in range(mem.data.n_chunks())
                   if not mem.data.chunk_is_zero(i))
    off = nonzero * 8192
    marker = _payload(seed + 3, 64)

    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=BIG_CACHE,
                                metadata=True, integrity=registry)
    session.harden_rpc(timeout=0.5, max_retries=10, backoff=2.0,
                       max_timeout=8.0)
    injector = FaultInjector(env)
    stacks = {"c0": session.client_proxy, "origin": endpoint.proxy}
    for name, stack in stacks.items():
        attach_stack(injector, name, stack)
    rig_view = type("_V", (), {"env": env, "injector": injector})()
    box: Dict = {}

    def driver(env):
        f = yield env.process(session.mount.open("/images/golden/mem.vmss"))
        yield env.process(f.read(off, 8192))        # pull via the channel
        if _fire(rig_view, cell, "pre_write"):
            yield env.timeout(0.002)
        yield env.process(f.write_sync(off, marker))
        yield env.process(session.client_proxy.flush())
        # A dropped upload leaves the entry dirty; the middleware's next
        # flush retries it — that retry is the zero-lost-writes story.
        yield env.process(session.client_proxy.flush())
        after = yield env.process(f.read(off, len(marker)))
        box["bad"] = _mismatch_bytes(after, marker)
        box["elapsed"] = env.now

    env.process(driver(env))
    env.run()

    markers = _fault_markers(stacks)
    target = cell["target"] if cell is not None else None
    engaged = {k: v for k, v in markers.items()
               if target is not None and k.startswith(target + ".")}
    offtarget = {k: v for k, v in markers.items() if k not in engaged}
    server_after = mem.data.read(off, len(marker))
    result = {
        "workload": "upload",
        "kind": cell["kind"].value if cell else None,
        "target": target,
        "phase": cell["phase"] if cell else None,
        "elapsed_s": box["elapsed"],
        "corrupted_bytes_served": box["bad"],
        "lost_writes": 0 if server_after == marker else 1,
        "blocks_written": 1,
        "uploads": session.client_proxy.channel.uploads,
        "engaged_markers": engaged,
        "offtarget_markers": offtarget,
        "timeline": [list(entry) for entry in injector.timeline],
    }
    result.update(_checksum_totals(stacks))
    return result


def _run_cell(cell: Optional[Dict], workload: str, quick: bool,
              seed: int, integrity: bool = True) -> Dict:
    if workload == "upload":
        return _run_upload_cell(cell, quick, seed, integrity)
    return _run_cascade_cell(workload, cell, quick, seed, integrity)


# --------------------------------------------------------------------------
# Controls
# --------------------------------------------------------------------------

def run_negative_control(quick: bool = False,
                         seed: int = DEFAULT_SEED) -> Dict:
    """A corruption cell with the checksum layer absent: the garbled
    frame must demonstrably reach the reader, or the sweep's zeros
    prove nothing about the layer."""
    cell = {"name": "control:corrupt@c0-cache", "workload": "warm_l2",
            "kind": FaultKind.CORRUPT_FRAME, "target": "c0/block-cache",
            "phase": "pre_probe", "arg": -1, "down_for": None}
    result = _run_cell(cell, "warm_l2", quick, seed, integrity=False)
    result["checksum_layer"] = "absent"
    return result


def run_golden_check(quick: bool = False, seed: int = DEFAULT_SEED) -> Dict:
    """Happy-path timing with and without the checksum layer must be
    bit-identical: integrity adds zero simulation events when nothing
    is corrupt."""
    with_layer = _run_cell(None, "cold_read", quick, seed, integrity=True)
    without = _run_cell(None, "cold_read", quick, seed, integrity=False)
    return {
        "elapsed_with_checksum_s": with_layer["elapsed_s"],
        "elapsed_without_checksum_s": without["elapsed_s"],
        "identical": with_layer["elapsed_s"] == without["elapsed_s"],
        "crcs_verified": with_layer["crcs_verified"],
        "corrupted_bytes_served": (with_layer["corrupted_bytes_served"]
                                   + without["corrupted_bytes_served"]),
    }


# --------------------------------------------------------------------------
# Driver / report
# --------------------------------------------------------------------------

def run_chaosbench(quick: bool = False, seed: int = DEFAULT_SEED) -> Dict:
    """Run the full sweep plus controls and collect the report."""
    cells = _cells(quick, seed)
    order = list(cells)
    random.Random(seed).shuffle(order)

    baselines = {
        wl: {"elapsed_s": _run_cell(None, wl, quick, seed)["elapsed_s"]}
        for wl in ("cold_read", "warm_peer", "warm_l2", "upload")}

    results: Dict[str, Dict] = {}
    for cell in order:
        first = _run_cell(cell, cell["workload"], quick, seed)
        rerun = _run_cell(cell, cell["workload"], quick, seed)
        first["replay_identical"] = first == rerun
        first["slowdown_s"] = (first["elapsed_s"]
                               - baselines[cell["workload"]]["elapsed_s"])
        results[cell["name"]] = first

    return {
        "benchmark": "chaosbench",
        "seed": seed,
        "quick": quick,
        "n_cells": len(cells),
        "recovery_bound_s": RECOVERY_BOUND_S,
        "baselines": baselines,
        "cells": {cell["name"]: results[cell["name"]] for cell in cells},
        "negative_control": run_negative_control(quick, seed),
        "golden": run_golden_check(quick, seed),
    }


def check_report(report: Dict) -> List[str]:
    """Acceptance checks; returns human-readable failures (empty = pass)."""
    failures: List[str] = []
    if report["n_cells"] < 24:
        failures.append(f"sweep has only {report['n_cells']} cells (< 24)")
    bound = report.get("recovery_bound_s", RECOVERY_BOUND_S)
    for name, cell in report["cells"].items():
        if cell["corrupted_bytes_served"]:
            failures.append(f"{name}: served "
                            f"{cell['corrupted_bytes_served']} corrupted "
                            "byte(s)")
        if cell["lost_writes"]:
            failures.append(f"{name}: lost {cell['lost_writes']} "
                            "acknowledged write(s)")
        if not cell["engaged_markers"]:
            failures.append(f"{name}: fault never engaged the target "
                            f"({cell['target']})")
        if cell["offtarget_markers"]:
            failures.append(f"{name}: blast radius leaked off-target: "
                            f"{sorted(cell['offtarget_markers'])}")
        if cell["kind"] == "corrupt-frame":
            if cell["corruptions_caught"] == 0:
                failures.append(f"{name}: injected corruption was never "
                                "caught")
            if cell["corruptions_repaired"] != cell["corruptions_caught"]:
                failures.append(
                    f"{name}: caught {cell['corruptions_caught']} but "
                    f"repaired {cell['corruptions_repaired']}")
        elif cell["corruptions_caught"]:
            failures.append(f"{name}: unexpected corruption caught in a "
                            "non-corruption cell")
        if cell["verify_unrepaired"]:
            failures.append(f"{name}: {cell['verify_unrepaired']} read(s) "
                            "returned IO instead of repaired data")
        if cell["slowdown_s"] > bound:
            failures.append(f"{name}: recovery unbounded "
                            f"({cell['slowdown_s']:.2f}s > {bound}s)")
        if not cell["replay_identical"]:
            failures.append(f"{name}: replay with the same seed diverged")
    neg = report["negative_control"]
    if neg["corrupted_bytes_served"] == 0:
        failures.append("negative control: corruption never reached the "
                        "reader with the checksum layer absent — the "
                        "sweep is not exercising the integrity path")
    if not report["golden"]["identical"]:
        failures.append("golden: happy-path timing changed with the "
                        "checksum layer present")
    return failures


def format_report(report: Dict) -> str:
    lines = [f"chaosbench (seed={report['seed']}"
             f"{', quick' if report['quick'] else ''}): "
             f"{report['n_cells']} cells"]
    for name, cell in report["cells"].items():
        caught = (f", caught/repaired {cell['corruptions_caught']}/"
                  f"{cell['corruptions_repaired']}"
                  if cell["kind"] == "corrupt-frame" else "")
        lines.append(
            f"  {name:34s} +{cell['slowdown_s']:5.2f}s  "
            f"bad_bytes {cell['corrupted_bytes_served']}, "
            f"lost {cell['lost_writes']}{caught}, "
            f"replay {'OK' if cell['replay_identical'] else 'DIVERGED'}")
    neg = report["negative_control"]
    lines.append(f"  negative control (no checksum layer): "
                 f"{neg['corrupted_bytes_served']} corrupted byte(s) "
                 "reached the reader")
    g = report["golden"]
    lines.append(f"  golden timing: {g['elapsed_with_checksum_s']:.4f}s "
                 f"with layer vs {g['elapsed_without_checksum_s']:.4f}s "
                 f"without ({'identical' if g['identical'] else 'DRIFT'})")
    return "\n".join(lines)
