"""The persistent-VM scenario of §3.2.3 (scenario 1).

"The Grid user is allocated a dedicated VM which has a persistent
virtual disk on the image server.  It is suspended at the current state
when the user leaves and resumed when the user comes again, while the
user may or may not start computing sessions from the same server."

The driver runs a full user lifecycle and reports what the paper lists
as GVFS's four supports for this scenario:

1. meta-data handling restores the VM quickly from its checkpoint;
2. on-demand block access avoids moving the whole virtual disk;
3. the proxy disk cache accelerates virtual-disk references;
4. write-back hides write latency and "submits the modifications when
   the user is off-line or the session is idle".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import Testbed, make_paper_testbed
from repro.vm.image import GuestFile, VmConfig, VmImage
from repro.vm.monitor import VmMonitor

__all__ = ["PersistentVmResult", "run_persistent_vm_lifecycle"]

MB = 1024 * 1024

#: The dedicated VM of the scenario (kept modest so the driver also
#: serves as an integration test; sizes scale linearly).
PERSISTENT_VM_CONFIG = VmConfig(name="dedicated", memory_mb=32,
                                disk_gb=0.25, persistent=True, seed=55)

#: The user's working set inside the VM.
USER_FILES = [GuestFile("home/user/project", 6 * MB),
              GuestFile("home/user/results", 3 * MB)]


@dataclass
class PersistentVmResult:
    """Timings and integrity facts from one suspend/resume lifecycle."""

    first_resume_seconds: float = 0.0
    work_seconds: float = 0.0
    suspend_seconds: float = 0.0
    offline_flush_seconds: float = 0.0
    second_resume_seconds: float = 0.0
    second_work_seconds: float = 0.0
    second_node_index: int = 0
    disk_bytes_total: int = 0
    disk_bytes_moved: int = 0

    @property
    def disk_moved_fraction(self) -> float:
        return self.disk_bytes_moved / max(self.disk_bytes_total, 1)


def run_persistent_vm_lifecycle(testbed: Optional[Testbed] = None,
                                second_node: int = 1,
                                config: VmConfig = PERSISTENT_VM_CONFIG,
                                ) -> PersistentVmResult:
    """Run: resume -> work -> suspend -> off-line flush -> resume on a
    (possibly different) compute server -> verify the user's data."""
    testbed = testbed or make_paper_testbed(n_compute=max(second_node + 1, 1))
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/dedicated", config)
    image.generate_metadata()
    result = PersistentVmResult(second_node_index=second_node)

    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i)
                for i in range(len(testbed.compute))]
    monitors = [VmMonitor(env, testbed.compute[i])
                for i in range(len(testbed.compute))]

    def lifecycle(env):
        # --- session A: the user comes in -------------------------------
        t = env.now
        vm = yield from monitors[0].resume(sessions[0].mount,
                                           "/images/dedicated")
        result.first_resume_seconds = env.now - t

        t = env.now
        for gf in USER_FILES:
            yield env.process(vm.read_guest_file(gf))
            yield env.process(vm.write_guest_file(gf, fraction=0.5))
        yield vm.compute(10.0)
        result.work_seconds = env.now - t
        result.disk_bytes_total = config.disk_bytes
        result.disk_bytes_moved = (vm.disk_bytes_read
                                   + vm.disk_bytes_written)

        # The user leaves: suspend is quick because the write-back proxy
        # absorbs the memory state locally...
        t = env.now
        yield from monitors[0].suspend(sessions[0].mount,
                                       "/images/dedicated", vm)
        result.suspend_seconds = env.now - t

        # ...and the modifications reach the image server afterwards,
        # while the user is off-line.
        t = env.now
        yield env.process(sessions[0].flush())
        image.generate_metadata()   # middleware refreshes the zero map
        result.offline_flush_seconds = env.now - t

        # --- session B: the user returns on another compute server ------
        t = env.now
        vm2 = yield from monitors[second_node].resume(
            sessions[second_node].mount, "/images/dedicated")
        result.second_resume_seconds = env.now - t

        t = env.now
        for gf in USER_FILES:
            yield env.process(vm2.read_guest_file(gf))
        result.second_work_seconds = env.now - t
        yield env.process(sessions[second_node].flush())

    env.process(lifecycle(env))
    env.run()
    return result
