"""Fleet-scale clone-storm benchmark: exact vs fluid vs sharded.

The paper's headline scenario — wide-area VM cloning storms across
grid sites — only becomes interesting at fleet scale, and BENCH_pr2
showed the simulator topping out at ~60–110k events/sec.  This module
measures the three engine attacks that lift that ceiling:

* **engine microbench** — the raw engine on a clone-storm event mix
  (two zero-delay hops per timed hop, hundreds of concurrent session
  processes), isolating event-pool and dispatch gains from model cost;
* **clone storm** — S independent sites, each its own
  :class:`~repro.net.topology.Testbed` plus
  :class:`~repro.middleware.sessions.VmSessionManager`, absorbing N
  staggered user sessions (lease → match → GVFS → clone → resume →
  flush → release).  Images carry no meta-data, so every block crosses
  the WAN — the block-wise bulk traffic the fluid link mode targets.
  Runs in three modes: ``exact`` (the discrete link model, serial),
  ``fluid`` (:class:`~repro.net.link.LinkMode.FLUID`, serial) and
  ``sharded`` (exact links, sites partitioned into topology islands
  via :func:`~repro.sim.shard.partition_islands` and run on worker
  processes with deterministic merging);
* **fluid accuracy** — the fig3–fig6 workload families run under both
  link modes; fluid simulated times must stay within
  :data:`DRIFT_TOLERANCE` of the exact DES.

``run_fleetbench`` produces the ``results/BENCH_pr6.json`` document;
``check_report`` turns it into CI gates (microbench throughput floor
and regression bound, fluid drift, sharded-merge determinism).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

__all__ = [
    "DRIFT_TOLERANCE",
    "MIN_MICROBENCH_SPEEDUP",
    "check_report",
    "format_report",
    "run_clone_storm",
    "run_engine_microbench",
    "run_fleetbench",
    "run_fluid_accuracy",
]

#: Fluid-mode simulated times must stay within this fraction of exact.
DRIFT_TOLERANCE = 0.05

#: The engine microbench must beat BENCH_pr2's clone-storm events/sec
#: by at least this factor (the PR-6 acceptance floor).
MIN_MICROBENCH_SPEEDUP = 3.0

#: BENCH_pr2's cold-clone (clone-storm) throughput, used when the
#: archived ``results/BENCH_pr2.json`` is not readable.
_PR2_CLONE_STORM_EVENTS_PER_SEC = 59952.0

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "results")

# Storm geometry.  Full scale is the acceptance workload (1,000
# sessions); quick scale is the CI smoke.
FULL_SESSIONS, FULL_SITES = 1000, 8
QUICK_SESSIONS, QUICK_SITES = 32, 4

#: Per-session golden image: small but fully wire-visible (no
#: meta-data, so zero blocks are not filtered).
STORM_MEMORY_MB = 4
STORM_DISK_GB = 0.01
STORM_ZERO_FRACTION = 0.5
#: Arrival stagger between a site's sessions, simulated seconds.
STORM_STAGGER = 0.25
#: Compute servers per site (sessions round-robin across them).
STORM_COMPUTE = 4

MODES = ("exact", "fluid", "sharded")


def _pr2_reference_events_per_sec() -> float:
    """BENCH_pr2's clone-storm (cold_clone) events/sec, from the archive."""
    path = os.path.join(_RESULTS_DIR, "BENCH_pr2.json")
    try:
        with open(path) as f:
            doc = json.load(f)
        return float(doc["workloads"]["cold_clone"]["events_per_sec"])
    except (OSError, KeyError, ValueError, TypeError):
        return _PR2_CLONE_STORM_EVENTS_PER_SEC


# --------------------------------------------------------------------------
# Engine microbench: the clone-storm event mix without the model cost
# --------------------------------------------------------------------------

def run_engine_microbench(quick: bool = False, repeats: int = 3) -> dict:
    """Raw engine throughput on a clone-storm-shaped event mix.

    Hundreds of concurrent session processes, each alternating two
    zero-delay hops (RPC gate releases, cache grants) with one timed
    hop (wire/disk service) — the immediate/heap ratio the storm
    produces.  Reports the best of ``repeats`` runs (least scheduler
    noise); the events count is identical across runs by construction.
    """
    from repro.sim import AllOf, Environment

    n_procs, n_hops = (200, 150) if quick else (400, 300)

    def session(env, hops):
        for i in range(hops):
            yield env.timeout(0)
            yield env.timeout(0)
            yield env.timeout(0.001 * (1 + i % 7))

    def measure() -> dict:
        env = Environment()

        def driver(env):
            procs = [env.process(session(env, n_hops))
                     for _ in range(n_procs)]
            yield AllOf(env, procs)

        env.process(driver(env))
        t0 = time.perf_counter()
        env.run()
        wall = time.perf_counter() - t0
        return {"events": env.events_scheduled, "wall_seconds": wall,
                "events_per_sec": env.events_scheduled / wall if wall else 0.0}

    best = min((measure() for _ in range(max(1, repeats))),
               key=lambda s: s["wall_seconds"])
    reference = _pr2_reference_events_per_sec()
    best["processes_simulated"] = n_procs
    best["pr2_clone_storm_events_per_sec"] = reference
    best["speedup_vs_pr2"] = (best["events_per_sec"] / reference
                              if reference else 0.0)
    return best


# --------------------------------------------------------------------------
# The clone storm: one site per island, one VmSessionManager per site
# --------------------------------------------------------------------------

def _site_spec(site: int, sessions: int, link_mode: str,
               telemetry: bool = False) -> dict:
    return {"site": site, "sessions": sessions, "link_mode": link_mode,
            "n_compute": STORM_COMPUTE, "memory_mb": STORM_MEMORY_MB,
            "disk_gb": STORM_DISK_GB, "zero_fraction": STORM_ZERO_FRACTION,
            "stagger": STORM_STAGGER, "telemetry": telemetry}


def _run_site(spec: dict) -> dict:
    """Worker: one site's clone storm in its own environment.

    Module-level and dict-in/dict-out so it crosses the
    ``multiprocessing`` boundary; every simulated object lives and
    dies inside this call.
    """
    from repro.middleware.imageserver import ImageRequirements
    from repro.middleware.sessions import VmSessionManager
    from repro.net.link import LinkMode
    from repro.net.topology import make_paper_testbed
    from repro.core.session import ServerEndpoint
    from repro.sim import AllOf
    from repro.vm.image import VmConfig

    testbed = make_paper_testbed(n_compute=spec["n_compute"],
                                 link_mode=LinkMode(spec["link_mode"]))
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    manager = VmSessionManager(testbed, endpoint=endpoint,
                               account_pool_size=spec["sessions"])
    manager.catalog.register(
        "storm-golden",
        VmConfig(name="storm-golden", memory_mb=spec["memory_mb"],
                 disk_gb=spec["disk_gb"], persistent=False, seed=17),
        zero_fraction=spec["zero_fraction"],
        # No meta-data: reads stay block-wise, so the storm's traffic
        # actually crosses the (fluid-capable) wire.
        generate_metadata=False)
    requirements = ImageRequirements(min_memory_mb=spec["memory_mb"])
    clone_seconds: List[float] = []

    def one_user(env, index):
        yield env.timeout(index * spec["stagger"])
        session = yield env.process(manager.create_session(
            f"site{spec['site']}-user{index}", requirements))
        clone_seconds.append(session.clone.total_seconds)
        yield env.process(manager.end_session(session))

    def driver(env):
        users = [env.process(one_user(env, i))
                 for i in range(spec["sessions"])]
        yield AllOf(env, users)

    env.process(driver(env))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    hosts = [*testbed.compute, testbed.lan_server, testbed.wan_server]
    disk_bytes = sum(h.local.disk.bytes_read + h.local.disk.bytes_written
                     for h in hosts)
    out = {"site": spec["site"], "sessions": spec["sessions"],
           "sim_seconds": env.now, "events": env.events_scheduled,
           "wall_seconds": wall, "clone_seconds": clone_seconds,
           "disk_blocks": disk_bytes // 8192}
    if spec.get("telemetry"):
        snap = manager.fleet_snapshot(deep=True)
        out["layer_totals"] = snap["layer_totals"]
        out["fleet_report"] = manager.format_fleet_report()
    return out


def run_clone_storm(mode: str = "exact", sessions: int = FULL_SESSIONS,
                    sites: int = FULL_SITES,
                    processes: Optional[int] = None,
                    telemetry: bool = False) -> dict:
    """Run the storm in one mode and aggregate per-site results.

    Sessions are assigned to sites round-robin, then grouped into
    topology islands with :func:`partition_islands` over the host
    names each session touches — sessions of one site share that
    site's image server and collapse into one island; distinct sites
    share nothing and stay independent.  ``sharded`` runs the islands
    on a worker-process pool (exact link model, so its merged results
    are bit-comparable to ``exact``); the other modes run the same
    specs serially in-process.
    """
    if mode not in MODES:
        raise ValueError(f"unknown storm mode {mode!r}; choose from {MODES}")
    if sessions < sites:
        raise ValueError("need at least one session per site")
    from repro.sim import partition_islands, run_islands

    site_of = [i % sites for i in range(sessions)]
    # Resources per session: the site's image server plus the compute
    # host the round-robin scheduler will land it on.
    resources = [{f"site{s}:wan-image-server",
                  f"site{s}:compute{i // sites % STORM_COMPUTE}"}
                 for i, s in enumerate(site_of)]
    islands = partition_islands(resources)

    link_mode = "fluid" if mode == "fluid" else "exact"
    specs = [_site_spec(site_of[group[0]], len(group), link_mode,
                        telemetry=telemetry)
             for group in islands]
    pool_size = 1 if mode != "sharded" else processes
    t0 = time.perf_counter()
    site_results = run_islands(_run_site, specs, processes=pool_size)
    wall = time.perf_counter() - t0

    events = sum(r["events"] for r in site_results)
    out = {
        "mode": mode,
        "sessions": sessions,
        "sites": len(islands),
        "processes": (pool_size if pool_size is not None
                      else min(len(islands), os.cpu_count() or 1)),
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall else 0.0,
        "sim_seconds": max(r["sim_seconds"] for r in site_results),
        "per_site": site_results,
    }
    return out


# --------------------------------------------------------------------------
# Fluid accuracy: fig3–fig6 under both link modes
# --------------------------------------------------------------------------

def _accuracy_testbed(link_mode, clone: bool = False):
    from repro.net.topology import make_paper_testbed
    if clone:
        return make_paper_testbed(n_compute=1, compute_cpu_speed=2.2,
                                  compute_page_cache_bytes=768 * 1024 * 1024,
                                  link_mode=link_mode)
    return make_paper_testbed(link_mode=link_mode)


def _accuracy_appbench(factory, link_mode) -> float:
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    testbed = _accuracy_testbed(link_mode)
    run_application_benchmark(Scenario.WAN_CACHED, factory, runs=1,
                              testbed=testbed)
    return testbed.env.now


def _accuracy_fig3(link_mode, quick):
    from repro.workloads.specseis import SpecSeis
    return _accuracy_appbench(SpecSeis, link_mode)


def _accuracy_fig4(link_mode, quick):
    from repro.workloads.latex import LatexBenchmark
    iterations = 1 if quick else 5
    return _accuracy_appbench(lambda: LatexBenchmark(iterations=iterations),
                              link_mode)


def _accuracy_fig5(link_mode, quick):
    from repro.workloads.kernelcompile import KernelCompile
    return _accuracy_appbench(KernelCompile, link_mode)


def _accuracy_fig6(link_mode, quick):
    from repro.experiments.clonebench import (CloneScenario,
                                              run_cloning_benchmark)
    testbed = _accuracy_testbed(link_mode, clone=True)
    run_cloning_benchmark(CloneScenario.WAN_S1, n_clones=1 if quick else 2,
                          cold_between=True, testbed=testbed)
    return testbed.env.now


_ACCURACY_WORKLOADS = {
    "fig3_specseis": _accuracy_fig3,
    "fig4_latex": _accuracy_fig4,
    "fig5_kernel": _accuracy_fig5,
    "fig6_cloning": _accuracy_fig6,
}

#: fig5 (a full kernel compile, twice) is minutes of wall clock; the
#: CI smoke covers the other three families.
_QUICK_ACCURACY = ("fig3_specseis", "fig4_latex", "fig6_cloning")


def run_fluid_accuracy(quick: bool = False,
                       workloads: Optional[List[str]] = None) -> dict:
    """Golden-check fluid mode against the exact DES per workload.

    Returns per-workload exact/fluid end-of-run simulated times and
    the relative drift ``|fluid - exact| / exact``.
    """
    from repro.net.link import LinkMode
    names = workloads or list(_QUICK_ACCURACY if quick
                              else _ACCURACY_WORKLOADS)
    unknown = [n for n in names if n not in _ACCURACY_WORKLOADS]
    if unknown:
        raise ValueError(f"unknown accuracy workload(s) {unknown}; "
                         f"choose from {sorted(_ACCURACY_WORKLOADS)}")
    out: Dict[str, dict] = {}
    for name in names:
        fn = _ACCURACY_WORKLOADS[name]
        exact = fn(LinkMode.EXACT, quick)
        fluid = fn(LinkMode.FLUID, quick)
        drift = abs(fluid - exact) / exact if exact else 0.0
        out[name] = {"exact_sim_seconds": exact,
                     "fluid_sim_seconds": fluid,
                     "drift": drift,
                     "within_tolerance": drift <= DRIFT_TOLERANCE}
    return out


# --------------------------------------------------------------------------
# Driver, gates, formatting
# --------------------------------------------------------------------------

def run_fleetbench(quick: bool = False,
                   sessions: Optional[int] = None,
                   sites: Optional[int] = None,
                   modes: Optional[List[str]] = None,
                   processes: Optional[int] = None,
                   telemetry: bool = False) -> dict:
    """The full PR-6 benchmark document (``results/BENCH_pr6.json``)."""
    sessions = sessions or (QUICK_SESSIONS if quick else FULL_SESSIONS)
    sites = sites or (QUICK_SITES if quick else FULL_SITES)
    modes = list(modes or MODES)
    unknown = [m for m in modes if m not in MODES]
    if unknown:
        raise ValueError(f"unknown mode(s) {unknown}; choose from {MODES}")

    report: dict = {
        "bench": "pr6",
        "quick": quick,
        "created_unix": time.time(),
        "tolerance": DRIFT_TOLERANCE,
        "engine_microbench": run_engine_microbench(quick=quick),
        "storm": {},
    }
    for mode in modes:
        report["storm"][mode] = run_clone_storm(
            mode, sessions=sessions, sites=sites, processes=processes,
            telemetry=telemetry)
    report["fluid_accuracy"] = run_fluid_accuracy(quick=quick)
    return report


def check_report(report: dict, baseline: Optional[dict] = None,
                 max_regression: float = 0.2) -> List[str]:
    """CI gates over a fleetbench report ([] = all good).

    * the engine microbench clears ``MIN_MICROBENCH_SPEEDUP``× the
      BENCH_pr2 clone-storm throughput;
    * against ``baseline`` (an earlier report at the same scale), the
      microbench has not regressed more than ``max_regression``;
    * every fluid-accuracy workload sits within ``DRIFT_TOLERANCE``;
    * sharded and exact storms merged to bit-identical per-site
      simulated results (deterministic merging).
    """
    failures: List[str] = []
    micro = report.get("engine_microbench", {})
    speedup = micro.get("speedup_vs_pr2", 0.0)
    if speedup < MIN_MICROBENCH_SPEEDUP:
        failures.append(
            f"engine microbench at {micro.get('events_per_sec', 0):,.0f} "
            f"events/sec is only {speedup:.2f}x BENCH_pr2's clone-storm "
            f"throughput (floor: {MIN_MICROBENCH_SPEEDUP}x)")
    if baseline is not None and baseline.get("quick") == report.get("quick"):
        old = baseline.get("engine_microbench", {}).get("events_per_sec")
        new = micro.get("events_per_sec")
        if old and new and new < (1.0 - max_regression) * old:
            failures.append(
                f"engine microbench regressed {1.0 - new / old:.0%} vs "
                f"baseline ({old:,.0f} -> {new:,.0f} events/sec; "
                f"bound: {max_regression:.0%})")
    for name, acc in report.get("fluid_accuracy", {}).items():
        if not acc.get("within_tolerance", False):
            failures.append(
                f"{name}: fluid drifted {acc.get('drift', 1.0):.2%} from the "
                f"exact DES (tolerance {DRIFT_TOLERANCE:.0%}; "
                f"exact {acc.get('exact_sim_seconds')}, "
                f"fluid {acc.get('fluid_sim_seconds')})")
    storm = report.get("storm", {})
    if "exact" in storm and "sharded" in storm:
        exact_sites = {r["site"]: r for r in storm["exact"]["per_site"]}
        for shard in storm["sharded"]["per_site"]:
            ref = exact_sites.get(shard["site"])
            if ref is None:
                failures.append(f"sharded site {shard['site']} missing from "
                                "the exact storm")
                continue
            if (shard["sim_seconds"] != ref["sim_seconds"]
                    or shard["clone_seconds"] != ref["clone_seconds"]):
                failures.append(
                    f"site {shard['site']}: sharded simulated results "
                    "diverged from the serial exact run (merge must be "
                    "deterministic)")
    return failures


def format_report(report: dict) -> str:
    lines: List[str] = []
    micro = report.get("engine_microbench", {})
    lines.append(
        f"engine microbench: {micro.get('events_per_sec', 0):,.0f} events/sec "
        f"({micro.get('speedup_vs_pr2', 0):.1f}x BENCH_pr2 clone-storm)")
    storm = report.get("storm", {})
    if storm:
        lines.append(f"{'storm mode':<10} {'wall s':>8} {'sim s':>9} "
                     f"{'events':>10} {'events/s':>10} {'procs':>6}")
        for mode, r in storm.items():
            lines.append(f"{mode:<10} {r['wall_seconds']:>8.2f} "
                         f"{r['sim_seconds']:>9.2f} {r['events']:>10} "
                         f"{r['events_per_sec']:>10.0f} {r['processes']:>6}")
    acc = report.get("fluid_accuracy", {})
    if acc:
        lines.append(f"{'fluid accuracy':<16} {'exact s':>10} {'fluid s':>10} "
                     f"{'drift':>8}")
        for name, a in acc.items():
            flag = "" if a["within_tolerance"] else "  DRIFT>TOL"
            lines.append(f"{name:<16} {a['exact_sim_seconds']:>10.2f} "
                         f"{a['fluid_sim_seconds']:>10.2f} "
                         f"{a['drift']:>8.2%}{flag}")
    return "\n".join(lines)
