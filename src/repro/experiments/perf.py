"""Wall-clock performance harness for the simulator itself.

Every other experiment in this repository reports *simulated* seconds;
this module measures how fast the simulator produces them.  It drives a
set of fixed workloads, records wall-clock throughput (engine events
per second, disk blocks per second) and asserts that the *simulated*
timings are bit-identical to golden values recorded before any hot-path
optimization — the engine fast paths must never change a result, only
how quickly it is computed.

Workloads
---------
``cold_clone``
    Two sequential WAN clonings of one golden image with every cache
    flushed in between (each cloning starts cold) — the headline
    workload the optimization PRs are measured against.
``warm_clone``
    Three sequential WAN clonings without cache flushes: one cold pass
    that warms the proxy disk cache, then two warm clonings.
``kernel_compile``
    One cold run of the kernel-compile application benchmark under
    WAN+C (Figure 5's first bar), flush included.
``flush_storm``
    A write-back session absorbs a burst of dirty blocks over several
    files, then the middleware signals a flush: exercises coalesced
    write-back (``dirty_runs``/``read_many``) and the RPC write path.
    A small warm-up burst runs first; :meth:`ProxyStats.reset` and
    :meth:`ProxyBlockCache.reset_stats` separate it from the measured
    phase instead of rebuilding the session.
``clone_storm``
    One fleetbench site absorbing a staggered burst of full VM
    sessions (lease, match, GVFS, clone, resume, flush, release)
    through the session manager — the many-concurrent-processes mix
    the event pool and batched dispatch target.

Golden timings live in ``benchmarks/golden_timings.json``; regenerate
them with ``python -m repro.cli perf --update-golden`` only when a
change *intends* to alter simulated results.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "GOLDEN_PATH",
    "PerfReport",
    "PerfSample",
    "WORKLOADS",
    "compare_to_golden",
    "load_golden",
    "run_harness",
    "run_workload",
    "save_golden",
]

#: Default location of the golden simulated-time signatures.
GOLDEN_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks",
    "golden_timings.json")

_BLOCK = 8192


@dataclass
class PerfSample:
    """One workload's wall-clock and simulated-time measurements."""

    workload: str
    wall_seconds: float
    sim_seconds: float
    #: Full simulated-time trace of the run; golden-checked, must stay
    #: bit-identical across engine optimizations.
    sim_signature: List[float]
    events: int          # engine events scheduled over the run
    blocks: int          # 8 KiB blocks moved through the disk models

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def blocks_per_sec(self) -> float:
        return self.blocks / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "sim_signature": self.sim_signature,
            "events": self.events,
            "blocks": self.blocks,
            "events_per_sec": self.events_per_sec,
            "blocks_per_sec": self.blocks_per_sec,
        }


@dataclass
class PerfReport:
    """The harness's full output (what ``BENCH_*.json`` serializes)."""

    samples: Dict[str, PerfSample] = field(default_factory=dict)
    golden_ok: Optional[bool] = None
    golden_diffs: List[str] = field(default_factory=list)
    baseline_file: Optional[str] = None
    speedup: Dict[str, float] = field(default_factory=dict)
    quick: bool = False

    def to_dict(self) -> dict:
        out = {
            "bench": "pr2",
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "quick": self.quick,
            "workloads": {name: s.to_dict()
                          for name, s in self.samples.items()},
        }
        if self.golden_ok is not None:
            out["golden_ok"] = self.golden_ok
            if self.golden_diffs:
                out["golden_diffs"] = self.golden_diffs
        if self.baseline_file:
            out["baseline_file"] = self.baseline_file
            out["speedup_vs_baseline"] = self.speedup
        return out


def _disk_blocks(testbed) -> int:
    """8 KiB blocks moved through every disk model in the testbed."""
    hosts = [*testbed.compute, testbed.lan_server, testbed.wan_server]
    total = sum(h.local.disk.bytes_read + h.local.disk.bytes_written
                for h in hosts)
    return total // _BLOCK


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------

def _run_cold_clone(quick: bool = False) -> PerfSample:
    from repro.experiments.clonebench import (CloneScenario,
                                              _cloning_testbed,
                                              run_cloning_benchmark)
    testbed = _cloning_testbed(n_compute=1)
    n = 1 if quick else 2
    t0 = time.perf_counter()
    r = run_cloning_benchmark(CloneScenario.WAN_S1, n_clones=n,
                              cold_between=True, testbed=testbed)
    wall = time.perf_counter() - t0
    return PerfSample("cold_clone", wall, r.total_seconds,
                      list(r.clone_seconds) + [testbed.env.now],
                      testbed.env.events_scheduled, _disk_blocks(testbed))


def _run_warm_clone(quick: bool = False) -> PerfSample:
    from repro.experiments.clonebench import (CloneScenario,
                                              _cloning_testbed,
                                              run_cloning_benchmark)
    testbed = _cloning_testbed(n_compute=1)
    n = 2 if quick else 3
    t0 = time.perf_counter()
    r = run_cloning_benchmark(CloneScenario.WAN_S1, n_clones=n,
                              testbed=testbed)
    wall = time.perf_counter() - t0
    return PerfSample("warm_clone", wall, r.total_seconds,
                      list(r.clone_seconds) + [testbed.env.now],
                      testbed.env.events_scheduled, _disk_blocks(testbed))


def _run_kernel_compile(quick: bool = False) -> PerfSample:
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.net.topology import make_paper_testbed
    from repro.workloads.kernelcompile import KernelCompile
    from repro.workloads.latex import LatexBenchmark
    testbed = make_paper_testbed()
    factory = (lambda: LatexBenchmark(iterations=1)) if quick \
        else KernelCompile
    t0 = time.perf_counter()
    r = run_application_benchmark(Scenario.WAN_CACHED, factory, runs=1,
                                  testbed=testbed)
    wall = time.perf_counter() - t0
    signature = [p.seconds for p in r.runs[0].phases] + [r.flush_seconds,
                                                         testbed.env.now]
    return PerfSample("kernel_compile", wall, r.run_total(0), signature,
                      testbed.env.events_scheduled, _disk_blocks(testbed))


def _run_flush_storm(quick: bool = False) -> PerfSample:
    from repro.core.config import ProxyCacheConfig
    from repro.core.session import GvfsSession, Scenario, ServerEndpoint
    from repro.net.topology import Testbed
    from repro.sim import Environment
    env = Environment()
    testbed = Testbed(env, n_compute=1)
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    fs.mkdir("/storm", parents=True)
    n_files = 2 if quick else 8
    n_blocks = 64 if quick else 256
    for i in range(n_files):
        fs.create(f"/storm/f{i}", size=n_blocks * _BLOCK)
    cache = ProxyCacheConfig(capacity_bytes=64 * 1024 * 1024,
                             n_banks=32, associativity=4)
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=cache,
                                metadata=False)
    marks: List[float] = []

    def storm(env, blocks_per_file: int):
        files = []
        for i in range(n_files):
            f = yield env.process(session.mount.open(f"/storm/f{i}"))
            files.append(f)
        # Interleaved dirty bursts across the files (several runs each).
        for blk in range(blocks_per_file):
            for f in files:
                yield env.process(f.write(blk * _BLOCK,
                                          bytes([1 + blk % 251]) * _BLOCK))
        yield env.process(session.flush())

    def driver(env):
        # Warm-up burst, then a uniform stack reset (every layer and
        # component counter) instead of a session rebuild.
        yield env.process(storm(env, 8 if quick else 16))
        session.client_proxy.reset()
        marks.append(env.now)
        yield env.process(storm(env, n_blocks))
        marks.append(env.now)

    t0 = time.perf_counter()
    env.process(driver(env))
    env.run()
    wall = time.perf_counter() - t0
    measured = marks[1] - marks[0]
    return PerfSample("flush_storm", wall, measured,
                      [marks[0], marks[1], env.now],
                      env.events_scheduled, _disk_blocks(testbed))


def _run_clone_storm(quick: bool = False) -> PerfSample:
    from repro.experiments.fleetbench import _run_site, _site_spec
    sessions = 6 if quick else 24
    spec = _site_spec(0, sessions, "exact")
    t0 = time.perf_counter()
    r = _run_site(spec)
    wall = time.perf_counter() - t0
    return PerfSample("clone_storm", wall, r["sim_seconds"],
                      list(r["clone_seconds"]) + [r["sim_seconds"]],
                      r["events"], r["disk_blocks"])


WORKLOADS: Dict[str, Callable[..., PerfSample]] = {
    "cold_clone": _run_cold_clone,
    "warm_clone": _run_warm_clone,
    "kernel_compile": _run_kernel_compile,
    "flush_storm": _run_flush_storm,
    "clone_storm": _run_clone_storm,
}


# --------------------------------------------------------------------------
# Golden simulated-time signatures
# --------------------------------------------------------------------------

def load_golden(path: str = GOLDEN_PATH) -> Dict[str, List[float]]:
    if not os.path.exists(path):
        return {}
    with open(path) as f:
        data = json.load(f)
    return {k: list(v) for k, v in data.get("signatures", {}).items()}


def save_golden(signatures: Dict[str, List[float]],
                path: str = GOLDEN_PATH) -> None:
    existing = load_golden(path)
    existing.update(signatures)
    with open(path, "w") as f:
        json.dump({
            "comment": "Simulated-time signatures per perf workload. "
                       "Engine/cache optimizations must keep these "
                       "bit-identical; regenerate only via "
                       "`repro.cli perf --update-golden` when a change "
                       "intends to alter simulated results.",
            "signatures": existing,
        }, f, indent=2, sort_keys=True)
        f.write("\n")


def compare_to_golden(samples: Dict[str, PerfSample],
                      golden: Dict[str, List[float]]) -> List[str]:
    """Human-readable mismatch descriptions ([] = all good)."""
    diffs = []
    for name, sample in samples.items():
        expected = golden.get(name)
        if expected is None:
            diffs.append(f"{name}: no golden signature recorded")
            continue
        if expected != sample.sim_signature:
            diffs.append(f"{name}: simulated-time signature changed "
                         f"(expected {expected}, got {sample.sim_signature})")
    return diffs


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def run_workload(name: str, quick: bool = False) -> PerfSample:
    """Run one named workload and return its measurements."""
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown perf workload {name!r}; "
                         f"choose from {sorted(WORKLOADS)}") from None
    return fn(quick=quick)


def run_harness(workloads: Optional[List[str]] = None,
                quick: bool = False,
                golden_path: Optional[str] = GOLDEN_PATH,
                baseline_path: Optional[str] = None) -> PerfReport:
    """Run the harness: measure workloads, check goldens, diff baseline.

    ``quick=True`` shrinks every workload (CI smoke scale) — quick
    signatures are golden-checked against ``<name>@quick`` entries.
    """
    report = PerfReport(quick=quick)
    for name in workloads or list(WORKLOADS):
        report.samples[name] = run_workload(name, quick=quick)
    if golden_path:
        golden = load_golden(golden_path)
        keyed = {_golden_key(n, quick): s for n, s in report.samples.items()}
        report.golden_diffs = compare_to_golden(keyed, golden)
        report.golden_ok = not report.golden_diffs
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as f:
            base_doc = json.load(f)
        # Speedups are only meaningful against a baseline recorded at
        # the same workload scale.
        if base_doc.get("quick", False) == quick:
            report.baseline_file = baseline_path
            base = base_doc.get("workloads", {})
            for name, sample in report.samples.items():
                old = base.get(name, {}).get("wall_seconds")
                if old and sample.wall_seconds:
                    report.speedup[name] = old / sample.wall_seconds
    return report


def _golden_key(name: str, quick: bool) -> str:
    return f"{name}@quick" if quick else name


def format_report(report: PerfReport) -> str:
    lines = [f"{'workload':<16} {'wall s':>8} {'sim s':>10} "
             f"{'events/s':>10} {'blocks/s':>10} {'speedup':>8}"]
    for name, s in report.samples.items():
        spd = report.speedup.get(name)
        lines.append(f"{name:<16} {s.wall_seconds:>8.2f} "
                     f"{s.sim_seconds:>10.2f} {s.events_per_sec:>10.0f} "
                     f"{s.blocks_per_sec:>10.0f} "
                     f"{(f'{spd:.2f}x' if spd else '-'):>8}")
    if report.golden_ok is not None:
        lines.append("golden simulated-time check: "
                     + ("OK" if report.golden_ok else "FAILED"))
        lines.extend(f"  {d}" for d in report.golden_diffs)
    return "\n".join(lines)
