"""Pipelined proxy I/O benchmark: readahead sweep + coalesced flush.

Two measurements of the demand-path pipelining inside
:class:`~repro.core.proxy.GvfsProxy`:

* **Cold sequential WAN read sweep** — a fresh WAN+C session streams a
  file through the proxy at readahead depths {0, 1, 4, 8, 16}.  Depth 0
  is the pre-pipelining behaviour (one synchronous upstream RPC per
  block-cache miss); deeper windows overlap WAN round trips with client
  consumption.
* **Coalesced flush** — a dirty file in the proxy's write-back cache is
  flushed upstream per-block (the legacy path: one WRITE RPC per 8 KB
  block, serial) and with run coalescing (adjacent dirty blocks merged
  into large WRITEs, pipelined).

Both are deterministic discrete-event runs; the numbers feed
``results/pipelined_io.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Sequence

from repro.core.config import (
    ProxyCacheConfig,
    clear_pipeline_overrides,
    pipeline_overrides,
    set_pipeline_overrides,
)
from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmConfig, VmImage

__all__ = ["FlushComparison", "ReadPoint", "format_pipelined_io",
           "run_flush_comparison", "run_read_sweep"]

MB = 1024 * 1024
BS = 8192

#: Roomy geometry so neither measurement is perturbed by evictions
#: (a 32 MB dirty file is 4096 blocks; 128 MB / 8-way holds it easily).
BENCH_CACHE = ProxyCacheConfig(capacity_bytes=128 * MB, n_banks=32,
                               associativity=8)


@dataclass(frozen=True)
class ReadPoint:
    """One depth of the cold sequential read sweep."""

    depth: int
    seconds: float
    prefetch_issued: int
    prefetch_used: int
    prefetch_accuracy: float
    coalesced_misses: int


@dataclass(frozen=True)
class FlushComparison:
    """Per-block vs coalesced write-back of one dirty file."""

    file_mb: int
    per_block_rpcs: int
    per_block_seconds: float
    coalesced_rpcs: int
    coalesced_seconds: float
    merged_write_blocks: int


def _build(image_mb: int = 48, seed: int = 17):
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    VmImage.create(endpoint.export.fs, "/images/app",
                   VmConfig(name="app", memory_mb=image_mb, disk_gb=0.25,
                            persistent=False, seed=seed))
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=BENCH_CACHE,
                                metadata=False)
    return testbed, session


def _drive(testbed, gen: Generator):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    testbed.env.process(wrapper(testbed.env))
    testbed.env.run()
    return box["value"]


def run_read_sweep(depths: Sequence[int] = (0, 1, 4, 8, 16),
                   read_mb: int = 8) -> Dict[int, ReadPoint]:
    """Cold sequential WAN read of ``read_mb`` MB at each readahead depth."""
    n_blocks = read_mb * MB // BS
    results: Dict[int, ReadPoint] = {}
    for depth in depths:
        prev = pipeline_overrides()
        set_pipeline_overrides(readahead_depth=depth)
        try:
            testbed, session = _build()
        finally:
            clear_pipeline_overrides()
            set_pipeline_overrides(**prev)

        def job(env):
            f = yield env.process(
                session.mount.open("/images/app/disk.vmdk"))
            # Measure the stream, not the open.
            session.client_proxy.block_cache.reset_stats()
            t0 = env.now
            for b in range(n_blocks):
                yield env.process(f.read(b * BS, BS))
            return env.now - t0

        seconds = _drive(testbed, job(testbed.env))
        s = session.client_proxy.stats
        results[depth] = ReadPoint(depth=depth, seconds=seconds,
                                   prefetch_issued=s.prefetch_issued,
                                   prefetch_used=s.prefetch_used,
                                   prefetch_accuracy=s.prefetch_accuracy,
                                   coalesced_misses=s.coalesced_misses)
    return results


def _flush_once(file_mb: int, coalesce_bytes: int,
                pipeline_depth: int):
    """Dirty ``file_mb`` MB in the proxy cache, flush it, count WRITEs."""
    prev = pipeline_overrides()
    set_pipeline_overrides(write_coalesce_bytes=coalesce_bytes,
                           write_pipeline_depth=pipeline_depth)
    try:
        testbed, session = _build()
    finally:
        clear_pipeline_overrides()
        set_pipeline_overrides(**prev)
    proxy = session.client_proxy

    def job(env):
        f = yield env.process(session.mount.create("/images/app/scratch"))
        chunk = b"\xa5" * MB
        for i in range(file_mb):
            yield env.process(f.write(i * MB, chunk))
        # Drain the kernel client's staged writes into the proxy cache
        # (absorbed there: write-back policy, COMMITs absorbed).
        yield env.process(session.mount.flush_all())
        proxy.block_cache.reset_stats()   # staging was warm-up
        before = proxy.upstream.stats.by_proc.get("WRITE", 0)
        t0 = env.now
        yield env.process(proxy.flush())
        return proxy.upstream.stats.by_proc.get("WRITE", 0) - before, \
            env.now - t0

    return _drive(testbed, job(testbed.env)), proxy.stats


def run_flush_comparison(file_mb: int = 32,
                         coalesce_bytes: int = 64 * 1024,
                         pipeline_depth: int = 4) -> FlushComparison:
    """Flush one dirty file per-block (legacy) and coalesced."""
    (pb_rpcs, pb_seconds), _ = _flush_once(file_mb, coalesce_bytes=0,
                                           pipeline_depth=1)
    (co_rpcs, co_seconds), stats = _flush_once(file_mb, coalesce_bytes,
                                               pipeline_depth=pipeline_depth)
    return FlushComparison(file_mb=file_mb,
                           per_block_rpcs=pb_rpcs,
                           per_block_seconds=pb_seconds,
                           coalesced_rpcs=co_rpcs,
                           coalesced_seconds=co_seconds,
                           merged_write_blocks=stats.merged_write_blocks)


def format_pipelined_io(reads: Dict[int, ReadPoint],
                        flush: FlushComparison) -> str:
    """Render both measurements as the archived results table."""
    base = reads[min(reads)]
    lines = [
        "Extension: pipelined proxy I/O (WAN+C, cold caches)",
        "",
        "Sequential readahead — 8 MB cold sequential read:",
        "  depth   time(s)  speedup  issued  used  accuracy  coalesced",
    ]
    for depth in sorted(reads):
        p = reads[depth]
        lines.append(
            f"  {depth:5d}  {p.seconds:8.1f}  "
            f"{base.seconds / p.seconds:6.1f}x  {p.prefetch_issued:6d}  "
            f"{p.prefetch_used:4d}  {p.prefetch_accuracy:7.1%}  "
            f"{p.coalesced_misses:9d}")
    lines += [
        "",
        f"Coalesced write-back — flush of a dirty {flush.file_mb} MB file:",
        f"  per-block (legacy) : {flush.per_block_rpcs:5d} WRITE RPCs, "
        f"{flush.per_block_seconds:7.1f} s",
        f"  coalesced+pipelined: {flush.coalesced_rpcs:5d} WRITE RPCs, "
        f"{flush.coalesced_seconds:7.1f} s",
        f"  RPC reduction      : "
        f"{1 - flush.coalesced_rpcs / flush.per_block_rpcs:6.1%} "
        f"({flush.merged_write_blocks} blocks carried)",
    ]
    return "\n".join(lines)
