"""Clone-storm benchmark for the sharded image-server farm.

PR 6's fleet storm scaled the *client* side (sites, sessions, engine
throughput); the origin tier stayed a single image server per site.
This benchmark scales the origin: one site absorbs a staggered
clone storm against a :class:`~repro.middleware.farm.ImageFarm` of
1, 4 or 16 replicated data servers, with and without a data-server
crash mid-storm.  Each session clones the golden image (block-wise
demand traffic through the farm's origin selector), writes a small
checkpoint through the mount (acknowledged replicated writes), and
flushes on teardown.

Measured per cell: storm completion (simulated seconds), per-clone
latency, per-server request counts, failover/abort counters, the
re-replication record and the acknowledged-write audit.  The driver
also runs two controls:

* **placement determinism** — two farms built from the same seed must
  produce byte-identical placement snapshots;
* **golden control** — the farm-*disabled* path (the ``cold_clone``
  perf workload) must keep its archived golden simulated-time
  signature bit-identical: the origin-selector seams are inert when no
  farm is wired.

``run_farmbench`` produces the ``results/BENCH_pr9.json`` document;
``check_report`` turns it into the CI ``farm-smoke`` gates: measurable
storm speedup at 4 and 16 servers vs 1, zero lost acknowledged writes
and zero unrepaired corruption under the mid-storm crash, observed
failovers (the crash must actually be survived, not dodged), bounded
recovery, deterministic placement, and no golden-timing drift.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CHECKPOINT_BLOCKS",
    "FULL_CELLS",
    "MIN_SPEEDUP",
    "QUICK_CELLS",
    "check_report",
    "format_report",
    "run_farm_storm",
    "run_farmbench",
    "run_golden_control",
    "run_placement_determinism",
]

#: Storm cells ``(n_servers, crash_mid_storm)``.  A crash cell needs a
#: surviving replica, so there is no 1-server crash cell.
FULL_CELLS: List[Tuple[int, bool]] = [
    (1, False), (4, False), (16, False), (4, True), (16, True)]
QUICK_CELLS: List[Tuple[int, bool]] = [(1, False), (4, False), (4, True)]

#: Storm completion speedup floors for the 4- and 16-server cells
#: against the single-server cell.
MIN_SPEEDUP = 1.1

# Storm geometry: the acceptance workload is the 1,000-session storm.
FULL_SESSIONS = 1000
QUICK_SESSIONS = 48
#: Arrival stagger, simulated seconds.  Dense enough to saturate the
#: single-server cell (the farm's reason to exist).
STORM_STAGGER = 0.05
#: Compute servers (sessions round-robin).  Sized so the client side
#: can absorb what 16 site-attached data servers can source.
STORM_COMPUTE = 16
#: Per-session golden image: small but fully wire-visible.
STORM_MEMORY_MB = 4
STORM_DISK_GB = 0.01
STORM_ZERO_FRACTION = 0.5
#: Block-aligned checkpoint blocks each session writes through the
#: mount — the storm's acknowledged replicated writes.
CHECKPOINT_BLOCKS = 4
_BLOCK = 8192


def _crash_at(sessions: int, stagger: float) -> float:
    """Mid-arrival: half the storm has arrived, transfers are dense."""
    return sessions * stagger * 0.5 + 0.5


def run_farm_storm(n_servers: int, sessions: int,
                   crash: bool = False, seed: int = 0,
                   stagger: float = STORM_STAGGER,
                   n_compute: int = STORM_COMPUTE) -> dict:
    """One storm cell: ``sessions`` staggered clones against a farm of
    ``n_servers`` data servers, optionally crashing one mid-storm."""
    if crash and n_servers < 2:
        raise ValueError("a crash cell needs a surviving replica")
    from repro.middleware.farm import ImageFarm
    from repro.middleware.imageserver import ImageRequirements
    from repro.middleware.sessions import VmSessionManager
    from repro.net.topology import make_paper_testbed
    from repro.sim import AllOf
    from repro.sim.chaos import attach_data_servers
    from repro.sim.faults import FaultInjector, FaultPlan
    from repro.vm.image import VmConfig

    testbed = make_paper_testbed(n_compute=n_compute)
    env = testbed.env
    farm = ImageFarm(testbed, n_servers=n_servers, seed=seed)
    manager = VmSessionManager(testbed, origin=farm,
                               account_pool_size=sessions)
    farm.register_image(
        "storm-golden",
        VmConfig(name="storm-golden", memory_mb=STORM_MEMORY_MB,
                 disk_gb=STORM_DISK_GB, persistent=False, seed=17),
        zero_fraction=STORM_ZERO_FRACTION,
        # No meta-data: reads stay block-wise, so the storm's traffic
        # actually exercises the replica selection per block range.
        generate_metadata=False)
    farm.provision_dir("/checkpoints")
    requirements = ImageRequirements(min_memory_mb=STORM_MEMORY_MB)
    clone_seconds: List[float] = []

    def one_user(env, index):
        yield env.timeout(index * stagger)
        session = yield env.process(manager.create_session(
            f"user{index}", requirements))
        clone_seconds.append(session.clone.total_seconds)
        # Checkpoint: block-aligned writes through the GVFS mount; the
        # flush in end_session pushes them upstream as replicated,
        # acknowledged WRITEs (what the crash audit then verifies).
        ckpt = yield from session.gvfs.mount.create(
            f"/checkpoints/user{index}.ckpt")
        payload = bytes([index % 251]) * _BLOCK
        for b in range(CHECKPOINT_BLOCKS):
            yield from ckpt.write(b * _BLOCK, payload)
        yield from ckpt.close()
        yield env.process(manager.end_session(session))

    def driver(env):
        users = [env.process(one_user(env, i)) for i in range(sessions)]
        yield AllOf(env, users)

    crash_time = None
    if crash:
        injector = FaultInjector(env)
        names = attach_data_servers(injector, "farm", farm)
        crash_time = _crash_at(sessions, stagger)
        # Crash a non-primary replica (index 1): the namespace stream
        # keeps its serialization point while block reads fail over.
        injector.schedule(FaultPlan.server_crash(names[1], at=crash_time))

    env.process(driver(env))
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0

    snapshot = farm.farm_snapshot()
    audit = farm.audit_acknowledged_writes()
    layer_totals = manager.fleet_snapshot(deep=False)["layer_totals"]
    checksum = layer_totals.get("checksum", {})
    clone_sorted = sorted(clone_seconds)
    clients = snapshot["clients"]
    return {
        "n_servers": n_servers,
        "crash": crash,
        "crash_at": crash_time,
        "sessions": sessions,
        "completed_sessions": len(clone_seconds),
        "sim_seconds": env.now,
        "wall_seconds": wall,
        "events": env.events_scheduled,
        "clone_mean_seconds": (sum(clone_seconds) / len(clone_seconds)
                               if clone_seconds else 0.0),
        "clone_p50_seconds": (clone_sorted[len(clone_sorted) // 2]
                              if clone_sorted else 0.0),
        "clone_max_seconds": clone_sorted[-1] if clone_sorted else 0.0,
        "server_calls": {name: s["calls"]
                         for name, s in snapshot["servers"].items()},
        "clients": clients,
        "failover_events": (clients["failovers"]
                            + clients["aborted_attempts"]
                            + clients["degraded_reads"]
                            + clients["channel_failovers"]
                            + clients["aborted_fetches"]),
        "recovery": snapshot["recovery"],
        "recovery_complete": farm.recovery_complete(),
        "audit": audit,
        "corruptions_caught": checksum.get("corruptions_caught", 0),
        "corruptions_repaired": checksum.get("corruptions_repaired", 0),
        "placements": snapshot["placements"],
        "entries_retracted": snapshot["entries_retracted"],
    }


def run_placement_determinism(seed: int = 7,
                              n_servers: int = 4) -> dict:
    """Two farms, same seed: their eager placement maps must be
    byte-identical (the namenode is a pure function of the seed)."""
    from repro.middleware.farm import ImageFarm
    from repro.net.topology import make_paper_testbed
    from repro.vm.image import VmConfig

    def build_snapshot() -> Dict[str, List[str]]:
        testbed = make_paper_testbed(n_compute=1)
        farm = ImageFarm(testbed, n_servers=n_servers, seed=seed)
        farm.register_image(
            "det-golden",
            VmConfig(name="det-golden", memory_mb=STORM_MEMORY_MB,
                     disk_gb=STORM_DISK_GB, persistent=False, seed=17),
            zero_fraction=STORM_ZERO_FRACTION, generate_metadata=False)
        return farm.metadata.placement_snapshot()

    first, second = build_snapshot(), build_snapshot()
    return {"seed": seed, "n_servers": n_servers,
            "entries": len(first), "identical": first == second}


def run_golden_control() -> dict:
    """The farm-disabled control: ``cold_clone@quick`` must keep its
    archived golden simulated-time signature bit-identical."""
    from repro.experiments.perf import WORKLOADS, load_golden

    golden = load_golden().get("cold_clone@quick")
    sample = WORKLOADS["cold_clone"](quick=True)
    return {"workload": "cold_clone@quick",
            "golden_signature": golden,
            "signature": sample.sim_signature,
            "match": golden is not None and sample.sim_signature == golden}


def run_farmbench(quick: bool = False,
                  sessions: Optional[int] = None,
                  cells: Optional[List[Tuple[int, bool]]] = None,
                  seed: int = 0) -> dict:
    """The full PR-9 benchmark document (``results/BENCH_pr9.json``)."""
    sessions = sessions or (QUICK_SESSIONS if quick else FULL_SESSIONS)
    cells = list(cells if cells is not None
                 else (QUICK_CELLS if quick else FULL_CELLS))
    for n_servers, crash in cells:
        if n_servers < 1 or (crash and n_servers < 2):
            raise ValueError(f"invalid cell ({n_servers}, crash={crash})")
    report: dict = {
        "bench": "pr9",
        "quick": quick,
        "created_unix": time.time(),
        "sessions": sessions,
        "stagger": STORM_STAGGER,
        "n_compute": STORM_COMPUTE,
        "seed": seed,
        "checkpoint_blocks": CHECKPOINT_BLOCKS,
        "cells": {},
    }
    for n_servers, crash in cells:
        key = f"s{n_servers}" + ("-crash" if crash else "")
        report["cells"][key] = run_farm_storm(
            n_servers, sessions=sessions, crash=crash, seed=seed)
    baseline = report["cells"].get("s1")
    speedups: Dict[str, float] = {}
    if baseline:
        for key, cell in report["cells"].items():
            if key == "s1" or cell["crash"]:
                continue
            speedups[key] = (baseline["sim_seconds"] / cell["sim_seconds"]
                             if cell["sim_seconds"] else 0.0)
    report["speedups"] = speedups
    report["placement_determinism"] = run_placement_determinism()
    report["golden_control"] = run_golden_control()
    return report


def check_report(report: dict,
                 baseline: Optional[dict] = None) -> List[str]:
    """CI gates over a farmbench report ([] = all good).

    * every crash-free multi-server cell beats the single-server storm
      by at least :data:`MIN_SPEEDUP`;
    * every cell completed all its sessions and acknowledged all its
      checkpoint writes;
    * every crash cell: zero lost acknowledged blocks, at least one
      observed failover (the crash landed mid-traffic), re-replication
      ran to completion with nothing unrecoverable, and no unrepaired
      corruption reached a reader;
    * same-seed placement maps are identical;
    * the farm-disabled golden control kept its archived signature.

    ``baseline`` (an earlier report at the same scale) adds a storm
    regression bound: no cell may be more than 25% slower in simulated
    time than the same cell in the baseline.
    """
    failures: List[str] = []
    cells = report.get("cells", {})
    for key, speedup in report.get("speedups", {}).items():
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{key}: storm speedup vs one server is {speedup:.2f}x "
                f"(floor: {MIN_SPEEDUP}x)")
    for key, cell in cells.items():
        expected = cell["sessions"]
        if cell["completed_sessions"] != expected:
            failures.append(
                f"{key}: only {cell['completed_sessions']}/{expected} "
                "sessions completed")
        expected_acked = expected * report.get("checkpoint_blocks",
                                               CHECKPOINT_BLOCKS)
        if cell["audit"]["acked_blocks"] < expected_acked:
            failures.append(
                f"{key}: only {cell['audit']['acked_blocks']} of "
                f"{expected_acked} checkpoint blocks were acknowledged")
        unrepaired = (cell.get("corruptions_caught", 0)
                      - cell.get("corruptions_repaired", 0))
        if unrepaired:
            failures.append(
                f"{key}: {unrepaired} caught corruption(s) were never "
                "repaired")
        if not cell["crash"]:
            continue
        if cell["audit"]["lost_blocks"]:
            failures.append(
                f"{key}: {cell['audit']['lost_blocks']} acknowledged "
                f"block(s) lost after the crash "
                f"(examples: {cell['audit']['lost_examples']})")
        if cell["failover_events"] == 0:
            failures.append(
                f"{key}: the mid-storm crash produced zero failover "
                "events — it was never actually survived")
        if not cell["recovery_complete"]:
            failures.append(f"{key}: re-replication never completed")
        for rec in cell["recovery"]:
            if rec.get("ranges_unrecoverable"):
                failures.append(
                    f"{key}: {rec['ranges_unrecoverable']} range(s) of "
                    f"{rec['server']} were unrecoverable")
    det = report.get("placement_determinism", {})
    if not det.get("identical", False):
        failures.append("same-seed farms produced different placement maps")
    golden = report.get("golden_control", {})
    if not golden.get("match", False):
        failures.append(
            "farm-disabled golden control drifted: "
            f"expected {golden.get('golden_signature')}, "
            f"got {golden.get('signature')}")
    if baseline is not None and baseline.get("quick") == report.get("quick"):
        for key, cell in cells.items():
            ref = baseline.get("cells", {}).get(key)
            if ref and cell["sim_seconds"] > 1.25 * ref["sim_seconds"]:
                failures.append(
                    f"{key}: storm is {cell['sim_seconds']:.1f}s simulated "
                    f"vs {ref['sim_seconds']:.1f}s in the baseline "
                    "(bound: +25%)")
    return failures


def format_report(report: dict) -> str:
    lines: List[str] = [
        f"farm clone storm: {report['sessions']} sessions, "
        f"stagger {report['stagger']}s, {report['n_compute']} compute hosts"]
    lines.append(f"{'cell':<10} {'sim s':>8} {'clone s':>8} {'events':>10} "
                 f"{'failover':>9} {'acked':>6} {'lost':>5} {'wall s':>7}")
    for key, cell in report.get("cells", {}).items():
        lines.append(
            f"{key:<10} {cell['sim_seconds']:>8.1f} "
            f"{cell['clone_mean_seconds']:>8.2f} {cell['events']:>10} "
            f"{cell['failover_events']:>9} "
            f"{cell['audit']['acked_blocks']:>6} "
            f"{cell['audit']['lost_blocks']:>5} "
            f"{cell['wall_seconds']:>7.1f}")
    for key, speedup in report.get("speedups", {}).items():
        lines.append(f"speedup {key} vs s1: {speedup:.2f}x")
    for key, cell in report.get("cells", {}).items():
        for rec in cell.get("recovery", []):
            lines.append(
                f"{key}: {rec['server']} crashed, "
                f"{rec['ranges_rebuilt']}/{rec['ranges_lost']} ranges "
                f"re-replicated in {rec.get('seconds', 0.0):.2f}s "
                f"({rec['bytes_copied']} bytes, "
                f"{rec['blocks_verified']} blocks verified)")
    det = report.get("placement_determinism", {})
    if det:
        lines.append(f"placement determinism: "
                     f"{'identical' if det.get('identical') else 'DIVERGED'} "
                     f"({det.get('entries', 0)} entries, seed {det.get('seed')})")
    golden = report.get("golden_control", {})
    if golden:
        lines.append("golden control (farm disabled): "
                     + ("bit-identical" if golden.get("match") else "DRIFTED"))
    return "\n".join(lines)
