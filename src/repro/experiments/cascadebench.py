"""Cache-cascade benchmark: depth x eviction-policy sweep (PR 5).

§3.2.3 motivates a second-level proxy cache on a LAN server;
:func:`repro.core.session.build_cascade` generalizes that to N levels
(compute node -> rack cache -> ... -> site cache -> origin).  This
benchmark answers the quantitative questions the generalization
raises: where do hits concentrate as the cascade deepens, and how much
does the within-set victim-selection policy (LRU / LFU / 2Q,
:mod:`repro.core.eviction`) matter at a capacity-constrained level?

Two workloads, both on the calibrated WAN testbed:

``cold_clone``
    VM cloning through the cascade.  One *hot* golden image is cloned
    repeatedly with the client cold-restarted between clonings (the
    paper's cold-clone discipline), interleaved with distinct one-shot
    *scan* images that pressure the first intermediate level — sized to
    hold the hot image plus only part of a scan, so the eviction policy
    decides whether scans displace the hot set (LRU) or stay
    probationary (2Q) / low-count (LFU).  A tiered-restart sweep first
    cold-restarts progressively deeper prefixes of the cascade
    (client; client+rack; ...) so every level serves at least one
    refill: a depth-d cascade absorbs a tier-j restart from tier j+1.

``kernel_compile``
    Figure 5's kernel build run twice through the cascade with the
    client cold-restarted between runs; the warm run's read traffic
    lands on the first intermediate level.

Each (depth, policy, workload) cell is an independent deterministic
simulation.  The report also carries two *equivalence* checks that the
cascade machinery is pure generalization, compared bit-identically on
simulated clone times: depth 1 (``build_cascade(levels=[])``) against
a plain WAN+C session, and depth 2 against the literal
:class:`~repro.core.session.SecondLevelCache`.  ``check_report`` turns
violated guarantees (a starved level, an equivalence mismatch) into
failures — the CI cascade-smoke gate.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import (
    ProxyCacheConfig,
    pipeline_overrides,
    set_pipeline_overrides,
)
from repro.core.eviction import POLICIES
from repro.core.session import (
    CascadeLevel,
    GvfsSession,
    LocalMount,
    Scenario,
    SecondLevelCache,
    ServerEndpoint,
    build_cascade,
)
from repro.net.topology import Testbed, make_paper_testbed
from repro.vm.cloning import CloneManager
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VmMonitor
from repro.workloads.kernelcompile import KernelCompile

__all__ = ["DEPTHS", "WORKLOADS", "check_report", "format_report",
           "run_cascadebench"]

MB = 1024 * 1024

DEPTHS = (1, 2, 3, 4)
WORKLOADS = ("cold_clone", "kernel_compile")

#: Cloning-image scale: (hot MB, scan MB, steady-state hot/scan pairs).
_CLONE_SCALE = {False: (48, 24, 3), True: (12, 6, 2)}

#: Memory-state zero fraction for the cascade images: lower than the
#: post-boot 0.92 so enough nonzero blocks flow to exercise the caches.
_ZERO_FRACTION = 0.5


class _QuickKernelCompile(KernelCompile):
    """CI-scale kernel build: same phase structure, ~1/8 the bytes."""

    SOURCE_GROUPS = 20
    GROUP_BYTES = 1 * MB
    OBJECT_GROUPS = 16
    OBJECT_BYTES = 256 * 1024


# --------------------------------------------------------------------------
# Cascade geometry
# --------------------------------------------------------------------------

@contextmanager
def _isolated_caches():
    """Run a cell with sequential readahead disabled.

    Prefetch fills satisfy most lookups at every level regardless of
    what the victim selector evicted, masking the very effect the
    policy sweep measures; with readahead off, per-level hit ratios
    reflect retention alone."""
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=0)
    try:
        yield
    finally:
        set_pipeline_overrides(readahead_depth=saved)


def _client_config(policy: str, quick: bool) -> ProxyCacheConfig:
    return ProxyCacheConfig(capacity_bytes=(16 if quick else 64) * MB,
                            n_banks=32, associativity=4, eviction=policy)


def _level_configs(depth: int, policy: str,
                   quick: bool) -> List[ProxyCacheConfig]:
    """Intermediate-level cache geometries, client-ward first.

    The first intermediate level is capacity-constrained (it holds the
    hot image plus only part of a scan, so victim selection matters);
    deeper levels grow origin-ward and comfortably hold the full
    working set, serving refills after deep tier restarts.
    """
    if depth < 2:
        return []
    # The constrained level holds the hot image with little to spare:
    # hot + one scan overshoots capacity, so victim selection decides
    # whether scans displace the hot set.
    constrained = ProxyCacheConfig(
        capacity_bytes=(16 if quick else 64) * MB,
        n_banks=8 if quick else 16, associativity=4, eviction=policy)
    generous = ProxyCacheConfig(
        capacity_bytes=(64 if quick else 256) * MB,
        n_banks=32, associativity=8, eviction=policy)
    return [constrained] + [generous] * (depth - 2)


def _level_rows(session: GvfsSession,
                levels: Sequence[CascadeLevel]) -> List[Dict]:
    """Per-level block-cache stats, client first (level 1)."""
    stacks: List[Tuple[str, object]] = [("client", session.client_proxy)]
    stacks += [(level.name, level.proxy) for level in levels]
    rows = []
    for tier, (name, stack) in enumerate(stacks, start=1):
        counters = stack.stats_snapshot().get("block-cache", {})
        hits = counters.get("block_cache_hits", 0)
        misses = counters.get("block_cache_misses", 0)
        cache = getattr(stack, "block_cache", None)
        rows.append({
            "level": tier,
            "name": name,
            "eviction": cache.policy.name if cache is not None else None,
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
        })
    return rows


# --------------------------------------------------------------------------
# Workload: cold cloning through the cascade
# --------------------------------------------------------------------------

def _make_image(fs, name: str, memory_mb: int, seed: int) -> VmImage:
    config = VmConfig(name=name, memory_mb=memory_mb, disk_gb=0.125,
                      persistent=False, seed=seed)
    # No VM metadata: clone reads then flow block-wise through the
    # cascade's block caches (the subject of the sweep) instead of as
    # whole-file data-channel transfers.
    return VmImage.create(fs, f"/images/{name}", config,
                          zero_fraction=_ZERO_FRACTION)


def _run_cold_clone(depth: int, policy: str, quick: bool,
                    make_via: Optional[Callable] = None) -> Dict:
    """One cold-clone cell.  ``make_via(testbed, endpoint)`` overrides
    cascade construction and returns ``(via, levels)`` — the
    equivalence checks use it to swap in a literal SecondLevelCache or
    a plain session."""
    hot_mb, scan_mb, steady = _CLONE_SCALE[quick]
    testbed = make_paper_testbed()
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    hot = _make_image(fs, "hot", hot_mb, seed=300)
    scans = [_make_image(fs, f"scan{k}", scan_mb, seed=310 + k)
             for k in range(steady)]

    with _isolated_caches():
        if make_via is None:
            cascade = build_cascade(testbed, endpoint,
                                    _level_configs(depth, policy, quick),
                                    name=f"cc-d{depth}")
            via, levels = cascade, cascade.levels
        else:
            via, levels = make_via(testbed, endpoint)

        session = GvfsSession.build(
            testbed, Scenario.WAN_CACHED, endpoint=endpoint,
            cache_config=_client_config(policy, quick), via=via)
    compute = testbed.compute[0]
    manager = CloneManager(env, VmMonitor(env, compute), session.mount,
                           LocalMount(compute.local))
    clone_seconds: List[Tuple[str, float]] = []

    def clone(tag: str, image: VmImage, record: bool = True):
        res = yield env.process(manager.clone(
            image.directory, f"/clones/{tag}", clone_name=tag))
        if record:
            clone_seconds.append((tag, res.total_seconds))

    def restart_tiers(n: int):
        """Cold-restart the client and the first ``n - 1`` cascade
        levels; deeper levels keep their warm state."""
        yield env.process(session.cold_caches())
        for level in levels[:n - 1]:
            yield env.process(level.proxy.quiesce())
            level.proxy.invalidate_caches()

    def driver(env):
        # Warm the whole cascade, then measure from clean counters.
        yield env.process(clone("warm", hot, record=False))
        session.client_proxy.reset(deep=True)
        # Tiered-restart sweep: tier j's refill is served by tier j+1,
        # so every level of the cascade registers hits.
        for j in range(1, depth):
            yield env.process(restart_tiers(j))
            yield env.process(clone(f"tier{j}", hot))
        # Steady state: hot re-clones under one-shot scan pressure.
        for k in range(steady):
            yield env.process(restart_tiers(1))
            yield env.process(clone(f"scan{k}", scans[k]))
            yield env.process(restart_tiers(1))
            yield env.process(clone(f"hot{k}", hot))

    env.process(driver(env))
    env.run()
    return {
        "workload": "cold_clone",
        "depth": depth,
        "policy": policy,
        "clone_seconds": clone_seconds,
        "total_sim_seconds": env.now,
        "levels": _level_rows(session, levels),
    }


# --------------------------------------------------------------------------
# Workload: kernel compilation through the cascade
# --------------------------------------------------------------------------

def _run_kernel_compile(depth: int, policy: str, quick: bool) -> Dict:
    from repro.experiments.appbench import run_application_benchmark
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    workload = _QuickKernelCompile if quick else KernelCompile
    with _isolated_caches():
        cascade = build_cascade(testbed, endpoint,
                                _level_configs(depth, policy, quick),
                                name=f"kc-d{depth}")
        result = run_application_benchmark(
            Scenario.WAN_CACHED, workload, runs=2, testbed=testbed,
            endpoint=endpoint, via=cascade,
            cache_config=_client_config(policy, quick), cold_between=True)
    return {
        "workload": "kernel_compile",
        "depth": depth,
        "policy": policy,
        "run_seconds": [run.total_seconds for run in result.runs],
        "total_sim_seconds": testbed.env.now,
        "levels": _level_rows(result.session, cascade.levels),
    }


_RUNNERS = {"cold_clone": _run_cold_clone,
            "kernel_compile": _run_kernel_compile}


# --------------------------------------------------------------------------
# Equivalence: the cascade machinery is pure generalization
# --------------------------------------------------------------------------

def _equivalence_depth1(quick: bool) -> Dict:
    """``build_cascade(levels=[])`` == a plain WAN+C client session."""
    def plain(testbed, endpoint):
        return None, []
    cascaded = _run_cold_clone(1, "lru", quick)
    direct = _run_cold_clone(1, "lru", quick, make_via=plain)
    return {
        "what": "depth-1 cascade vs plain caching proxy",
        "clone_seconds_identical":
            cascaded["clone_seconds"] == direct["clone_seconds"],
        "total_identical":
            cascaded["total_sim_seconds"] == direct["total_sim_seconds"],
        "cascade_total_s": cascaded["total_sim_seconds"],
        "plain_total_s": direct["total_sim_seconds"],
    }


def _equivalence_depth2(quick: bool) -> Dict:
    """Depth-2 ``build_cascade`` == the literal SecondLevelCache."""
    config = _level_configs(2, "lru", quick)[0]

    def second_level(testbed, endpoint):
        level = SecondLevelCache(testbed, endpoint, cache_config=config)
        return level, [level]
    cascaded = _run_cold_clone(2, "lru", quick)
    classic = _run_cold_clone(2, "lru", quick, make_via=second_level)
    stats_match = ([{k: v for k, v in row.items() if k != "name"}
                    for row in cascaded["levels"]]
                   == [{k: v for k, v in row.items() if k != "name"}
                       for row in classic["levels"]])
    return {
        "what": "depth-2 build_cascade vs SecondLevelCache",
        "clone_seconds_identical":
            cascaded["clone_seconds"] == classic["clone_seconds"],
        "total_identical":
            cascaded["total_sim_seconds"] == classic["total_sim_seconds"],
        "level_stats_identical": stats_match,
        "cascade_total_s": cascaded["total_sim_seconds"],
        "second_level_total_s": classic["total_sim_seconds"],
    }


# --------------------------------------------------------------------------
# Driver / report
# --------------------------------------------------------------------------

def run_cascadebench(depths: Optional[Sequence[int]] = None,
                     policies: Optional[Sequence[str]] = None,
                     workloads: Optional[Sequence[str]] = None,
                     quick: bool = False) -> Dict:
    """Sweep cascade depth x eviction policy x workload; each cell is
    an independent deterministic simulation."""
    depths = list(depths or DEPTHS)
    policies = list(policies or POLICIES)
    workloads = list(workloads or WORKLOADS)
    bad = [d for d in depths if d < 1]
    if bad:
        raise ValueError(f"depths must be >= 1, got {bad}")
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        raise ValueError(f"unknown eviction policy(ies) {unknown}; "
                         f"choose from {sorted(POLICIES)}")
    unknown = [w for w in workloads if w not in _RUNNERS]
    if unknown:
        raise ValueError(f"unknown workload(s) {unknown}; "
                         f"choose from {sorted(_RUNNERS)}")
    cells = [_RUNNERS[workload](depth, policy, quick)
             for workload in workloads
             for depth in depths
             for policy in policies]
    return {
        "benchmark": "cascadebench",
        "quick": quick,
        "depths": depths,
        "policies": policies,
        "workloads": workloads,
        "cells": cells,
        "equivalence": {"depth1": _equivalence_depth1(quick),
                        "depth2": _equivalence_depth2(quick)},
    }


def check_report(report: Dict) -> List[str]:
    """Acceptance checks; returns human-readable failures (empty = pass).

    * Every cascade level (tier >= 2) of every cold-clone cell must
      register hits — a 0 ratio means a level is dead weight (the
      tiered-restart sweep guarantees each serves at least one refill).
    * The depth-1 and depth-2 equivalence runs must match their
      reference sessions bit-identically on simulated time — drift
      means the cascade machinery changed timing, not just structure.
    """
    failures = []
    for cell in report["cells"]:
        if cell["workload"] != "cold_clone" or cell["depth"] < 2:
            continue
        tag = f"cold_clone depth={cell['depth']} policy={cell['policy']}"
        for row in cell["levels"]:
            if row["level"] >= 2 and row["hit_ratio"] == 0.0:
                failures.append(
                    f"{tag}: level {row['level']} ({row['name']}) "
                    "registered no hits")
    for key, eq in report["equivalence"].items():
        wrong = [k for k, v in eq.items()
                 if k.endswith("identical") and v is not True]
        if wrong:
            failures.append(f"equivalence {key} ({eq['what']}): "
                            + ", ".join(wrong))
    return failures


def format_report(report: Dict) -> str:
    lines = [f"cascadebench (depths {report['depths']}, policies "
             f"{report['policies']}{', quick' if report['quick'] else ''})"]
    for workload in report["workloads"]:
        lines.append(f"  {workload}:")
        lines.append("    depth  policy  sim-total(s)  per-level hit ratio")
        for cell in report["cells"]:
            if cell["workload"] != workload:
                continue
            ratios = "  ".join(f"L{row['level']}={row['hit_ratio']:.3f}"
                               for row in cell["levels"])
            lines.append(f"    {cell['depth']:>5}  {cell['policy']:<6}"
                         f"  {cell['total_sim_seconds']:>12.2f}  {ratios}")
    for eq in report["equivalence"].values():
        flags = all(v is True for k, v in eq.items()
                    if k.endswith("identical"))
        lines.append(f"  equivalence: {eq['what']}: "
                     f"{'identical' if flags else 'DIVERGED'}")
    return "\n".join(lines)
