"""Experiment drivers reproducing the paper's evaluation (§4).

:mod:`~repro.experiments.appbench` runs the application benchmarks
(Figures 3–5) inside a VM under each scenario;
:mod:`~repro.experiments.clonebench` runs the cloning experiments
(Figure 6, Table 1) including the SCP and pure-NFS comparators.
"""

from repro.experiments.appbench import AppBenchResult, run_application_benchmark
from repro.experiments.clonebench import (
    CloneBenchResult,
    CloneScenario,
    run_cloning_benchmark,
    run_parallel_cloning,
)
from repro.experiments.persistent import (
    PersistentVmResult,
    run_persistent_vm_lifecycle,
)

__all__ = [
    "AppBenchResult",
    "CloneBenchResult",
    "CloneScenario",
    "PersistentVmResult",
    "run_application_benchmark",
    "run_cloning_benchmark",
    "run_parallel_cloning",
    "run_persistent_vm_lifecycle",
]
