"""Fault-injection benchmark: GVFS recovery under WAN failures (PR 3).

The paper's premise is that grid VMs run over links and servers the
middleware does not control, so the interesting robustness questions
are quantitative: how long does a session stall when the WAN blips,
how fast does a flush recover from a server crash, and how many
absorbed writes does a proxy restart lose with and without the
dirty-frame journal.  Three scenarios measure exactly that:

``wan_blip``
    A cold sequential read over WAN+C while the shared Abilene segment
    flaps (stall policy: in-flight messages park until repair).  The
    hardened RPC ladder rides out the outages; the metric is the
    slowdown versus a fault-free run of the same workload and the
    retransmission count, with an end-to-end integrity check.

``server_crash``
    A write-back flush interrupted by an image-server crash.  The RPC
    ladder exhausts, the circuit breaker trips, and middleware retries
    the flush until the restarted server accepts it.  Metrics: flush
    attempts, breaker trips, time from crash to durable data, and lost
    writes (server bytes versus what the client wrote — zero, because
    dirty blocks stay dirty until the server acknowledges them).

``proxy_restart``
    The same absorbed-write workload run twice — dirty-frame journal
    on and off — with the proxy crashed and restarted by the injector
    after it absorbed the writes.  With the journal the recovered
    flush loses nothing; without it every absorbed block is lost.
    This is the headline ``lost_writes`` comparison of BENCH_pr3.

Every scenario is driven by a :class:`~repro.sim.faults.FaultPlan`
through a :class:`~repro.sim.faults.FaultInjector` and is run twice;
``replay_identical`` asserts the two runs produced bit-identical fault
timelines and metrics (determinism is part of the contract, not a
hope).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional

from repro.core.config import ProxyCacheConfig
from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.link import LinkMode
from repro.net.topology import make_paper_testbed
from repro.nfs.rpc import RpcTimeout
from repro.sim import Environment
from repro.sim.faults import FaultInjector, FaultPlan

__all__ = ["SCENARIOS", "check_report", "format_report", "run_faultbench",
           "run_proxy_restart", "run_server_crash", "run_wan_blip"]

#: Small cache so runs stay fast; geometry mirrors the unit-test rig.
FAULT_CACHE = ProxyCacheConfig(capacity_bytes=64 * 1024 * 1024,
                               n_banks=32, associativity=4)

DEFAULT_SEED = 11


def _payload(seed: int, size: int) -> bytes:
    """Deterministic pseudo-random file contents."""
    return random.Random(seed).randbytes(size)


def _lost_blocks(server: bytes, written: bytes, block_size: int) -> int:
    """Blocks of ``written`` that did not survive to the server copy."""
    n = (len(written) + block_size - 1) // block_size
    return sum(1 for i in range(n)
               if server[i * block_size:(i + 1) * block_size]
               != written[i * block_size:(i + 1) * block_size])


# --------------------------------------------------------------------------
# Scenario 1: WAN link flaps during a cold sequential read
# --------------------------------------------------------------------------

def _wan_blip_once(inject: bool, quick: bool, seed: int,
                   link_mode: LinkMode = LinkMode.EXACT) -> Dict:
    env = Environment()
    testbed = make_paper_testbed(env, link_mode=link_mode)
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    fs.mkdir("/data")
    size = (1 if quick else 4) * 1024 * 1024
    payload = _payload(seed, size)
    fs.create("/data/blob")
    fs.write("/data/blob", payload)

    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=FAULT_CACHE,
                                metadata=False)
    # Generous ladder: outages are shorter than the retry budget, so the
    # read survives on retransmission alone (no breaker, no errors).
    client = session.harden_rpc(timeout=0.5, max_retries=10, backoff=2.0,
                                max_timeout=8.0)

    injector = FaultInjector(env)
    injector.attach("wan", list(testbed.wan_segment))
    plan = FaultPlan.link_flap("wan", first_down=0.5, down_for=2.0,
                               flaps=1 if quick else 2, period=4.0)
    if inject:
        injector.schedule(plan)

    box: Dict = {}

    def driver(env):
        f = yield env.process(session.mount.open("/data/blob"))
        data = yield env.process(f.read_all())
        box["elapsed"] = env.now
        box["ok"] = data == payload

    env.process(driver(env))
    env.run()
    return {
        "elapsed_s": box["elapsed"],
        "integrity_ok": box["ok"],
        "attempts": client.stats.attempts,
        "retransmissions": client.stats.retransmissions,
        "outages": sum(link.outages for link in testbed.wan_segment),
        "timeline": [list(entry) for entry in injector.timeline],
    }


def run_wan_blip(quick: bool = False, seed: int = DEFAULT_SEED,
                 link_mode: LinkMode = LinkMode.EXACT) -> Dict:
    clean = _wan_blip_once(False, quick, seed, link_mode)
    faulted = _wan_blip_once(True, quick, seed, link_mode)
    rerun = _wan_blip_once(True, quick, seed, link_mode)
    return {
        "clean_elapsed_s": clean["elapsed_s"],
        "fault_elapsed_s": faulted["elapsed_s"],
        "slowdown_s": faulted["elapsed_s"] - clean["elapsed_s"],
        "integrity_ok": faulted["integrity_ok"] and clean["integrity_ok"],
        "retransmissions": faulted["retransmissions"],
        "attempts": faulted["attempts"],
        "outages": faulted["outages"],
        "lost_writes": 0,            # read-only workload: nothing to lose
        "timeline": faulted["timeline"],
        "replay_identical": faulted == rerun,
    }


# --------------------------------------------------------------------------
# Scenario 2: image server crashes in the middle of a write-back flush
# --------------------------------------------------------------------------

def _server_crash_once(quick: bool, seed: int,
                       link_mode: LinkMode = LinkMode.EXACT) -> Dict:
    env = Environment()
    testbed = make_paper_testbed(env, link_mode=link_mode)
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    fs.mkdir("/data")
    fs.create("/data/vmdisk")

    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=FAULT_CACHE,
                                metadata=False)
    # Tight ladder (budget 1.5 s < 3 s outage): calls fail, the breaker
    # trips, and recovery comes from the middleware retry loop.
    client = session.harden_rpc(timeout=0.5, max_retries=1, backoff=2.0,
                                max_timeout=4.0, breaker_threshold=3,
                                breaker_reset=2.0)

    block_size = FAULT_CACHE.block_size
    n_blocks = 24 if quick else 96
    payload = _payload(seed + 1, n_blocks * block_size)

    injector = FaultInjector(env)
    injector.attach("server", endpoint.server)

    box: Dict = {}

    def driver(env):
        f = yield env.process(session.mount.open("/data/vmdisk"))
        yield env.process(f.write(0, payload))
        yield env.process(session.mount.flush_all())   # proxy absorbs
        crash_at = env.now + 0.01                       # mid-flush
        injector.schedule(FaultPlan.server_outage("server", at=crash_at,
                                                  down_for=3.0))
        t0 = env.now
        attempts = 1
        while True:
            try:
                yield env.process(session.client_proxy.flush())
                break
            except RpcTimeout:      # includes RpcCircuitOpen fast-fails
                attempts += 1
                yield env.timeout(0.5)
        box["flush_attempts"] = attempts
        box["recovery_s"] = env.now - t0

    env.process(driver(env))
    env.run()

    server_bytes = fs.read("/data/vmdisk")
    breaker = client.breaker
    return {
        "flush_attempts": box["flush_attempts"],
        "recovery_s": box["recovery_s"],
        "breaker_trips": breaker.trips,
        "breaker_fast_failures": breaker.fast_failures,
        "server_crashes": endpoint.server.crashes,
        "lost_writes": _lost_blocks(server_bytes, payload, block_size),
        "blocks_written": n_blocks,
        "timeline": [list(entry) for entry in injector.timeline],
    }


def run_server_crash(quick: bool = False, seed: int = DEFAULT_SEED,
                     link_mode: LinkMode = LinkMode.EXACT) -> Dict:
    result = _server_crash_once(quick, seed, link_mode)
    rerun = _server_crash_once(quick, seed, link_mode)
    result["replay_identical"] = result == rerun
    result["integrity_ok"] = result["lost_writes"] == 0
    return result


# --------------------------------------------------------------------------
# Scenario 3: proxy restart with and without the dirty-frame journal
# --------------------------------------------------------------------------

def _proxy_restart_once(journal: bool, quick: bool, seed: int,
                        link_mode: LinkMode = LinkMode.EXACT) -> Dict:
    env = Environment()
    testbed = make_paper_testbed(env, link_mode=link_mode)
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    fs.mkdir("/data")
    fs.create("/data/vmdisk")

    cache = replace(FAULT_CACHE, journal=journal)
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint, cache_config=cache,
                                metadata=False)
    proxy = session.client_proxy

    block_size = cache.block_size
    n_blocks = 16 if quick else 48
    payload = _payload(seed + 2, n_blocks * block_size)

    injector = FaultInjector(env)
    injector.attach("proxy", proxy)

    box: Dict = {}

    def driver(env):
        f = yield env.process(session.mount.open("/data/vmdisk"))
        yield env.process(f.write(0, payload))
        yield env.process(session.mount.flush_all())   # proxy absorbs
        box["absorbed"] = proxy.block_cache.dirty_frames
        injector.schedule(FaultPlan.proxy_restart("proxy", at=env.now + 0.01,
                                                  down_for=0.5))
        yield env.timeout(1.0)       # crash + journal-replay restart done
        yield env.process(proxy.flush())
        box["flush_done"] = env.now

    env.process(driver(env))
    env.run()

    server_bytes = fs.read("/data/vmdisk")
    crash_at = injector.timeline[0][0]
    return {
        "journal": journal,
        "absorbed_dirty_blocks": box["absorbed"],
        "recovered_blocks": proxy.stats.recovered_dirty_blocks,
        "journal_appends": proxy.block_cache.journal_appends,
        "recovery_s": box["flush_done"] - crash_at,
        "lost_writes": _lost_blocks(server_bytes, payload, block_size),
        "blocks_written": n_blocks,
        "timeline": [list(entry) for entry in injector.timeline],
    }


def run_proxy_restart(quick: bool = False, seed: int = DEFAULT_SEED,
                      link_mode: LinkMode = LinkMode.EXACT) -> Dict:
    journaled = _proxy_restart_once(True, quick, seed, link_mode)
    rerun = _proxy_restart_once(True, quick, seed, link_mode)
    bare = _proxy_restart_once(False, quick, seed, link_mode)
    return {
        "journaled": journaled,
        "no_journal": bare,
        "lost_writes": journaled["lost_writes"],
        "lost_writes_without_journal": bare["lost_writes"],
        "integrity_ok": journaled["lost_writes"] == 0,
        "replay_identical": journaled == rerun,
    }


# --------------------------------------------------------------------------
# Driver / report
# --------------------------------------------------------------------------

SCENARIOS = {
    "wan_blip": run_wan_blip,
    "server_crash": run_server_crash,
    "proxy_restart": run_proxy_restart,
}


def run_faultbench(scenarios: Optional[List[str]] = None,
                   quick: bool = False,
                   seed: int = DEFAULT_SEED,
                   link_mode: str = "exact") -> Dict:
    """Run the named fault scenarios (default: all) and collect a report.

    ``link_mode="fluid"`` runs the testbed on fluid links: unfaulted
    links keep the one-event fast path and each faulted link falls back
    to the exact store-and-forward model on its first outage (see
    :attr:`repro.net.link.Link.fluid_ready`), so fault injection and
    the fluid engine optimization finally compose.
    """
    mode = LinkMode(link_mode) if isinstance(link_mode, str) else link_mode
    names = scenarios or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; "
                         f"choose from {sorted(SCENARIOS)}")
    return {
        "benchmark": "faultbench",
        "seed": seed,
        "quick": quick,
        "link_mode": mode.value,
        "scenarios": {name: SCENARIOS[name](quick=quick, seed=seed,
                                            link_mode=mode)
                      for name in names},
    }


def check_report(report: Dict) -> List[str]:
    """Acceptance checks; returns human-readable failures (empty = pass)."""
    failures = []
    for name, result in report["scenarios"].items():
        if not result.get("integrity_ok", True):
            failures.append(f"{name}: data integrity check failed")
        if not result.get("replay_identical", True):
            failures.append(f"{name}: replay with the same seed diverged")
        if result.get("lost_writes", 0) != 0:
            failures.append(f"{name}: lost {result['lost_writes']} write(s) "
                            "despite recovery")
    proxy = report["scenarios"].get("proxy_restart")
    if proxy is not None and proxy["lost_writes_without_journal"] == 0:
        failures.append("proxy_restart: journal-less run lost nothing — "
                        "the scenario is not exercising the journal")
    return failures


def format_report(report: Dict) -> str:
    lines = [f"faultbench (seed={report['seed']}"
             f"{', quick' if report['quick'] else ''})"]
    scenarios = report["scenarios"]
    if "wan_blip" in scenarios:
        s = scenarios["wan_blip"]
        lines.append(
            f"  wan_blip:      {s['outages']} outage(s) cost "
            f"{s['slowdown_s']:.2f}s ({s['clean_elapsed_s']:.2f}s -> "
            f"{s['fault_elapsed_s']:.2f}s), {s['retransmissions']} "
            f"retransmission(s), integrity "
            f"{'OK' if s['integrity_ok'] else 'FAILED'}")
    if "server_crash" in scenarios:
        s = scenarios["server_crash"]
        lines.append(
            f"  server_crash:  flush recovered in {s['recovery_s']:.2f}s "
            f"over {s['flush_attempts']} attempt(s), breaker tripped "
            f"{s['breaker_trips']}x, lost writes "
            f"{s['lost_writes']}/{s['blocks_written']}")
    if "proxy_restart" in scenarios:
        s = scenarios["proxy_restart"]
        j, b = s["journaled"], s["no_journal"]
        lines.append(
            f"  proxy_restart: journal recovered "
            f"{j['recovered_blocks']}/{j['absorbed_dirty_blocks']} dirty "
            f"block(s) in {j['recovery_s']:.2f}s, lost {j['lost_writes']}; "
            f"without journal lost {b['lost_writes']}/{b['blocks_written']}")
    replays = [s.get("replay_identical", True) for s in scenarios.values()]
    lines.append(f"  replay determinism: "
                 f"{'OK' if all(replays) else 'DIVERGED'}")
    return "\n".join(lines)
