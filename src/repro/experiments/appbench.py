"""Application-execution experiments (§4.2): Figures 3, 4 and 5.

A 512 MB-RAM / 2 GB-disk VM (plain/persistent disk mode) holds the
benchmark applications and datasets; its state files live on the image
server of the chosen scenario.  The VM is already running (the paper
measures in-VM execution time, not instantiation), caches start cold —
"un-mounting and mounting the virtual file system, and flushing the
proxy caches" — and consecutive runs stay warm, as in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import Testbed, make_paper_testbed
from repro.nfs.client import MountOptions
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VirtualMachine
from repro.workloads.base import Workload, WorkloadResult

__all__ = ["AppBenchResult", "run_application_benchmark"]

#: The application VM of §4.2.1.
APP_VM_CONFIG = VmConfig(name="appvm", memory_mb=512, disk_gb=2.0,
                         os_name="Red Hat Linux 7.3", persistent=True,
                         seed=11)


@dataclass
class AppBenchResult:
    """Per-run phase times of one benchmark under one scenario."""

    scenario: Scenario
    workload: str
    runs: List[WorkloadResult] = field(default_factory=list)
    #: Time of the middleware-driven flush of dirty write-back state at
    #: session end (the paper's ~160 s for the LaTeX session).
    flush_seconds: float = 0.0
    #: The session the runs executed under, for post-run cache-stat
    #: inspection (cascade experiments read per-level hit ratios).
    session: Optional[GvfsSession] = None

    def run_total(self, run: int = 0) -> float:
        return self.runs[run].total_seconds

    def phase(self, name: str, run: int = 0) -> float:
        return self.runs[run].phase_seconds(name)


def _image_home(testbed: Testbed, scenario: Scenario,
                endpoint: Optional[ServerEndpoint]):
    """Filesystem that holds the VM image for this scenario."""
    if scenario is Scenario.LOCAL:
        return testbed.compute[0].local.fs
    assert endpoint is not None
    return endpoint.export.fs


def run_application_benchmark(scenario: Scenario,
                              workload_factory: Callable[[], Workload],
                              runs: int = 1,
                              testbed: Optional[Testbed] = None,
                              mount_options: Optional[MountOptions] = None,
                              endpoint: Optional[ServerEndpoint] = None,
                              via=None,
                              cache_config=None,
                              cold_between: bool = False,
                              ) -> AppBenchResult:
    """Run ``runs`` consecutive executions of a workload in a VM under
    ``scenario``; returns per-run phase timings.

    The first run starts with cold caches; later runs inherit warm
    state (Figure 5's cold/warm pair is ``runs=2``).  ``cold_between``
    instead cold-restarts the *client* (kernel caches, guest page
    cache, client proxy caches) before every run — intermediate cascade
    levels interposed with ``via`` (a ``CascadeLevel`` or
    ``ProxyCascade``) stay warm, which is how the cascade experiments
    measure per-level locality.  ``endpoint`` reuses a caller-built
    image-server side (required when ``via`` points at a cascade built
    against it).
    """
    testbed = testbed or make_paper_testbed()
    env = testbed.env

    if endpoint is None and scenario is not Scenario.LOCAL:
        host = (testbed.lan_server if scenario is Scenario.LAN
                else testbed.wan_server)
        endpoint = ServerEndpoint(env, host)
    image = VmImage.create(_image_home(testbed, scenario, endpoint),
                           "/images/appvm", APP_VM_CONFIG)
    session = GvfsSession.build(testbed, scenario, endpoint=endpoint,
                                mount_options=mount_options, via=via,
                                cache_config=cache_config)

    sample = workload_factory()
    result = AppBenchResult(scenario=scenario, workload=sample.name)

    def driver(env):
        disk_file = yield env.process(session.mount.open(image.disk_path))
        vm = VirtualMachine(env, testbed.compute[0], APP_VM_CONFIG,
                            disk_file, redo=None)
        if sample.guest_cache_bytes is not None:
            vm._guest_cache_capacity = max(
                sample.guest_cache_bytes // vm.block_size, 16)
        # Cold-cache setup for the first run.
        yield env.process(session.cold_caches())
        vm.drop_guest_caches()
        for run_index in range(runs):
            if cold_between and run_index:
                yield env.process(session.cold_caches())
                vm.drop_guest_caches()
            workload = workload_factory()
            run_result = yield env.process(workload.run(vm))
            result.runs.append(run_result)
        # Leave the session consistent (flush dirty write-back state);
        # reported separately, like the paper's write-back flush time.
        t0 = env.now
        yield env.process(session.flush())
        result.flush_seconds = env.now - t0

    env.process(driver(env))
    env.run()
    result.session = session
    return result
