"""Cooperative peer caching vs exclusive cascades: the PR 7 sweep.

BENCH_pr5 left two questions open.  First, proxies on one LAN site are
*siloed*: N compute nodes cloning the same golden image each pull every
block over the WAN even though an identical copy sits one cheap hop
away on a neighbour ("distributed file system" cuts both ways — §3.2.3
puts a shared second-level cache on the LAN, but peers' own disks are
a second-level cache that is already paid for).  Second, stacked
cascade levels are *inclusive*: every level holds the same hot blocks,
so a depth-d cascade buys far less than d× the capacity, and depth 4
measurably regressed.

This benchmark sweeps the three proxy-organization modes the PR adds —

``inclusive``
    The PR-5 baseline: siloed client proxies over a plain cascade.
``exclusive``
    Same topology, demotion armed (:meth:`ProxyCascade.arm_exclusive` +
    ``GvfsSession.build(exclusive=True)``): clean eviction victims hand
    upstream as DEMOTE calls instead of being dropped, so stacked
    levels stop duplicating each other.
``cooperative``
    Same per-node cache budget, plus the site peer directory
    (:meth:`Testbed.peer_directory`): proxies answer each other's
    misses over the LAN before they escalate to the WAN.

— across cascade depth × peer count, over a four-phase workload per
cell: a staggered cold-clone storm of one hot image (A), per-peer
distinct scan clones that pressure the client caches into eviction
(B), a client-cold hot re-clone storm (C), and a golden-image rollout
(D): every cache level is invalidated mid-run (the middleware pushes a
new image version; the peer directory empties itself through the
observer protocol) and the storm repeats on v2, with an end-to-end
integrity check of the cloned bytes.

An ``adaptive`` section exercises :mod:`repro.core.adaptive` on the
depth-4 regression: warm the cascade, plan from one deep snapshot,
bypass the levels that stopped paying, and require the adapted probe
clone to be no slower than the unadapted control.

``check_report`` encodes the PR's guarantees: every cooperative cell
serves peer hits; the multi-peer cooperative cold storm strictly beats
the siloed storm on time *and* WAN bytes at the same cache budget;
exclusive never loses to inclusive at depth 2 and demotes on every
deep cell; depth-1 exclusive is bit-identical to inclusive (arming
against a cacheless upstream is a no-op); replay is deterministic.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from repro.core.adaptive import apply_cascade_sizing, plan_cascade_sizing
from repro.core.config import ProxyCacheConfig
from repro.core.session import (
    GvfsSession,
    LocalMount,
    Scenario,
    ServerEndpoint,
    build_cascade,
)
from repro.experiments.cascadebench import (
    _CLONE_SCALE,
    _client_config,
    _isolated_caches,
    _level_configs,
    _level_rows,
    _make_image,
)
from repro.net.topology import make_paper_testbed
from repro.sim import AllOf
from repro.vm.cloning import CloneManager
from repro.vm.image import VmImage
from repro.vm.monitor import VmMonitor

__all__ = ["MODES", "DEPTHS", "PEERS", "check_report", "format_report",
           "run_coopbench"]

MB = 1024 * 1024

MODES = ("inclusive", "exclusive", "cooperative")
DEPTHS = (1, 2, 3)
PEERS = (1, 2, 4)

#: Storm stagger between peers (sim seconds) — a real clone storm's
#: requests arrive over time, not in one instant.  Sized to a visible
#: fraction of a solo cold clone, so a late-arriving peer finds a
#: meaningful published prefix at its neighbours; once it catches the
#: leader's fetch frontier it convoys behind the in-flight-fetch
#: coalescing (each block crosses the WAN once per site).
_STAGGER = {False: 30.0, True: 10.0}


def _wan_bytes(testbed) -> int:
    return sum(link.bytes_sent for link in testbed.wan_segment)


def _peer_stats(sessions) -> Dict[str, int]:
    totals = {"peer_hits": 0, "peer_misses": 0, "peer_stale": 0,
              "peer_bytes": 0}
    for session in sessions:
        layer = session.client_proxy.layer("peer-cache")
        if layer is None:
            continue
        for key in totals:
            totals[key] += getattr(layer.stats, key)
    return totals


def _demotion_stats(sessions, levels) -> Dict[str, int]:
    totals = {"demotions_out": 0, "demotions_in": 0, "demotion_drops": 0}
    stacks = [s.client_proxy for s in sessions] + [l.proxy for l in levels]
    for stack in stacks:
        layer = stack.layer("block-cache")
        if layer is None:
            continue
        for key in totals:
            totals[key] += getattr(layer.stats, key)
    return totals


# --------------------------------------------------------------------------
# One sweep cell
# --------------------------------------------------------------------------

def _run_coop_cell(mode: str, depth: int, n_peers: int,
                   quick: bool) -> Dict:
    hot_mb, scan_mb, _ = _CLONE_SCALE[quick]
    stagger = _STAGGER[quick]
    testbed = make_paper_testbed(n_compute=n_peers)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    hot = _make_image(fs, "hot", hot_mb, seed=700)
    hot_v2 = _make_image(fs, "hot-v2", hot_mb, seed=701)
    scans = [_make_image(fs, f"scan{i}", scan_mb, seed=710 + i)
             for i in range(n_peers)]

    with _isolated_caches():
        cascade = build_cascade(testbed, endpoint,
                                _level_configs(depth, "lru", quick),
                                name=f"coop-d{depth}")
        directory = (testbed.peer_directory()
                     if mode == "cooperative" else None)
        sessions = [GvfsSession.build(
            testbed, Scenario.WAN_CACHED, endpoint=endpoint,
            compute_index=i, cache_config=_client_config("lru", quick),
            via=cascade, peer_directory=directory,
            exclusive=(mode == "exclusive"))
            for i in range(n_peers)]
        if mode == "exclusive":
            cascade.arm_exclusive()
    managers = [CloneManager(env, VmMonitor(env, testbed.compute[i]),
                             sessions[i].mount,
                             LocalMount(testbed.compute[i].local))
                for i in range(n_peers)]

    phases: List[Dict] = []

    def storm(tag: str, images: List[VmImage]):
        """Staggered parallel clone: peer i clones images[i]."""
        t0, w0 = env.now, _wan_bytes(testbed)

        def one(i: int):
            yield env.timeout(i * stagger)
            yield env.process(managers[i].clone(
                images[i].directory, f"/clones/{tag}-p{i}",
                clone_name=f"{tag}-p{i}"))

        yield AllOf(env, [env.process(one(i)) for i in range(n_peers)])
        phases.append({"phase": tag, "makespan_s": env.now - t0,
                       "wan_bytes": _wan_bytes(testbed) - w0})

    def restart_clients():
        for session in sessions:
            yield env.process(session.cold_caches())

    def invalidate_everything():
        """Golden-image rollout: the middleware drops every cache level
        (clients, cascade levels — the peer directory follows through
        the cache-cleared observer callbacks)."""
        yield from restart_clients()
        for level in cascade.levels:
            yield env.process(level.proxy.quiesce())
            level.proxy.invalidate_caches()

    def driver(env):
        # A: cold storm — every peer clones the same hot image.
        yield from storm("cold_storm", [hot] * n_peers)
        # B: scan pressure — each peer clones its own one-shot image,
        # evicting hot blocks from the client caches (the demotion
        # source in exclusive mode).
        yield from storm("scan_pressure", scans)
        # C: hot re-storm with cold clients; upstream levels stay warm.
        yield from restart_clients()
        yield from storm("hot_restorm", [hot] * n_peers)
        # D: rollout — invalidate mid-run, storm on the new version.
        yield from invalidate_everything()
        yield from storm("rollout_storm", [hot_v2] * n_peers)

    env.process(driver(env))
    env.run()

    origin_v2 = fs.read(hot_v2.memory_path)
    integrity_ok = all(
        testbed.compute[i].local.fs.read(
            f"/clones/rollout_storm-p{i}/{VmImage.MEMORY_NAME}")
        == origin_v2
        for i in range(n_peers))

    cell = {
        "mode": mode,
        "depth": depth,
        "peers": n_peers,
        "phases": phases,
        "total_sim_seconds": env.now,
        "wan_bytes_total": _wan_bytes(testbed),
        "integrity_ok": integrity_ok,
        "levels": _level_rows(sessions[0], cascade.levels),
    }
    cell.update(_peer_stats(sessions))
    cell.update(_demotion_stats(sessions, cascade.levels))
    served = cell["peer_hits"] + cell["peer_misses"] + cell["peer_stale"]
    cell["peer_hit_ratio"] = cell["peer_hits"] / served if served else 0.0
    if directory is not None:
        cell["directory"] = directory.stats_snapshot()
    return cell


# --------------------------------------------------------------------------
# Adaptive sizing on the depth-4 regression
# --------------------------------------------------------------------------

def _run_adaptive_once(adapt: bool, quick: bool) -> Dict:
    """Depth-4 cascade with a deliberately undersized client cache.

    Warm with two back-to-back hot clones: the client thrashes (the
    image exceeds its capacity, so even the second pass misses nearly
    everything), the first intermediate level absorbs those misses, and
    the two deep levels reveal themselves as pure pass-through — the
    BENCH_pr5 depth-4 shape.  The planner then reads one deep snapshot:
    it grows the thrashing client to its measured working set and
    bypasses the dead levels.  The probe (two more hot clones) shows
    the payoff: the grown client holds the image after the first pass,
    so the second runs from local disk instead of re-crossing the LAN.
    Shrinking is disabled for this in-flight pass — a resize swaps in
    an empty cache, and mid-run the slack level's warm contents are
    worth more than the reclaimed disk.
    """
    hot_mb, _, _ = _CLONE_SCALE[quick]
    testbed = make_paper_testbed()
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    hot = _make_image(fs, "hot", hot_mb, seed=700)
    small = ProxyCacheConfig(capacity_bytes=(4 if quick else 16) * MB,
                             n_banks=8, associativity=4, eviction="lru")

    with _isolated_caches():
        cascade = build_cascade(testbed, endpoint,
                                _level_configs(4, "lru", quick),
                                name="adapt-d4")
        session = GvfsSession.build(
            testbed, Scenario.WAN_CACHED, endpoint=endpoint,
            cache_config=small, via=cascade)
    compute = testbed.compute[0]
    manager = CloneManager(env, VmMonitor(env, compute), session.mount,
                           LocalMount(compute.local))
    box: Dict = {}

    def driver(env):
        # Kernel-cache drops between clones (unmount/mount discipline)
        # without touching the proxy tiers: the client proxy must keep
        # thrashing in plain view of the planner, not hide behind the
        # NFS page cache.
        for tag in ("w0", "w1"):
            session.mount.drop_caches()
            yield env.process(manager.clone(hot.directory, f"/clones/{tag}",
                                            clone_name=tag))
        plans = plan_cascade_sizing(
            session.client_proxy.stats_snapshot(deep=True),
            shrink_slack=0.0)
        box["plans"] = [asdict(p) for p in plans]
        # Write-back safety for replace_cache, charged in both arms so
        # the probe comparison stays like-for-like.
        yield env.process(session.client_proxy.flush())
        if adapt:
            applied = apply_cascade_sizing(session.client_proxy, plans)
            box["applied"] = [p.level for p, ok in applied if ok]
        t0 = env.now
        for tag in ("p0", "p1"):
            session.mount.drop_caches()
            yield env.process(manager.clone(hot.directory, f"/clones/{tag}",
                                            clone_name=tag))
        box["probe_seconds"] = env.now - t0

    env.process(driver(env))
    env.run()
    return {"adapted": adapt, "probe_seconds": box["probe_seconds"],
            "plans": box["plans"], "applied_levels": box.get("applied", []),
            "total_sim_seconds": env.now}


def _run_adaptive(quick: bool) -> Dict:
    control = _run_adaptive_once(False, quick)
    adapted = _run_adaptive_once(True, quick)
    return {
        "what": "depth-4 probe clone, planner-bypassed vs control",
        "control_probe_s": control["probe_seconds"],
        "adapted_probe_s": adapted["probe_seconds"],
        "speedup": (control["probe_seconds"] / adapted["probe_seconds"]
                    if adapted["probe_seconds"] else 0.0),
        "plans": adapted["plans"],
        "applied_levels": adapted["applied_levels"],
    }


# --------------------------------------------------------------------------
# Driver / report
# --------------------------------------------------------------------------

def run_coopbench(modes: Optional[Sequence[str]] = None,
                  depths: Optional[Sequence[int]] = None,
                  peers: Optional[Sequence[int]] = None,
                  quick: bool = False) -> Dict:
    """Sweep proxy organization × cascade depth × peer count; each cell
    is an independent deterministic simulation."""
    modes = list(modes or MODES)
    depths = list(depths or DEPTHS)
    peers = list(peers or PEERS)
    unknown = [m for m in modes if m not in MODES]
    if unknown:
        raise ValueError(f"unknown mode(s) {unknown}; "
                         f"choose from {list(MODES)}")
    bad = [d for d in depths if d < 1] + [p for p in peers if p < 1]
    if bad:
        raise ValueError(f"depths and peers must be >= 1, got {bad}")
    cells = [_run_coop_cell(mode, depth, n, quick)
             for mode in modes
             for depth in depths
             for n in peers]
    replay = None
    if cells:
        first = cells[0]
        replay = _run_coop_cell(first["mode"], first["depth"],
                                first["peers"], quick) == first
    return {
        "benchmark": "coopbench",
        "quick": quick,
        "modes": modes,
        "depths": depths,
        "peers": peers,
        "cells": cells,
        "replay_identical": replay,
        "adaptive": _run_adaptive(quick),
    }


def _cell_index(report: Dict) -> Dict:
    return {(c["mode"], c["depth"], c["peers"]): c
            for c in report["cells"]}


def check_report(report: Dict) -> List[str]:
    """Acceptance checks; returns human-readable failures (empty = pass)."""
    failures = []
    cells = _cell_index(report)
    for cell in report["cells"]:
        tag = (f"{cell['mode']} depth={cell['depth']} "
               f"peers={cell['peers']}")
        if not cell["integrity_ok"]:
            failures.append(f"{tag}: rollout clone bytes diverged from "
                            "the v2 origin image")
        if (cell["mode"] == "cooperative" and cell["peers"] >= 2
                and cell["peer_hits"] == 0):
            failures.append(f"{tag}: zero peer hits — the directory "
                            "never answered a miss")
        if (cell["mode"] == "exclusive" and cell["depth"] >= 2
                and cell["demotions_out"] == 0):
            failures.append(f"{tag}: demotion armed but no clean victim "
                            "ever demoted")
    for (mode, depth, n), coop in cells.items():
        if mode != "cooperative" or n < 2:
            continue
        base = cells.get(("inclusive", depth, n))
        if base is None:
            continue
        tag = f"cooperative depth={depth} peers={n}"
        cp = next(p for p in coop["phases"] if p["phase"] == "cold_storm")
        bp = next(p for p in base["phases"] if p["phase"] == "cold_storm")
        if depth == 1:
            # Peers talk straight to the WAN: the directory must turn
            # per-peer origin fetches into one fetch plus LAN borrows.
            if cp["makespan_s"] >= bp["makespan_s"]:
                failures.append(
                    f"{tag}: cold_storm not faster than siloed "
                    f"({cp['makespan_s']:.2f}s vs {bp['makespan_s']:.2f}s)")
            if cp["wan_bytes"] >= bp["wan_bytes"]:
                failures.append(
                    f"{tag}: cold_storm moved no less WAN traffic than "
                    f"siloed ({cp['wan_bytes']} vs {bp['wan_bytes']} B)")
        else:
            # A shared intermediate level already deduplicates WAN
            # fetches across peers, so the directory cannot reduce WAN
            # bytes further; require its query overhead to stay small
            # and the WAN traffic to never grow.
            if cp["makespan_s"] > bp["makespan_s"] * 1.02:
                failures.append(
                    f"{tag}: directory overhead above 2% on cold_storm "
                    f"({cp['makespan_s']:.2f}s vs {bp['makespan_s']:.2f}s)")
            if cp["wan_bytes"] > bp["wan_bytes"]:
                failures.append(
                    f"{tag}: cold_storm moved more WAN traffic than "
                    f"siloed ({cp['wan_bytes']} vs {bp['wan_bytes']} B)")
    for (mode, depth, n), excl in cells.items():
        if mode != "exclusive":
            continue
        base = cells.get(("inclusive", depth, n))
        if base is None:
            continue
        tag = f"exclusive depth={depth} peers={n}"
        if depth == 1:
            # Arming against the cacheless origin proxy is a no-op, so
            # depth-1 exclusive must be bit-identical to inclusive.
            if (excl["total_sim_seconds"] != base["total_sim_seconds"]
                    or excl["phases"] != base["phases"]):
                failures.append(f"{tag}: depth-1 no-op arming changed "
                                "timing vs inclusive")
        else:
            ep = next(p for p in excl["phases"]
                      if p["phase"] == "hot_restorm")
            bp = next(p for p in base["phases"]
                      if p["phase"] == "hot_restorm")
            if depth == 2:
                # The BENCH_pr5 headline case: after scan pressure,
                # demoted hot blocks must make the L2 refill faster.
                if ep["makespan_s"] > bp["makespan_s"]:
                    failures.append(
                        f"{tag}: hot re-storm slower than inclusive "
                        f"({ep['makespan_s']:.2f}s vs "
                        f"{bp['makespan_s']:.2f}s)")
            elif ep["makespan_s"] > bp["makespan_s"] * 1.25:
                # Deeper cascades retain the hot set inclusively anyway;
                # exclusivity only pays extra hops there.  Bound the
                # regression rather than demand a win.
                failures.append(
                    f"{tag}: hot re-storm regression above 25% "
                    f"({ep['makespan_s']:.2f}s vs {bp['makespan_s']:.2f}s)")
    if report["replay_identical"] is not True:
        failures.append("replay with identical parameters diverged")
    adaptive = report.get("adaptive")
    if adaptive is not None:
        if adaptive["adapted_probe_s"] > adaptive["control_probe_s"]:
            failures.append(
                "adaptive: bypassing dead levels slowed the probe "
                f"({adaptive['adapted_probe_s']:.2f}s vs "
                f"{adaptive['control_probe_s']:.2f}s)")
        if not adaptive["applied_levels"]:
            failures.append("adaptive: the planner proposed nothing "
                            "actionable on the depth-4 cascade")
    return failures


def format_report(report: Dict) -> str:
    lines = [f"coopbench (modes {report['modes']}, depths "
             f"{report['depths']}, peers {report['peers']}"
             f"{', quick' if report['quick'] else ''})"]
    lines.append("    mode         d  N   cold(s)   re-storm(s)  "
                 "rollout(s)   WAN-MB  peer-hit  demoted")
    for c in report["cells"]:
        by = {p["phase"]: p for p in c["phases"]}
        lines.append(
            f"    {c['mode']:<11} {c['depth']:>2} {c['peers']:>2}"
            f"  {by['cold_storm']['makespan_s']:>8.2f}"
            f"  {by['hot_restorm']['makespan_s']:>11.2f}"
            f"  {by['rollout_storm']['makespan_s']:>10.2f}"
            f"  {c['wan_bytes_total'] / (1024 * 1024):>7.1f}"
            f"  {c['peer_hit_ratio']:>8.3f}"
            f"  {c['demotions_out']:>7}")
    adaptive = report["adaptive"]
    lines.append(
        f"  adaptive: probe {adaptive['control_probe_s']:.2f}s -> "
        f"{adaptive['adapted_probe_s']:.2f}s "
        f"({adaptive['speedup']:.2f}x) after bypassing levels "
        f"{adaptive['applied_levels']}")
    lines.append(f"  replay determinism: "
                 f"{'OK' if report['replay_identical'] else 'DIVERGED'}")
    return "\n".join(lines)
