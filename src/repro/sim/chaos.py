"""Layer-targeted chaos helpers: name every layer of a proxy stack.

:mod:`repro.sim.faults` executes plans against *named* targets; this
module provides the naming convention for layered proxy stacks so a
plan can say "corrupt a frame in ``l2/block-cache``" or "blackhole
READ at ``peer0/upstream-rpc``" and replay it bit-identically.

Everything here is duck-typed — a "stack" is anything with a
``layers`` iterable of objects carrying a ``ROLE`` string and an
``inject_fault(kind, arg)`` port (:class:`~repro.core.layers.base.
ProxyLayer`).  ``repro.sim`` never imports ``repro.core``; the
dependency points the other way.
"""

from __future__ import annotations

from typing import List

from repro.sim.faults import FaultEvent, FaultKind, FaultPlan, LAYER_KINDS

__all__ = ["attach_data_servers", "attach_stack", "layer_fault",
           "layer_outage"]


def attach_stack(injector, name: str, stack) -> List[str]:
    """Attach every layer of ``stack`` to ``injector`` by role.

    Each layer is registered as ``"{name}/{ROLE}"``; when a stack holds
    two layers with the same role (a mirrored cache level, say) only
    the first — the one closest to the client — gets the name, keeping
    the mapping deterministic.  Returns the names attached, in stack
    order, so a sweep can enumerate its own targets.
    """
    attached: List[str] = []
    for layer in stack.layers:
        target = f"{name}/{layer.ROLE}"
        if target in attached:
            continue
        injector.attach(target, layer)
        attached.append(target)
    return attached


def attach_data_servers(injector, name: str, farm) -> List[str]:
    """Attach every data server of an image-server farm to ``injector``.

    Each node is registered as ``"{name}/{node.name}"`` so a plan can
    crash one replica of the farm by name (``FaultPlan.server_crash``
    dispatches to the node's ``crash()``, which retires it from the
    placement map).  Duck-typed like :func:`attach_stack`: a "farm" is
    anything with a ``data_servers`` iterable of named crash/restart
    targets.  Returns the names attached, in registration order.
    """
    attached: List[str] = []
    for node in farm.data_servers:
        target = f"{name}/{node.name}"
        injector.attach(target, node)
        attached.append(target)
    return attached


def layer_fault(kind: FaultKind, target: str, at: float,
                arg: object = None) -> FaultPlan:
    """A one-event plan striking ``target``'s fault port at ``at``."""
    if kind not in LAYER_KINDS:
        raise ValueError(f"{kind} is not a layer-scoped fault kind")
    return FaultPlan([FaultEvent(at, kind, target, arg)])


def layer_outage(kind: FaultKind, target: str, at: float,
                 down_for: float, arg: object = None) -> FaultPlan:
    """A layer fault plus its paired repair ``down_for`` seconds later.

    Only the self-repairing layer kinds (stall-uploads, blackhole-proc)
    have a repair pair; ``FaultPlan.outage`` rejects the rest.
    """
    if kind not in LAYER_KINDS:
        raise ValueError(f"{kind} is not a layer-scoped fault kind")
    return FaultPlan.outage(kind, target, at, down_for, arg)
