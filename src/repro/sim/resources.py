"""Shared-resource primitives for the simulation kernel.

:class:`FifoResource` models a server with fixed capacity and a FIFO
queue — used for link serialization, disk arms and NFS daemon threads.
:class:`PriorityResource` adds a priority key.  :class:`Store` is an
unbounded producer/consumer queue used for message delivery between
hosts.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["FifoResource", "PriorityResource", "Store"]


class _Request(Event):
    """Event granted when the resource has a free slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "FifoResource"):
        super().__init__(resource.env)
        self.resource = resource

    # Context-manager sugar so models can write
    #   with (yield res.request()):
    #       ...
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class FifoResource:
    """A capacity-limited resource with first-come-first-served queueing.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set = set()
        self._waiting: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Ask for a slot; the returned event fires when granted."""
        req = _Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: _Request) -> None:
        """Return a previously granted slot, admitting the next waiter."""
        if req in self._users:
            self._users.remove(req)
        elif req in self._waiting:
            # Released before being granted (e.g. on interrupt): just drop.
            self._waiting.remove(req)
            return
        else:
            raise SimulationError("release() of a request not held")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(FifoResource):
    """A resource whose queue is ordered by a numeric priority (low first).

    Ties are served in request order.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._waiting: list = []  # heap of (priority, seq, req)
        self._seq = 0

    def request(self, priority: float = 0.0) -> _Request:  # type: ignore[override]
        req = _Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, (priority, self._seq, req))
            self._seq += 1
        return req

    def release(self, req: _Request) -> None:  # type: ignore[override]
        if req in self._users:
            self._users.remove(req)
        else:
            for i, (_, _, waiting) in enumerate(self._waiting):
                if waiting is req:
                    del self._waiting[i]
                    heapq.heapify(self._waiting)
                    return
            raise SimulationError("release() of a request not held")
        while self._waiting and len(self._users) < self.capacity:
            _, _, nxt = heapq.heappop(self._waiting)
            self._users.add(nxt)
            nxt.succeed(nxt)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    next item, preserving both item order and getter order.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:  # cancelled getter
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def cancel(self, get_event: Event) -> None:
        """Abandon a pending ``get`` (e.g. when its process is interrupted).

        The event is removed from the waiter queue and left untriggered;
        items will no longer be routed to it.
        """
        try:
            self._getters.remove(get_event)
        except ValueError:
            pass

    def peek_all(self) -> list:
        """Snapshot of queued items (for inspection in tests)."""
        return list(self._items)
