"""Topology-island sharding: independent simulation worlds on worker
processes.

Two sessions can only influence each other through shared simulated
resources — a common link, a common host, a shared image server.  A
clone storm of N independent sites therefore decomposes into N
*islands* whose event schedules never interact, and each island can
run in its own :class:`~repro.sim.engine.Environment` on its own
worker process.  Simulated results stay exactly what a single serial
environment would produce (an island's schedule is self-contained),
and wall-clock scales with cores.

Two pieces:

* :func:`partition_islands` — union-find over the resource names each
  session touches, yielding deterministic groups of session indices;
* :func:`run_islands` — run one worker callable per island on a
  ``multiprocessing`` fork pool and merge results in island order, so
  the merged output is independent of worker scheduling.  Falls back
  to in-process serial execution when only one process is requested
  (or available), with identical results.

Workers must be module-level callables taking and returning picklable
values; each worker builds its *own* environment/testbed from its spec
— environments are never shipped across the process boundary.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["partition_islands", "run_islands"]

_A = TypeVar("_A")
_R = TypeVar("_R")


def partition_islands(members: Sequence[Iterable[Hashable]]) -> List[List[int]]:
    """Group member indices whose resource sets transitively overlap.

    ``members[i]`` is the collection of resource names (host names,
    link names) member ``i`` touches.  Two members sharing any
    resource land in the same island, transitively.  The returned
    groups are deterministic: ordered by their smallest member index,
    indices ascending within each group.  A member with an empty
    resource set forms its own island.
    """
    parent: Dict[Hashable, Hashable] = {}

    def find(x: Hashable) -> Hashable:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:        # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: Hashable, b: Hashable) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for index, resources in enumerate(members):
        node = ("member", index)
        parent[node] = node
        for res in resources:
            key = ("resource", res)
            if key not in parent:
                parent[key] = key
            union(node, key)

    groups: Dict[Hashable, List[int]] = {}
    for index in range(len(members)):
        groups.setdefault(find(("member", index)), []).append(index)
    return sorted(groups.values(), key=lambda g: g[0])


def run_islands(worker: Callable[[_A], _R], args_list: Sequence[_A],
                processes: Optional[int] = None,
                mp_context: str = "fork") -> List[_R]:
    """Run ``worker(args)`` for every entry and merge deterministically.

    The result list is ordered like ``args_list`` (``Pool.map``
    semantics), never by completion order, so a sharded run merges to
    the same output as a serial one.  ``processes=None`` sizes the
    pool to ``min(len(args_list), cpu_count)``; a pool of one — or an
    interpreter without working ``multiprocessing`` — degrades to
    plain in-process iteration with identical results.
    """
    n = len(args_list)
    if processes is None:
        processes = min(n, os.cpu_count() or 1)
    if n == 0:
        return []
    if processes <= 1 or n == 1:
        return [worker(args) for args in args_list]
    try:
        import multiprocessing
        ctx = multiprocessing.get_context(mp_context)
        with ctx.Pool(processes=min(processes, n)) as pool:
            return pool.map(worker, args_list)
    except (ImportError, OSError, ValueError):
        # No usable worker pool (restricted sandbox, missing fork):
        # the serial path computes the same merged result.
        return [worker(args) for args in args_list]
