"""Discrete-event simulation kernel.

Every timed component in the reproduction (network links, disks, NFS
endpoints, GVFS proxies, VM monitors) runs as a generator-based *process*
on a shared :class:`~repro.sim.engine.Environment`.  Simulated time is a
float of seconds advanced by a deterministic event queue, so every
experiment is exactly reproducible and independent of wall-clock speed.

Public API::

    env = Environment()
    def worker(env):
        yield env.timeout(1.5)
        return "done"
    proc = env.process(worker(env))
    env.run()
    assert env.now == 1.5 and proc.value == "done"
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import FifoResource, PriorityResource, Store
from repro.sim.shard import partition_islands, run_islands

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FifoResource",
    "Interrupt",
    "PriorityResource",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
    "partition_islands",
    "run_islands",
]
