"""Generator-based discrete-event simulation engine.

The design follows the classic event-queue/process-coroutine structure
(cf. SimPy) but is self-contained and minimal: an :class:`Environment`
owns a heap of ``(time, seq, event)`` entries; a :class:`Process` wraps a
generator that *yields* events and is resumed with the value of each
event when it fires.

Determinism: ties in time are broken by a monotonically increasing
sequence number, so two runs of the same model produce identical
schedules.  Nothing in the engine reads the wall clock.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount as _getrefcount
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for illegal engine operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet set" from a legitimate ``None`` value.
_PENDING = object()

#: Upper bound on the per-environment Timeout free list.  Recycling
#: only pays while the pool fits comfortably in cache; past this the
#: allocator is no slower and the memory is better spent elsewhere.
_TIMEOUT_POOL_MAX = 4096


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (``succeed``/``fail`` called, scheduled on the queue) and *processed*
    (callbacks have run).  Waiting processes are resumed with the event's
    value, or have its exception thrown into them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (waiters resumed)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    Construction is the single hottest allocation in the simulator (one
    per timed hop of every process), so it writes the event fields and
    schedules itself inline instead of chaining through
    ``Event.__init__`` and ``Environment._schedule``.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._processed = False
        self.delay = delay
        if delay == 0.0:
            env._immediate.append((env._seq, self))
        else:
            heapq.heappush(env._queue, (env._now + delay, env._seq, self))
        env._seq += 1


class Process(Event):
    """A running generator; itself an event that fires when it returns.

    The generator *yields* :class:`Event` instances.  When a yielded
    event succeeds the generator is resumed with ``event.value``; when it
    fails, the exception is thrown into the generator (so models can use
    ordinary ``try/except``).  The generator's ``return`` value becomes
    the process's event value.
    """

    __slots__ = ("_generator", "_waiting_on", "name", "_failure_observed")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._failure_observed = False
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the process at the current simulation instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is abandoned (its callback
        unregistered); the process decides how to recover.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        carrier = Event(self.env)
        carrier.callbacks.append(self._resume)
        carrier.fail(Interrupt(cause))

    # -- internals ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(
                    event._value if event._value is not _PENDING else None)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")
            # Throw back into the generator so the traceback points home.
            carrier = Event(self.env)
            carrier.callbacks.append(self._resume)
            carrier.fail(err)
            return
        if target.callbacks is None:
            # Already processed: resume immediately with its settled value.
            if isinstance(target, Process):
                target._failure_observed = True
            carrier = Event(self.env)
            carrier.callbacks.append(self._resume)
            if target._ok:
                carrier.succeed(target._value)
            else:
                carrier.fail(target._value)
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)
        if isinstance(target, Process):
            # Someone is waiting on that process; its failure, if any,
            # will be delivered rather than lost.
            target._failure_observed = True


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if isinstance(ev, Process):
                ev._failure_observed = True
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> list:
        return [ev._value for ev in self.events if ev.triggered and ev._ok]

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value is all values.

    If any constituent fails, the condition fails with that exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires as soon as one constituent fires; value is that event's value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(event._value)


class Environment:
    """Holds simulated time and the pending-event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        # Zero-delay events (gate releases, resource grants, process
        # completions) outnumber timed ones in RPC-heavy models; they
        # bypass the heap through this FIFO of ``(seq, event)`` pairs.
        # Every entry fires at the current instant, and the global
        # ``_seq`` totally orders same-time events across both queues,
        # so the schedule is identical to an all-heap engine.
        self._immediate: deque = deque()
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Free list of fired Timeout objects eligible for reuse (only
        # ones provably unreferenced by model code; see run()).
        self._timeout_pool: list = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events scheduled so far (wall-clock perf metric)."""
        return self._seq

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now.

        Timeout construction is the hottest allocation in the simulator
        (one per timed hop of every process), so fired timeouts that no
        model code still references are recycled through a free list
        (see the pool check in :meth:`run`) instead of round-tripping
        the allocator.  Pooling never changes the schedule: a recycled
        timeout consumes a fresh sequence number exactly like a new one.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay!r}")
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._processed = False
            t.delay = delay
            if delay == 0.0:
                self._immediate.append((self._seq, t))
            else:
                heapq.heappush(self._queue, (self._now + delay, self._seq, t))
            self._seq += 1
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        if delay == 0.0:
            self._immediate.append((self._seq, event))
        else:
            heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def _next_event(self) -> Event:
        """Pop the globally next event (lowest ``(time, seq)``) and
        advance the clock to it."""
        immediate = self._immediate
        queue = self._queue
        if immediate:
            # Heap events at the current instant may predate (lower
            # seq) the oldest immediate event; everything later-timed
            # loses to the immediate queue.
            if queue:
                when, seq, event = queue[0]
                if when <= self._now and seq < immediate[0][0]:
                    heapq.heappop(queue)
                    return event
            return immediate.popleft()[1]
        when, _, event = heapq.heappop(queue)
        self._now = when
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        if self._immediate:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue and not self._immediate:
            raise SimulationError("step() on empty queue")
        self._next_event()._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        Unhandled process failures propagate out of ``run`` so broken
        models fail loudly rather than silently losing work.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        immediate = self._immediate
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        while immediate or queue:
            if immediate:
                # No local may keep a reference to the peeked heap
                # entry across iterations: a stale binding would
                # inflate the refcount check below and disable pooling.
                if (queue and queue[0][0] <= self._now
                        and queue[0][1] < immediate[0][0]):
                    event = pop(queue)[2]
                else:
                    event = immediate.popleft()[1]
            else:
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                self._now = when
                event = pop(queue)[2]
            # Inlined Event._run_callbacks: this dispatch runs once per
            # event processed, so the attribute traffic of a method call
            # is measurable at fleet scale.
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            for cb in callbacks:
                cb(event)
            if type(event) is Timeout:
                # Recycle the timeout if nothing outside this frame
                # still references it (refcount 2 = the local + the
                # getrefcount argument).  A timeout a process kept, or
                # one held by an AllOf/AnyOf ``events`` list, stays out
                # of the pool automatically.
                if len(pool) < _TIMEOUT_POOL_MAX and _getrefcount(event) == 2:
                    pool.append(event)
            elif (not event._ok and isinstance(event, Process)
                    and not event._failure_observed):
                # A failed process nobody was waiting on: a model bug.
                # Fail loudly instead of silently losing the exception.
                raise event._value
        if until is not None:
            self._now = until
