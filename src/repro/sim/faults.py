"""Deterministic fault injection for the simulation testbed.

Running VMs over a WAN means "the server is unreachable" is a normal
operating condition, not an exception.  This module schedules failures
— link outages and flaps, server crash/restart, proxy crash/recovery —
as ordinary simulation events so every fault scenario is exactly
replayable: the same :class:`FaultPlan` (or the same seed) produces the
same failure timeline and therefore the same recovery timeline.

A :class:`FaultPlan` is pure data (a sorted list of
:class:`FaultEvent`); a :class:`FaultInjector` binds target names to
live objects (links, servers, proxies) and executes a plan as a
background process, recording everything it did in ``timeline`` for
replay comparison.

Targets are duck-typed per event kind:

* ``LINK_DOWN`` / ``LINK_UP`` — objects with ``fail()``/``restore()``
  (a :class:`~repro.net.link.Link`, or an iterable of them such as a
  ``duplex`` pair: both directions fail together, like a cut cable).
* ``SERVER_CRASH`` / ``SERVER_RESTART`` — objects with
  ``crash()``/``restart()`` (:class:`~repro.nfs.server.NfsServer`).
* ``PROXY_CRASH`` / ``PROXY_RESTART`` — objects with ``crash()`` and a
  ``recover()`` *process* (:class:`~repro.core.proxy.GvfsProxy`);
  restart runs the recovery process to completion, so the time a
  journal replay takes shows up on the timeline.
* the **layer-scoped** kinds (``CORRUPT_FRAME``, ``STALL_UPLOADS`` /
  ``RESUME_UPLOADS``, ``DROP_UPLOAD``, ``BLACKHOLE_PROC`` /
  ``RESTORE_PROC``, ``DELAY_PROC``, ``DUPLICATE_PROC``) — objects with
  an ``inject_fault(kind, arg)`` fault port
  (:class:`~repro.core.layers.base.ProxyLayer`; see
  :mod:`repro.sim.chaos` for targeting helpers).  These strike one
  named layer of one named proxy stack — a cached frame corrupted in
  place, an upload stalled, a single RPC procedure blackholed — so a
  chaos sweep can assert the degradation stays layer-local.

Nothing here touches the happy path: a testbed with no injector
attached schedules zero extra events.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim.engine import Environment, Process

__all__ = ["FaultEvent", "FaultInjector", "FaultKind", "FaultPlan",
           "LAYER_KINDS"]


class FaultKind(enum.Enum):
    """What happens to a target at a scheduled instant."""

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    SERVER_CRASH = "server-crash"
    SERVER_RESTART = "server-restart"
    PROXY_CRASH = "proxy-crash"
    PROXY_RESTART = "proxy-restart"
    # Layer-scoped kinds, dispatched through the targeted object's
    # ``inject_fault(kind, arg)`` fault port:
    CORRUPT_FRAME = "corrupt-frame"         # block-cache: garble one frame
    STALL_UPLOADS = "stall-uploads"         # file-channel: park uploads
    RESUME_UPLOADS = "resume-uploads"       # file-channel: release them
    DROP_UPLOAD = "drop-upload"             # file-channel: lose next upload(s)
    BLACKHOLE_PROC = "blackhole-proc"       # swallow one RPC proc (arg=name)
    RESTORE_PROC = "restore-proc"           # clear that proc's faults
    DELAY_PROC = "delay-proc"               # arg=(proc name, seconds)
    DUPLICATE_PROC = "duplicate-proc"       # deliver that proc twice


#: Kinds executed through a target's ``inject_fault`` port rather than
#: the coarse crash/restore protocols.
LAYER_KINDS = frozenset({
    FaultKind.CORRUPT_FRAME, FaultKind.STALL_UPLOADS,
    FaultKind.RESUME_UPLOADS, FaultKind.DROP_UPLOAD,
    FaultKind.BLACKHOLE_PROC, FaultKind.RESTORE_PROC,
    FaultKind.DELAY_PROC, FaultKind.DUPLICATE_PROC,
})

#: Kind pairs that undo each other (used by the flap/outage builders).
_REPAIR_OF = {
    FaultKind.LINK_DOWN: FaultKind.LINK_UP,
    FaultKind.SERVER_CRASH: FaultKind.SERVER_RESTART,
    FaultKind.PROXY_CRASH: FaultKind.PROXY_RESTART,
    FaultKind.STALL_UPLOADS: FaultKind.RESUME_UPLOADS,
    FaultKind.BLACKHOLE_PROC: FaultKind.RESTORE_PROC,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure or repair.

    ``arg`` parameterizes the layer-scoped kinds (which frame to
    corrupt, which RPC proc to blackhole, how long to delay); it must
    be plain hashable data so plans stay comparable value objects.
    """

    at: float
    kind: FaultKind
    target: str
    arg: object = None

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault scheduled in the past: {self.at}")


class FaultPlan:
    """An ordered, replayable schedule of fault events.

    Plans are immutable-by-convention value objects: builders return new
    plans, and two plans built from the same arguments (or the same
    seed) compare equal and replay identically.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        # Stable sort: ties in time keep insertion order, so a plan's
        # execution order is fully determined by its construction.
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {len(self.events)} event(s)>"

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan combining this plan's events with ``other``'s."""
        return FaultPlan([*self.events, *other.events])

    # -- builders ----------------------------------------------------------
    @classmethod
    def outage(cls, kind: FaultKind, target: str, at: float,
               down_for: float, arg: object = None) -> "FaultPlan":
        """One failure at ``at`` repaired ``down_for`` seconds later.

        ``arg`` rides on both the failure and the repair event, so a
        blackholed RPC proc is restored by name and a stalled upload
        gate is released with the same parameters it was armed with.
        """
        if down_for <= 0:
            raise ValueError(f"down_for must be positive: {down_for}")
        repair = _REPAIR_OF.get(kind)
        if repair is None:
            raise ValueError(f"{kind} is a repair, not a failure")
        return cls([FaultEvent(at, kind, target, arg),
                    FaultEvent(at + down_for, repair, target, arg)])

    @classmethod
    def link_flap(cls, target: str, first_down: float, down_for: float,
                  flaps: int = 1, period: Optional[float] = None
                  ) -> "FaultPlan":
        """``flaps`` outages of ``down_for`` seconds, ``period`` apart."""
        if flaps < 1:
            raise ValueError("flaps must be >= 1")
        period = period if period is not None else 2 * down_for
        if period <= down_for:
            raise ValueError("period must exceed down_for")
        events: List[FaultEvent] = []
        for i in range(flaps):
            at = first_down + i * period
            events.append(FaultEvent(at, FaultKind.LINK_DOWN, target))
            events.append(FaultEvent(at + down_for, FaultKind.LINK_UP, target))
        return cls(events)

    @classmethod
    def server_outage(cls, target: str, at: float,
                      down_for: float) -> "FaultPlan":
        return cls.outage(FaultKind.SERVER_CRASH, target, at, down_for)

    @classmethod
    def server_crash(cls, target: str, at: float) -> "FaultPlan":
        """A permanent server crash with no scheduled restart.

        The farm's retirement path: a crashed data server is retracted
        from the placement map and re-replicated around, never rejoined
        — unlike :meth:`server_outage`, which repairs the same server.
        """
        return cls([FaultEvent(at, FaultKind.SERVER_CRASH, target)])

    @classmethod
    def proxy_restart(cls, target: str, at: float,
                      down_for: float) -> "FaultPlan":
        return cls.outage(FaultKind.PROXY_CRASH, target, at, down_for)

    @classmethod
    def seeded_flaps(cls, target: str, seed: int, horizon: float,
                     mean_up: float, mean_down: float,
                     start_after: float = 0.0) -> "FaultPlan":
        """Random link flaps drawn from a seeded generator.

        Up/down durations are exponentially distributed with the given
        means; the same ``seed`` always produces the same plan, so a
        "random" WAN-weather scenario replays bit-identically.
        """
        if horizon <= 0 or mean_up <= 0 or mean_down <= 0:
            raise ValueError("horizon and means must be positive")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        t = start_after + rng.expovariate(1.0 / mean_up)
        while t < horizon:
            down = rng.expovariate(1.0 / mean_down)
            events.append(FaultEvent(t, FaultKind.LINK_DOWN, target))
            events.append(FaultEvent(min(t + down, horizon),
                                     FaultKind.LINK_UP, target))
            t += down + rng.expovariate(1.0 / mean_up)
        return cls(events)


class FaultInjector:
    """Executes fault plans against attached targets, keeping a replay
    log.

    ``timeline`` records ``(time, kind, target)`` for every executed
    event — comparing two runs' timelines (and their workload metrics)
    is the determinism check the fault scenarios are tested with.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._targets: Dict[str, object] = {}
        self.timeline: List[Tuple[float, str, str]] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, name: str, target: object) -> None:
        """Bind ``name`` (as used in plans) to a live object.

        ``target`` may be a single object or an iterable (e.g. a duplex
        link pair) — iterables are acted on element-wise.
        """
        if name in self._targets:
            raise ValueError(f"target {name!r} already attached")
        self._targets[name] = target

    def _resolve(self, name: str) -> List[object]:
        try:
            target = self._targets[name]
        except KeyError:
            raise KeyError(f"no fault target attached as {name!r}") from None
        if isinstance(target, (list, tuple)):
            return list(target)
        return [target]

    # -- execution ---------------------------------------------------------
    def schedule(self, plan: FaultPlan) -> Process:
        """Start a background process executing ``plan``'s events."""
        for event in plan.events:
            self._resolve(event.target)   # fail fast on unknown targets
        return self.env.process(self._run(plan), name="fault-injector")

    def _run(self, plan: FaultPlan) -> Generator:
        for event in plan.events:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            yield from self._execute(event)

    def _execute(self, event: FaultEvent) -> Generator:
        kind = event.kind
        for obj in self._resolve(event.target):
            if kind is FaultKind.LINK_DOWN:
                obj.fail()
            elif kind is FaultKind.LINK_UP:
                obj.restore()
            elif kind is FaultKind.SERVER_CRASH:
                obj.crash()
            elif kind is FaultKind.SERVER_RESTART:
                obj.restart()
            elif kind is FaultKind.PROXY_CRASH:
                obj.crash()
            elif kind is FaultKind.PROXY_RESTART:
                # Recovery is a timed process (journal replay reads the
                # proxy host's disk); it runs to completion here so its
                # cost lands on the timeline.
                yield self.env.process(obj.recover())
            elif kind in LAYER_KINDS:
                obj.inject_fault(kind.value, event.arg)
            else:  # pragma: no cover - enum is closed
                raise ValueError(f"unknown fault kind {kind}")
        self.timeline.append((self.env.now, kind.value, event.target))
        yield self.env.timeout(0)
