"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``bench <target>``
    Regenerate one of the paper's figures/tables and print its table.
    Targets: ``fig3`` ``fig4`` ``fig5`` ``fig6`` ``table1`` ``zero``
    ``pipelined`` ``all``.  ``--readahead-depth`` /
    ``--write-coalesce-bytes`` / ``--write-pipeline-depth`` retune the
    proxies' pipelined I/O for any target.
``perf``
    Measure wall-clock simulator throughput (events/sec, blocks/sec)
    on fixed workloads and assert simulated-time invariance against
    golden timings.  ``--out BENCH_pr2.json`` archives the numbers;
    ``--baseline`` computes speedups against an earlier archive.
``faultbench``
    Run the fault-injection scenarios (WAN blips, server crash
    mid-flush, proxy restart with/without the dirty-frame journal) and
    check the recovery guarantees: zero lost writes with the journal,
    deterministic replay for a fixed seed.  ``--out
    results/BENCH_pr3.json`` archives the metrics; exit code 1 when a
    guarantee is violated (the CI fault-smoke gate).
``chaosbench``
    Run the layer-targeted chaos sweep: >= 24 seeded (layer x fault x
    workload) cells on a cascade-with-peers rig, asserting zero
    corrupted bytes served (the checksum layer catches and repairs
    injected corruption), zero lost acknowledged writes, a layer-local
    blast radius and bounded recovery — plus the checksum-off negative
    control and the bit-identical happy-path timing check.  ``--out
    results/BENCH_pr8.json`` archives the sweep; exit code 1 when a
    guarantee is violated (the CI chaos-smoke gate).
``cascadebench``
    Sweep proxy-cache cascade depth (1-4) and eviction policy
    (lru/lfu/2q) over cold-clone and kernel-compile workloads,
    recording per-level hit ratios, and check the cascade guarantees:
    every level serves hits, and depth-1/depth-2 cascades match the
    plain proxy / SecondLevelCache bit-identically on simulated time.
    ``--out results/BENCH_pr5.json`` archives the sweep; exit code 1
    when a guarantee is violated (the CI cascade-smoke gate).
``farmbench``
    Run the clone storm against the sharded image-server farm (1 vs 4
    vs 16 replicated data servers, with and without a mid-storm
    data-server crash) and check the farm guarantees: measurable storm
    speedup at 4 and 16 servers, zero lost acknowledged writes and
    observed failovers under the crash, bounded re-replication,
    deterministic placement, and bit-identical farm-disabled golden
    timings.  ``--out results/BENCH_pr9.json`` archives the report;
    exit code 1 when a guarantee is violated (the CI farm-smoke gate).
``info``
    Print the calibration constants shared by every experiment.
``report``
    Assemble the archived benchmark tables under ``results/`` into one
    reproduction report (exit code 1 while sections are missing).

The heavy lifting lives in :mod:`repro.experiments`; this is a thin
front end so a checkout is usable without pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict


def _bench_fig3() -> str:
    from repro.analysis.tables import format_figure3
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.workloads.specseis import SpecSeis
    results = {s.value: run_application_benchmark(s, SpecSeis, runs=1)
               for s in [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
                         Scenario.WAN_CACHED]}
    return format_figure3(results)


def _bench_fig4() -> str:
    from repro.analysis.tables import format_figure4
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.workloads.latex import LatexBenchmark
    results = {s.value: run_application_benchmark(s, LatexBenchmark, runs=1)
               for s in [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
                         Scenario.WAN_CACHED]}
    return format_figure4(results)


def _bench_fig5() -> str:
    from repro.analysis.tables import format_figure5
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.workloads.kernelcompile import KernelCompile
    results = {s.value: run_application_benchmark(s, KernelCompile, runs=2)
               for s in [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
                         Scenario.WAN_CACHED]}
    return format_figure5(results)


def _bench_fig6() -> str:
    from repro.analysis.tables import format_figure6
    from repro.experiments.clonebench import (CloneScenario,
                                              run_cloning_benchmark)
    results = {s.value: run_cloning_benchmark(s)
               for s in [CloneScenario.LOCAL, CloneScenario.WAN_S1,
                         CloneScenario.WAN_S2, CloneScenario.WAN_S3]}
    return format_figure6(results)


def _bench_table1() -> str:
    from repro.analysis.tables import format_table1
    from repro.experiments.clonebench import (CloneScenario,
                                              run_cloning_benchmark,
                                              run_parallel_cloning)
    seq_cold = run_cloning_benchmark(CloneScenario.WAN_S1,
                                     cold_between=True).total_seconds
    seq_warm = run_cloning_benchmark(CloneScenario.WAN_S1,
                                     warm=True).total_seconds
    par_cold = run_parallel_cloning().total_seconds
    par_warm = run_parallel_cloning(warm=True).total_seconds
    return format_table1(seq_cold, seq_warm, par_cold, par_warm)


def _bench_zero() -> str:
    from repro.core.metadata import generate_metadata
    from repro.core.session import GvfsSession, Scenario, ServerEndpoint
    from repro.net.topology import make_paper_testbed
    from repro.vm.image import VmConfig, VmImage
    from repro.vm.monitor import VmMonitor
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    VmImage.create(endpoint.export.fs, "/images/postboot",
                   VmConfig(name="postboot", memory_mb=512, disk_gb=0.25,
                            persistent=True, seed=73), zero_fraction=0.92)
    generate_metadata(endpoint.export.fs, "/images/postboot/mem.vmss",
                      actions=[])
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint)
    monitor = VmMonitor(testbed.env, testbed.compute[0])

    def driver(env):
        yield env.process(monitor.resume(session.mount, "/images/postboot"))

    testbed.env.process(driver(testbed.env))
    testbed.env.run()
    stats = session.client_proxy.stats
    reads = session.mount.rpc.stats.by_proc.get("READ", 0)
    return (f"512 MB post-boot resume: {reads} NFS reads issued, "
            f"{stats.zero_filtered_reads} filtered as zero-filled "
            f"({stats.zero_filtered_reads / (512 * 128):.1%}; "
            f"paper: 60,452 of 65,750 ≈ 92%)")


def _bench_pipelined() -> str:
    from repro.core.config import pipeline_overrides
    from repro.experiments.pipelinedbench import (format_pipelined_io,
                                                  run_flush_comparison,
                                                  run_read_sweep)
    # The sweep and flush comparison set their own knobs per point, so
    # the process-wide overrides are folded in explicitly: an overridden
    # readahead depth joins the sweep, write knobs retune the flush.
    overrides = pipeline_overrides()
    depths = sorted({0, 1, 4, 8, 16} | {overrides.get("readahead_depth", 8)})
    flush = run_flush_comparison(
        coalesce_bytes=overrides.get("write_coalesce_bytes", 64 * 1024),
        pipeline_depth=overrides.get("write_pipeline_depth", 4))
    return format_pipelined_io(run_read_sweep(depths=depths), flush)


BENCH_TARGETS: Dict[str, Callable[[], str]] = {
    "fig3": _bench_fig3,
    "fig4": _bench_fig4,
    "fig5": _bench_fig5,
    "fig6": _bench_fig6,
    "table1": _bench_table1,
    "zero": _bench_zero,
    "pipelined": _bench_pipelined,
}


def _cmd_bench(args) -> int:
    from repro.core.config import (ProxyConfig, pipeline_overrides,
                                   set_pipeline_overrides)
    try:
        set_pipeline_overrides(
            readahead_depth=args.readahead_depth,
            write_coalesce_bytes=args.write_coalesce_bytes,
            write_pipeline_depth=args.write_pipeline_depth)
        ProxyConfig(**pipeline_overrides())   # fail fast on bad values
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = (list(BENCH_TARGETS) if args.target == "all"
               else [args.target])
    for target in targets:
        start = time.time()
        table = BENCH_TARGETS[target]()
        print(table)
        print(f"[{target}: regenerated in {time.time() - start:.0f}s "
              "wall clock]\n")
    return 0


def _cmd_perf(args) -> int:
    from repro.experiments import perf
    names = (args.workloads.split(",") if args.workloads
             else list(perf.WORKLOADS))
    unknown = [n for n in names if n not in perf.WORKLOADS]
    if unknown:
        print(f"error: unknown workload(s) {unknown}; "
              f"choose from {sorted(perf.WORKLOADS)}", file=sys.stderr)
        return 2
    golden_path = args.golden or perf.GOLDEN_PATH
    report = perf.run_harness(names, quick=args.quick,
                              golden_path=None if args.update_golden
                              else golden_path,
                              baseline_path=args.baseline)
    if args.update_golden:
        perf.save_golden(
            {perf._golden_key(n, args.quick): s.sim_signature
             for n, s in report.samples.items()}, golden_path)
        print(f"[golden timings updated in {golden_path}]")
    print(perf.format_report(report))
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    if report.golden_ok is False:
        print("error: simulated-time results drifted from golden timings "
              "(a perf change must be timing-neutral)", file=sys.stderr)
        return 1
    if args.max_slowdown:
        slow = [f"{name}: {1 / spd:.2f}x slower than baseline"
                for name, spd in report.speedup.items()
                if spd < 1.0 / args.max_slowdown]
        if slow:
            print("error: wall-clock regression beyond "
                  f"{args.max_slowdown:g}x:\n  " + "\n  ".join(slow),
                  file=sys.stderr)
            return 1
    return 0


def _cmd_faultbench(args) -> int:
    from repro.experiments import faultbench
    names = args.scenario.split(",") if args.scenario else None
    try:
        report = faultbench.run_faultbench(scenarios=names, quick=args.quick,
                                           seed=args.seed,
                                           link_mode=args.link_mode)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(faultbench.format_report(report))
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    failures = faultbench.check_report(report)
    if failures:
        print("error: recovery guarantees violated:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_chaosbench(args) -> int:
    from repro.experiments import chaosbench
    try:
        report = chaosbench.run_chaosbench(quick=args.quick, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(chaosbench.format_report(report))
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    failures = chaosbench.check_report(report)
    if failures:
        print("error: chaos guarantees violated:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_coopbench(args) -> int:
    from repro.experiments import coopbench
    try:
        report = coopbench.run_coopbench(
            modes=args.modes.split(",") if args.modes else None,
            depths=[int(d) for d in args.depths.split(",")]
            if args.depths else None,
            peers=[int(p) for p in args.peers.split(",")]
            if args.peers else None,
            quick=args.quick)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(coopbench.format_report(report))
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    failures = coopbench.check_report(report)
    if failures:
        print("error: cooperative-caching guarantees violated:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_cascadebench(args) -> int:
    from repro.experiments import cascadebench
    try:
        report = cascadebench.run_cascadebench(
            depths=[int(d) for d in args.depths.split(",")]
            if args.depths else None,
            policies=args.policies.split(",") if args.policies else None,
            workloads=args.workloads.split(",") if args.workloads else None,
            quick=args.quick)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(cascadebench.format_report(report))
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    failures = cascadebench.check_report(report)
    if failures:
        print("error: cascade guarantees violated:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_fleetbench(args) -> int:
    from repro.experiments import fleetbench
    try:
        report = fleetbench.run_fleetbench(
            quick=args.quick,
            sessions=args.sessions,
            sites=args.sites,
            modes=args.modes.split(",") if args.modes else None,
            processes=args.processes,
            telemetry=args.fleet_report)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(fleetbench.format_report(report))
    if args.fleet_report:
        for mode, storm in report["storm"].items():
            for site in storm["per_site"]:
                text = site.get("fleet_report")
                if text:
                    print(f"\n[{mode} storm, site {site['site']}]")
                    print(text)
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    baseline = None
    if args.baseline:
        import json
        with open(args.baseline) as f:
            baseline = json.load(f)
    failures = fleetbench.check_report(report, baseline=baseline)
    if failures:
        print("error: fleet guarantees violated:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_farmbench(args) -> int:
    from repro.experiments import farmbench
    try:
        cells = None
        if args.cells:
            cells = []
            for spec in args.cells.split(","):
                crash = spec.endswith("+crash")
                cells.append((int(spec.removesuffix("+crash")), crash))
        report = farmbench.run_farmbench(quick=args.quick,
                                         sessions=args.sessions,
                                         cells=cells, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(farmbench.format_report(report))
    if args.out:
        import json
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[written to {args.out}]")
    baseline = None
    if args.baseline:
        import json
        with open(args.baseline) as f:
            baseline = json.load(f)
    failures = farmbench.check_report(report, baseline=baseline)
    if failures:
        print("error: farm guarantees violated:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import assemble_report
    report = assemble_report(args.results_dir)
    print(report.text)
    if report.missing:
        print(f"[{len(report.missing)} section(s) missing — run "
              "`pytest benchmarks/ --benchmark-only` first]")
        return 1
    return 0


def _cmd_info(args) -> int:
    from repro.net.compress import GZIP
    from repro.net.topology import LAN_2003, WAN_2003
    from repro.nfs.protocol import NFS_BLOCK_SIZE
    from repro.net.ssh import DEFAULT_TCP_WINDOW
    from repro.storage.disk import SCSI_2003
    print("Calibration constants (shared by every experiment):")
    print(f"  LAN: {LAN_2003.latency * 1e3:.1f} ms one-way, "
          f"{LAN_2003.bandwidth / 1.25e5:.0f} Mbit/s")
    print(f"  WAN: {WAN_2003.latency * 1e3:.1f} ms one-way "
          f"(~{2 * WAN_2003.latency * 1e3:.0f} ms RTT), "
          f"{WAN_2003.bandwidth / 1.25e5:.0f} Mbit/s raw")
    print(f"  TCP window: {DEFAULT_TCP_WINDOW // 1024} KiB "
          f"(~{DEFAULT_TCP_WINDOW / (2 * WAN_2003.latency) / 1e6:.1f} MB/s "
          "per WAN stream)")
    print(f"  NFS rsize/wsize: {NFS_BLOCK_SIZE // 1024} KB")
    print(f"  disk: {SCSI_2003.positioning * 1e3:.1f} ms positioning, "
          f"{SCSI_2003.bandwidth / 1e6:.0f} MB/s")
    print(f"  gzip: {GZIP.compress_bps / 1e6:.1f} MB/s compress, "
          f"{GZIP.decompress_bps / 1e6:.0f} MB/s decompress")
    return 0


def _add_stack_report_flag(sub) -> None:
    sub.add_argument("--stack-report", action="store_true",
                     help="print the per-layer proxy stack stats report "
                          "after the run (one block per proxy that saw "
                          "traffic)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Distributed File System Support for "
                    "Virtual Machines in Grid Computing' (HPDC 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="regenerate a figure/table")
    bench.add_argument("target", choices=[*BENCH_TARGETS, "all"])
    bench.add_argument("--readahead-depth", type=int, default=None,
                       metavar="N",
                       help="override proxy sequential-readahead depth "
                            "(blocks fetched ahead; 0 disables)")
    bench.add_argument("--write-coalesce-bytes", type=int, default=None,
                       metavar="B",
                       help="override max bytes merged into one upstream "
                            "WRITE during proxy flush (0 = per-block)")
    bench.add_argument("--write-pipeline-depth", type=int, default=None,
                       metavar="W",
                       help="override concurrent upstream WRITEs during "
                            "proxy flush")
    _add_stack_report_flag(bench)
    bench.set_defaults(func=_cmd_bench)

    perf = sub.add_parser(
        "perf",
        help="measure wall-clock simulator throughput (events/s, "
             "blocks/s) on fixed workloads and check simulated-time "
             "invariance against golden timings")
    perf.add_argument("--workloads", default=None, metavar="W1,W2",
                      help="comma-separated workload names "
                           "(default: all; see docs/performance.md)")
    perf.add_argument("--out", default=None, metavar="FILE",
                      help="write the measurements as JSON "
                           "(e.g. BENCH_pr2.json)")
    perf.add_argument("--baseline", default=None, metavar="FILE",
                      help="earlier BENCH_*.json to compute speedups "
                           "against")
    perf.add_argument("--golden", default=None, metavar="FILE",
                      help="golden simulated-time signatures "
                           "(default: benchmarks/golden_timings.json)")
    perf.add_argument("--update-golden", action="store_true",
                      help="record current simulated times as golden "
                           "instead of checking them")
    perf.add_argument("--quick", action="store_true",
                      help="shrunken workloads (CI smoke scale)")
    perf.add_argument("--max-slowdown", type=float, default=None,
                      metavar="X",
                      help="fail (exit 1) when any workload's wall clock "
                           "regresses more than X times vs --baseline "
                           "(CI gate; baseline scale must match)")
    _add_stack_report_flag(perf)
    perf.set_defaults(func=_cmd_perf)

    fault = sub.add_parser(
        "faultbench",
        help="run fault-injection scenarios and check recovery "
             "guarantees (zero lost writes with the journal, "
             "deterministic replay)")
    fault.add_argument("--scenario", default=None, metavar="S1,S2",
                       help="comma-separated scenario names (default: all; "
                            "wan_blip, server_crash, proxy_restart)")
    fault.add_argument("--seed", type=int, default=11, metavar="N",
                       help="fault-plan seed (same seed => same timeline)")
    fault.add_argument("--quick", action="store_true",
                       help="shrunken workloads (CI smoke scale)")
    fault.add_argument("--link-mode", default="exact",
                       choices=["exact", "fluid"],
                       help="link transmit model; fluid links fall back "
                            "to the exact path on their first outage, so "
                            "fault injection composes with the fast path")
    fault.add_argument("--out", default=None, metavar="FILE",
                       help="write the metrics as JSON "
                            "(e.g. results/BENCH_pr3.json)")
    _add_stack_report_flag(fault)
    fault.set_defaults(func=_cmd_faultbench)

    cascade = sub.add_parser(
        "cascadebench",
        help="sweep cache-cascade depth x eviction policy and check "
             "the cascade guarantees (every level serves hits; "
             "depth-1/2 match the plain proxy / SecondLevelCache "
             "bit-identically)")
    cascade.add_argument("--depths", default=None, metavar="D1,D2",
                         help="comma-separated cascade depths "
                              "(default: 1,2,3,4; depth counts the "
                              "client proxy)")
    cascade.add_argument("--policies", default=None, metavar="P1,P2",
                         help="comma-separated eviction policies "
                              "(default: lru,lfu,2q)")
    cascade.add_argument("--workloads", default=None, metavar="W1,W2",
                         help="comma-separated workloads (default: "
                              "cold_clone,kernel_compile)")
    cascade.add_argument("--quick", action="store_true",
                         help="shrunken workloads (CI smoke scale)")
    cascade.add_argument("--out", default=None, metavar="FILE",
                         help="write the sweep as JSON "
                              "(e.g. results/BENCH_pr5.json)")
    _add_stack_report_flag(cascade)
    cascade.set_defaults(func=_cmd_cascadebench)

    coop = sub.add_parser(
        "coopbench",
        help="sweep proxy organization (inclusive / exclusive-demotion "
             "/ cooperative peer caching) x cascade depth x peer count "
             "over a clone-storm + golden-rollout workload, plus the "
             "adaptive level-sizing probe; checks the PR-7 guarantees")
    coop.add_argument("--modes", default=None, metavar="M1,M2",
                      help="subset of modes "
                           "(inclusive,exclusive,cooperative)")
    coop.add_argument("--depths", default=None, metavar="D1,D2",
                      help="cascade depths to sweep (default 1,2,3)")
    coop.add_argument("--peers", default=None, metavar="N1,N2",
                      help="peer counts to sweep (default 1,2,4)")
    coop.add_argument("--quick", action="store_true",
                      help="CI-scale images and storms")
    coop.add_argument("--out", default=None, metavar="FILE",
                      help="write the sweep as JSON "
                           "(e.g. results/BENCH_pr7.json)")
    _add_stack_report_flag(coop)
    coop.set_defaults(func=_cmd_coopbench)

    chaos = sub.add_parser(
        "chaosbench",
        help="run the layer-targeted chaos sweep (corrupt frames, "
             "blackholed/delayed/duplicated RPC procs, stalled and "
             "dropped uploads) and check the integrity guarantees: "
             "zero corrupted bytes served, zero lost acknowledged "
             "writes, layer-local blast radius, bounded recovery, "
             "deterministic replay")
    chaos.add_argument("--seed", type=int, default=17, metavar="N",
                       help="sweep seed (same seed => same cells, same "
                            "timelines)")
    chaos.add_argument("--quick", action="store_true",
                       help="shrunken workloads (CI smoke scale)")
    chaos.add_argument("--out", default=None, metavar="FILE",
                       help="write the sweep as JSON "
                            "(e.g. results/BENCH_pr8.json)")
    _add_stack_report_flag(chaos)
    chaos.set_defaults(func=_cmd_chaosbench)

    fleet = sub.add_parser(
        "fleetbench",
        help="fleet-scale clone storm (engine microbench; exact vs "
             "fluid vs sharded storms; fluid-vs-exact accuracy on the "
             "fig3-fig6 workloads) and the fleet guarantees: "
             "microbench throughput floor, fluid drift within "
             "tolerance, deterministic sharded merging")
    fleet.add_argument("--sessions", type=int, default=None, metavar="N",
                       help="total sessions in the storm "
                            "(default: 1000, or 32 with --quick)")
    fleet.add_argument("--sites", type=int, default=None, metavar="S",
                       help="independent sites / topology islands "
                            "(default: 8, or 4 with --quick)")
    fleet.add_argument("--modes", default=None, metavar="M1,M2",
                       help="comma-separated storm modes "
                            "(default: exact,fluid,sharded)")
    fleet.add_argument("--processes", type=int, default=None, metavar="P",
                       help="worker processes for the sharded storm "
                            "(default: min(sites, cpu count))")
    fleet.add_argument("--fleet-report", action="store_true",
                       help="collect per-session cache-layer telemetry "
                            "via the session manager and print one "
                            "fleet report per site")
    fleet.add_argument("--quick", action="store_true",
                       help="shrunken storm and accuracy sweep "
                            "(CI smoke scale)")
    fleet.add_argument("--out", default=None, metavar="FILE",
                       help="write the report as JSON "
                            "(e.g. results/BENCH_pr6.json)")
    fleet.add_argument("--baseline", default=None, metavar="FILE",
                       help="earlier fleetbench JSON; fail on >20%% "
                            "microbench throughput regression")
    fleet.set_defaults(func=_cmd_fleetbench)

    farmp = sub.add_parser(
        "farmbench",
        help="clone storm against the sharded image-server farm "
             "(1 vs 4 vs 16 replicated data servers, with and without "
             "a mid-storm data-server crash) and the farm guarantees: "
             "storm speedup at 4 and 16 servers, zero lost "
             "acknowledged writes and observed failovers under the "
             "crash, bounded re-replication, deterministic placement, "
             "bit-identical farm-disabled golden timings")
    farmp.add_argument("--sessions", type=int, default=None, metavar="N",
                       help="sessions per storm cell "
                            "(default: 1000, or 48 with --quick)")
    farmp.add_argument("--cells", default=None, metavar="C1,C2",
                       help="comma-separated cells, each N or N+crash "
                            "(default: 1,4,16,4+crash,16+crash; quick: "
                            "1,4,4+crash)")
    farmp.add_argument("--seed", type=int, default=0, metavar="N",
                       help="placement seed (same seed => same map)")
    farmp.add_argument("--quick", action="store_true",
                       help="shrunken storm (CI smoke scale)")
    farmp.add_argument("--out", default=None, metavar="FILE",
                       help="write the report as JSON "
                            "(e.g. results/BENCH_pr9.json)")
    farmp.add_argument("--baseline", default=None, metavar="FILE",
                       help="earlier farmbench JSON; fail on >25%% "
                            "storm slowdown in any cell")
    farmp.set_defaults(func=_cmd_farmbench)

    info = sub.add_parser("info", help="print calibration constants")
    info.set_defaults(func=_cmd_info)

    report = sub.add_parser("report",
                            help="assemble the reproduction report from "
                                 "archived benchmark tables")
    report.add_argument("--results-dir", default="results")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "stack_report", False):
        from repro.core.layers import enable_stack_reports
        enable_stack_reports()
        try:
            rc = args.func(args)
            from repro.core.layers import (format_cascade_reports,
                                           format_stack_reports)
            text = format_stack_reports()
            if text:
                print("\nper-layer proxy stack reports\n" + text)
            cascades = format_cascade_reports()
            if cascades:
                print("\naggregated cascade reports\n" + cascades)
        finally:
            from repro.core.layers import disable_stack_reports
            disable_stack_reports()
        return rc
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
