"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``bench <target>``
    Regenerate one of the paper's figures/tables and print its table.
    Targets: ``fig3`` ``fig4`` ``fig5`` ``fig6`` ``table1`` ``zero``
    ``pipelined`` ``all``.  ``--readahead-depth`` /
    ``--write-coalesce-bytes`` / ``--write-pipeline-depth`` retune the
    proxies' pipelined I/O for any target.
``perf``
    Measure wall-clock simulator throughput (events/sec, blocks/sec)
    on fixed workloads and assert simulated-time invariance against
    golden timings.  ``--out BENCH_pr2.json`` archives the numbers;
    ``--baseline`` computes speedups against an earlier archive.
``faultbench``
    Run the fault-injection scenarios (WAN blips, server crash
    mid-flush, proxy restart with/without the dirty-frame journal) and
    check the recovery guarantees: zero lost writes with the journal,
    deterministic replay for a fixed seed.  ``--out
    results/BENCH_pr3.json`` archives the metrics; exit code 1 when a
    guarantee is violated (the CI fault-smoke gate).
``chaosbench``
    Run the layer-targeted chaos sweep: >= 24 seeded (layer x fault x
    workload) cells on a cascade-with-peers rig, asserting zero
    corrupted bytes served (the checksum layer catches and repairs
    injected corruption), zero lost acknowledged writes, a layer-local
    blast radius and bounded recovery — plus the checksum-off negative
    control and the bit-identical happy-path timing check.  ``--out
    results/BENCH_pr8.json`` archives the sweep; exit code 1 when a
    guarantee is violated (the CI chaos-smoke gate).
``cascadebench``
    Sweep proxy-cache cascade depth (1-4) and eviction policy
    (lru/lfu/2q) over cold-clone and kernel-compile workloads,
    recording per-level hit ratios, and check the cascade guarantees:
    every level serves hits, and depth-1/depth-2 cascades match the
    plain proxy / SecondLevelCache bit-identically on simulated time.
    ``--out results/BENCH_pr5.json`` archives the sweep; exit code 1
    when a guarantee is violated (the CI cascade-smoke gate).
``farmbench``
    Run the clone storm against the sharded image-server farm (1 vs 4
    vs 16 replicated data servers, with and without a mid-storm
    data-server crash) and check the farm guarantees: measurable storm
    speedup at 4 and 16 servers, zero lost acknowledged writes and
    observed failovers under the crash, bounded re-replication,
    deterministic placement, and bit-identical farm-disabled golden
    timings.  ``--out results/BENCH_pr9.json`` archives the report;
    exit code 1 when a guarantee is violated (the CI farm-smoke gate).
``scenario run/list/check``
    The declarative scenario engine (:mod:`repro.scenario`): ``run``
    executes one spec from ``scenarios/`` (or a path) end to end —
    topology, sessions, phases, faults, gates — and emits the unified
    ``BENCH_*.json`` envelope; ``--quick`` applies the spec's quick
    profile, ``--check`` turns failed gates into exit code 1 (the CI
    scenario-smoke matrix runs ``scenario run <spec> --quick
    --check``).  ``list`` prints the spec library; ``check`` validates
    a spec (including its quick profile) without running it.
``info``
    Print the calibration constants shared by every experiment.
``report``
    Assemble the archived benchmark tables under ``results/`` into one
    reproduction report (exit code 1 while sections are missing).

Every bench subcommand shares one gate discipline: the driver's
``check_report`` failures print to stderr and yield exit code 1;
malformed arguments yield exit code 2; a clean run exits 0.

The heavy lifting lives in :mod:`repro.experiments` and
:mod:`repro.scenario`; this is a thin front end so a checkout is
usable without pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict


def _bench_fig3() -> str:
    from repro.analysis.tables import format_figure3
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.workloads.specseis import SpecSeis
    results = {s.value: run_application_benchmark(s, SpecSeis, runs=1)
               for s in [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
                         Scenario.WAN_CACHED]}
    return format_figure3(results)


def _bench_fig4() -> str:
    from repro.analysis.tables import format_figure4
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.workloads.latex import LatexBenchmark
    results = {s.value: run_application_benchmark(s, LatexBenchmark, runs=1)
               for s in [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
                         Scenario.WAN_CACHED]}
    return format_figure4(results)


def _bench_fig5() -> str:
    from repro.analysis.tables import format_figure5
    from repro.core.session import Scenario
    from repro.experiments.appbench import run_application_benchmark
    from repro.workloads.kernelcompile import KernelCompile
    results = {s.value: run_application_benchmark(s, KernelCompile, runs=2)
               for s in [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
                         Scenario.WAN_CACHED]}
    return format_figure5(results)


def _bench_fig6() -> str:
    from repro.analysis.tables import format_figure6
    from repro.experiments.clonebench import (CloneScenario,
                                              run_cloning_benchmark)
    results = {s.value: run_cloning_benchmark(s)
               for s in [CloneScenario.LOCAL, CloneScenario.WAN_S1,
                         CloneScenario.WAN_S2, CloneScenario.WAN_S3]}
    return format_figure6(results)


def _bench_table1() -> str:
    from repro.analysis.tables import format_table1
    from repro.experiments.clonebench import (CloneScenario,
                                              run_cloning_benchmark,
                                              run_parallel_cloning)
    seq_cold = run_cloning_benchmark(CloneScenario.WAN_S1,
                                     cold_between=True).total_seconds
    seq_warm = run_cloning_benchmark(CloneScenario.WAN_S1,
                                     warm=True).total_seconds
    par_cold = run_parallel_cloning().total_seconds
    par_warm = run_parallel_cloning(warm=True).total_seconds
    return format_table1(seq_cold, seq_warm, par_cold, par_warm)


def _bench_zero() -> str:
    from repro.core.metadata import generate_metadata
    from repro.core.session import GvfsSession, Scenario, ServerEndpoint
    from repro.net.topology import make_paper_testbed
    from repro.vm.image import VmConfig, VmImage
    from repro.vm.monitor import VmMonitor
    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    VmImage.create(endpoint.export.fs, "/images/postboot",
                   VmConfig(name="postboot", memory_mb=512, disk_gb=0.25,
                            persistent=True, seed=73), zero_fraction=0.92)
    generate_metadata(endpoint.export.fs, "/images/postboot/mem.vmss",
                      actions=[])
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint)
    monitor = VmMonitor(testbed.env, testbed.compute[0])

    def driver(env):
        yield env.process(monitor.resume(session.mount, "/images/postboot"))

    testbed.env.process(driver(testbed.env))
    testbed.env.run()
    stats = session.client_proxy.stats
    reads = session.mount.rpc.stats.by_proc.get("READ", 0)
    return (f"512 MB post-boot resume: {reads} NFS reads issued, "
            f"{stats.zero_filtered_reads} filtered as zero-filled "
            f"({stats.zero_filtered_reads / (512 * 128):.1%}; "
            f"paper: 60,452 of 65,750 ≈ 92%)")


def _bench_pipelined() -> str:
    from repro.core.config import pipeline_overrides
    from repro.experiments.pipelinedbench import (format_pipelined_io,
                                                  run_flush_comparison,
                                                  run_read_sweep)
    # The sweep and flush comparison set their own knobs per point, so
    # the process-wide overrides are folded in explicitly: an overridden
    # readahead depth joins the sweep, write knobs retune the flush.
    overrides = pipeline_overrides()
    depths = sorted({0, 1, 4, 8, 16} | {overrides.get("readahead_depth", 8)})
    flush = run_flush_comparison(
        coalesce_bytes=overrides.get("write_coalesce_bytes", 64 * 1024),
        pipeline_depth=overrides.get("write_pipeline_depth", 4))
    return format_pipelined_io(run_read_sweep(depths=depths), flush)


BENCH_TARGETS: Dict[str, Callable[[], str]] = {
    "fig3": _bench_fig3,
    "fig4": _bench_fig4,
    "fig5": _bench_fig5,
    "fig6": _bench_fig6,
    "table1": _bench_table1,
    "zero": _bench_zero,
    "pipelined": _bench_pipelined,
}


def _cmd_bench(args) -> int:
    from repro.core.config import (ProxyConfig, pipeline_overrides,
                                   set_pipeline_overrides)
    try:
        set_pipeline_overrides(
            readahead_depth=args.readahead_depth,
            write_coalesce_bytes=args.write_coalesce_bytes,
            write_pipeline_depth=args.write_pipeline_depth)
        ProxyConfig(**pipeline_overrides())   # fail fast on bad values
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = (list(BENCH_TARGETS) if args.target == "all"
               else [args.target])
    for target in targets:
        start = time.time()
        table = BENCH_TARGETS[target]()
        print(table)
        print(f"[{target}: regenerated in {time.time() - start:.0f}s "
              "wall clock]\n")
    return 0


def _write_json(doc, out: str) -> None:
    import json
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[written to {out}]")


def _finish_report(doc, failures, out, label) -> int:
    """The uniform tail of every bench subcommand: archive, then turn
    check_report failures into stderr + exit code 1."""
    if out:
        _write_json(doc, out)
    if failures:
        print(f"error: {label} violated:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    return 0


def _run_bench_cmd(driver: str, params, quick: bool, out, label,
                   seed: int = 0) -> int:
    """Run a legacy bench through the scenario engine's adapter so the
    CLI and the scenario matrix share one execution + gate path."""
    from repro.scenario.runner import run_bench_driver
    try:
        report, failures, text = run_bench_driver(driver, params, quick,
                                                  seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    return _finish_report(report, failures, out, label)


def _cmd_perf(args) -> int:
    from repro.experiments import perf
    from repro.scenario.runner import perf_gate_failures
    names = (args.workloads.split(",") if args.workloads
             else list(perf.WORKLOADS))
    unknown = [n for n in names if n not in perf.WORKLOADS]
    if unknown:
        print(f"error: unknown workload(s) {unknown}; "
              f"choose from {sorted(perf.WORKLOADS)}", file=sys.stderr)
        return 2
    golden_path = args.golden or perf.GOLDEN_PATH
    report = perf.run_harness(names, quick=args.quick,
                              golden_path=None if args.update_golden
                              else golden_path,
                              baseline_path=args.baseline)
    if args.update_golden:
        perf.save_golden(
            {perf._golden_key(n, args.quick): s.sim_signature
             for n, s in report.samples.items()}, golden_path)
        print(f"[golden timings updated in {golden_path}]")
    print(perf.format_report(report))
    return _finish_report(report.to_dict(),
                          perf_gate_failures(report, args.max_slowdown),
                          args.out, "perf guarantees")


def _cmd_faultbench(args) -> int:
    params = {"link_mode": args.link_mode}
    if args.scenario:
        params["scenarios"] = args.scenario.split(",")
    return _run_bench_cmd("faultbench", params, args.quick, args.out,
                          "recovery guarantees", seed=args.seed)


def _cmd_chaosbench(args) -> int:
    return _run_bench_cmd("chaosbench", {}, args.quick, args.out,
                          "chaos guarantees", seed=args.seed)


def _cmd_coopbench(args) -> int:
    params = {}
    if args.modes:
        params["modes"] = args.modes.split(",")
    if args.depths:
        params["depths"] = [int(d) for d in args.depths.split(",")]
    if args.peers:
        params["peers"] = [int(p) for p in args.peers.split(",")]
    return _run_bench_cmd("coopbench", params, args.quick, args.out,
                          "cooperative-caching guarantees")


def _cmd_cascadebench(args) -> int:
    params = {}
    if args.depths:
        params["depths"] = [int(d) for d in args.depths.split(",")]
    if args.policies:
        params["policies"] = args.policies.split(",")
    if args.workloads:
        params["workloads"] = args.workloads.split(",")
    return _run_bench_cmd("cascadebench", params, args.quick, args.out,
                          "cascade guarantees")


def _cmd_fleetbench(args) -> int:
    from repro.scenario.runner import run_bench_driver
    params = {"sessions": args.sessions, "sites": args.sites,
              "processes": args.processes, "telemetry": args.fleet_report}
    if args.modes:
        params["modes"] = args.modes.split(",")
    if args.baseline:
        params["baseline"] = args.baseline
    try:
        report, failures, text = run_bench_driver("fleetbench", params,
                                                  args.quick, 0)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    if args.fleet_report:
        for mode, storm in report["storm"].items():
            for site in storm["per_site"]:
                site_text = site.get("fleet_report")
                if site_text:
                    print(f"\n[{mode} storm, site {site['site']}]")
                    print(site_text)
    return _finish_report(report, failures, args.out, "fleet guarantees")


def _cmd_farmbench(args) -> int:
    params = {"sessions": args.sessions}
    if args.cells:
        params["cells"] = args.cells.split(",")
    if args.baseline:
        params["baseline"] = args.baseline
    return _run_bench_cmd("farmbench", params, args.quick, args.out,
                          "farm guarantees", seed=args.seed)


# --------------------------------------------------------------------------
# Declarative scenarios
# --------------------------------------------------------------------------

def _cmd_scenario_list(args) -> int:
    from repro.scenario.loader import list_specs
    from repro.scenario.spec import SpecError
    try:
        specs = list_specs()
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for spec in specs:
        quick = " [quick profile]" if spec.quick else ""
        print(f"{spec.name:<16} {spec.kind:<6} "
              f"{spec.description or spec.bench.driver}{quick}")
    return 0


def _cmd_scenario_check(args) -> int:
    from repro.scenario.loader import load_spec
    from repro.scenario.spec import SpecError
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    gates = [g.name for g in spec.gates] or (
        ["check_report"] if spec.kind == "bench" else [])
    print(f"{spec.name}: OK ({spec.kind}, "
          f"{len(spec.phases)} phase(s), {len(spec.faults)} fault(s), "
          f"gates: {', '.join(gates) or 'none'})")
    return 0


def _cmd_scenario_run(args) -> int:
    from repro.scenario.loader import load_spec
    from repro.scenario.runner import run_spec
    from repro.scenario.schema import validate_report
    from repro.scenario.spec import SpecError
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        envelope, text = run_spec(spec, quick=args.quick)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    if args.out:
        _write_json(envelope, args.out)
    errors = validate_report(envelope)
    if errors:
        print("error: report envelope violates bench_schema.json:\n  "
              + "\n  ".join(errors), file=sys.stderr)
        return 1
    if args.check and not envelope["ok"]:
        failed = [f"{g['name']}: {g['detail']}"
                  for g in envelope["gates"] if not g["ok"]]
        print(f"error: scenario {spec.name} gates failed:\n  "
              + "\n  ".join(failed), file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import assemble_report
    report = assemble_report(args.results_dir)
    print(report.text)
    if report.missing:
        print(f"[{len(report.missing)} section(s) missing — run "
              "`pytest benchmarks/ --benchmark-only` first]")
        return 1
    return 0


def _cmd_info(args) -> int:
    from repro.net.compress import GZIP
    from repro.net.topology import LAN_2003, WAN_2003
    from repro.nfs.protocol import NFS_BLOCK_SIZE
    from repro.net.ssh import DEFAULT_TCP_WINDOW
    from repro.storage.disk import SCSI_2003
    print("Calibration constants (shared by every experiment):")
    print(f"  LAN: {LAN_2003.latency * 1e3:.1f} ms one-way, "
          f"{LAN_2003.bandwidth / 1.25e5:.0f} Mbit/s")
    print(f"  WAN: {WAN_2003.latency * 1e3:.1f} ms one-way "
          f"(~{2 * WAN_2003.latency * 1e3:.0f} ms RTT), "
          f"{WAN_2003.bandwidth / 1.25e5:.0f} Mbit/s raw")
    print(f"  TCP window: {DEFAULT_TCP_WINDOW // 1024} KiB "
          f"(~{DEFAULT_TCP_WINDOW / (2 * WAN_2003.latency) / 1e6:.1f} MB/s "
          "per WAN stream)")
    print(f"  NFS rsize/wsize: {NFS_BLOCK_SIZE // 1024} KB")
    print(f"  disk: {SCSI_2003.positioning * 1e3:.1f} ms positioning, "
          f"{SCSI_2003.bandwidth / 1e6:.0f} MB/s")
    print(f"  gzip: {GZIP.compress_bps / 1e6:.1f} MB/s compress, "
          f"{GZIP.decompress_bps / 1e6:.0f} MB/s decompress")
    return 0


def _add_stack_report_flag(sub) -> None:
    sub.add_argument("--stack-report", action="store_true",
                     help="print the per-layer proxy stack stats report "
                          "after the run (one block per proxy that saw "
                          "traffic)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Distributed File System Support for "
                    "Virtual Machines in Grid Computing' (HPDC 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="regenerate a figure/table")
    bench.add_argument("target", choices=[*BENCH_TARGETS, "all"])
    bench.add_argument("--readahead-depth", type=int, default=None,
                       metavar="N",
                       help="override proxy sequential-readahead depth "
                            "(blocks fetched ahead; 0 disables)")
    bench.add_argument("--write-coalesce-bytes", type=int, default=None,
                       metavar="B",
                       help="override max bytes merged into one upstream "
                            "WRITE during proxy flush (0 = per-block)")
    bench.add_argument("--write-pipeline-depth", type=int, default=None,
                       metavar="W",
                       help="override concurrent upstream WRITEs during "
                            "proxy flush")
    _add_stack_report_flag(bench)
    bench.set_defaults(func=_cmd_bench)

    perf = sub.add_parser(
        "perf",
        help="measure wall-clock simulator throughput (events/s, "
             "blocks/s) on fixed workloads and check simulated-time "
             "invariance against golden timings")
    perf.add_argument("--workloads", default=None, metavar="W1,W2",
                      help="comma-separated workload names "
                           "(default: all; see docs/performance.md)")
    perf.add_argument("--out", default=None, metavar="FILE",
                      help="write the measurements as JSON "
                           "(e.g. BENCH_pr2.json)")
    perf.add_argument("--baseline", default=None, metavar="FILE",
                      help="earlier BENCH_*.json to compute speedups "
                           "against")
    perf.add_argument("--golden", default=None, metavar="FILE",
                      help="golden simulated-time signatures "
                           "(default: benchmarks/golden_timings.json)")
    perf.add_argument("--update-golden", action="store_true",
                      help="record current simulated times as golden "
                           "instead of checking them")
    perf.add_argument("--quick", action="store_true",
                      help="shrunken workloads (CI smoke scale)")
    perf.add_argument("--max-slowdown", type=float, default=None,
                      metavar="X",
                      help="fail (exit 1) when any workload's wall clock "
                           "regresses more than X times vs --baseline "
                           "(CI gate; baseline scale must match)")
    _add_stack_report_flag(perf)
    perf.set_defaults(func=_cmd_perf)

    fault = sub.add_parser(
        "faultbench",
        help="run fault-injection scenarios and check recovery "
             "guarantees (zero lost writes with the journal, "
             "deterministic replay)")
    fault.add_argument("--scenario", default=None, metavar="S1,S2",
                       help="comma-separated scenario names (default: all; "
                            "wan_blip, server_crash, proxy_restart)")
    fault.add_argument("--seed", type=int, default=11, metavar="N",
                       help="fault-plan seed (same seed => same timeline)")
    fault.add_argument("--quick", action="store_true",
                       help="shrunken workloads (CI smoke scale)")
    fault.add_argument("--link-mode", default="exact",
                       choices=["exact", "fluid"],
                       help="link transmit model; fluid links fall back "
                            "to the exact path on their first outage, so "
                            "fault injection composes with the fast path")
    fault.add_argument("--out", default=None, metavar="FILE",
                       help="write the metrics as JSON "
                            "(e.g. results/BENCH_pr3.json)")
    _add_stack_report_flag(fault)
    fault.set_defaults(func=_cmd_faultbench)

    cascade = sub.add_parser(
        "cascadebench",
        help="sweep cache-cascade depth x eviction policy and check "
             "the cascade guarantees (every level serves hits; "
             "depth-1/2 match the plain proxy / SecondLevelCache "
             "bit-identically)")
    cascade.add_argument("--depths", default=None, metavar="D1,D2",
                         help="comma-separated cascade depths "
                              "(default: 1,2,3,4; depth counts the "
                              "client proxy)")
    cascade.add_argument("--policies", default=None, metavar="P1,P2",
                         help="comma-separated eviction policies "
                              "(default: lru,lfu,2q)")
    cascade.add_argument("--workloads", default=None, metavar="W1,W2",
                         help="comma-separated workloads (default: "
                              "cold_clone,kernel_compile)")
    cascade.add_argument("--quick", action="store_true",
                         help="shrunken workloads (CI smoke scale)")
    cascade.add_argument("--out", default=None, metavar="FILE",
                         help="write the sweep as JSON "
                              "(e.g. results/BENCH_pr5.json)")
    _add_stack_report_flag(cascade)
    cascade.set_defaults(func=_cmd_cascadebench)

    coop = sub.add_parser(
        "coopbench",
        help="sweep proxy organization (inclusive / exclusive-demotion "
             "/ cooperative peer caching) x cascade depth x peer count "
             "over a clone-storm + golden-rollout workload, plus the "
             "adaptive level-sizing probe; checks the PR-7 guarantees")
    coop.add_argument("--modes", default=None, metavar="M1,M2",
                      help="subset of modes "
                           "(inclusive,exclusive,cooperative)")
    coop.add_argument("--depths", default=None, metavar="D1,D2",
                      help="cascade depths to sweep (default 1,2,3)")
    coop.add_argument("--peers", default=None, metavar="N1,N2",
                      help="peer counts to sweep (default 1,2,4)")
    coop.add_argument("--quick", action="store_true",
                      help="CI-scale images and storms")
    coop.add_argument("--out", default=None, metavar="FILE",
                      help="write the sweep as JSON "
                           "(e.g. results/BENCH_pr7.json)")
    _add_stack_report_flag(coop)
    coop.set_defaults(func=_cmd_coopbench)

    chaos = sub.add_parser(
        "chaosbench",
        help="run the layer-targeted chaos sweep (corrupt frames, "
             "blackholed/delayed/duplicated RPC procs, stalled and "
             "dropped uploads) and check the integrity guarantees: "
             "zero corrupted bytes served, zero lost acknowledged "
             "writes, layer-local blast radius, bounded recovery, "
             "deterministic replay")
    chaos.add_argument("--seed", type=int, default=17, metavar="N",
                       help="sweep seed (same seed => same cells, same "
                            "timelines)")
    chaos.add_argument("--quick", action="store_true",
                       help="shrunken workloads (CI smoke scale)")
    chaos.add_argument("--out", default=None, metavar="FILE",
                       help="write the sweep as JSON "
                            "(e.g. results/BENCH_pr8.json)")
    _add_stack_report_flag(chaos)
    chaos.set_defaults(func=_cmd_chaosbench)

    fleet = sub.add_parser(
        "fleetbench",
        help="fleet-scale clone storm (engine microbench; exact vs "
             "fluid vs sharded storms; fluid-vs-exact accuracy on the "
             "fig3-fig6 workloads) and the fleet guarantees: "
             "microbench throughput floor, fluid drift within "
             "tolerance, deterministic sharded merging")
    fleet.add_argument("--sessions", type=int, default=None, metavar="N",
                       help="total sessions in the storm "
                            "(default: 1000, or 32 with --quick)")
    fleet.add_argument("--sites", type=int, default=None, metavar="S",
                       help="independent sites / topology islands "
                            "(default: 8, or 4 with --quick)")
    fleet.add_argument("--modes", default=None, metavar="M1,M2",
                       help="comma-separated storm modes "
                            "(default: exact,fluid,sharded)")
    fleet.add_argument("--processes", type=int, default=None, metavar="P",
                       help="worker processes for the sharded storm "
                            "(default: min(sites, cpu count))")
    fleet.add_argument("--fleet-report", action="store_true",
                       help="collect per-session cache-layer telemetry "
                            "via the session manager and print one "
                            "fleet report per site")
    fleet.add_argument("--quick", action="store_true",
                       help="shrunken storm and accuracy sweep "
                            "(CI smoke scale)")
    fleet.add_argument("--out", default=None, metavar="FILE",
                       help="write the report as JSON "
                            "(e.g. results/BENCH_pr6.json)")
    fleet.add_argument("--baseline", default=None, metavar="FILE",
                       help="earlier fleetbench JSON; fail on >20%% "
                            "microbench throughput regression")
    fleet.set_defaults(func=_cmd_fleetbench)

    farmp = sub.add_parser(
        "farmbench",
        help="clone storm against the sharded image-server farm "
             "(1 vs 4 vs 16 replicated data servers, with and without "
             "a mid-storm data-server crash) and the farm guarantees: "
             "storm speedup at 4 and 16 servers, zero lost "
             "acknowledged writes and observed failovers under the "
             "crash, bounded re-replication, deterministic placement, "
             "bit-identical farm-disabled golden timings")
    farmp.add_argument("--sessions", type=int, default=None, metavar="N",
                       help="sessions per storm cell "
                            "(default: 1000, or 48 with --quick)")
    farmp.add_argument("--cells", default=None, metavar="C1,C2",
                       help="comma-separated cells, each N or N+crash "
                            "(default: 1,4,16,4+crash,16+crash; quick: "
                            "1,4,4+crash)")
    farmp.add_argument("--seed", type=int, default=0, metavar="N",
                       help="placement seed (same seed => same map)")
    farmp.add_argument("--quick", action="store_true",
                       help="shrunken storm (CI smoke scale)")
    farmp.add_argument("--out", default=None, metavar="FILE",
                       help="write the report as JSON "
                            "(e.g. results/BENCH_pr9.json)")
    farmp.add_argument("--baseline", default=None, metavar="FILE",
                       help="earlier farmbench JSON; fail on >25%% "
                            "storm slowdown in any cell")
    farmp.set_defaults(func=_cmd_farmbench)

    scenario = sub.add_parser(
        "scenario",
        help="declarative scenario engine: run/list/check specs from "
             "scenarios/ (one spec drives topology, sessions, phases, "
             "faults and gates, and emits the unified BENCH envelope)")
    scenario_sub = scenario.add_subparsers(dest="action", required=True)

    srun = scenario_sub.add_parser(
        "run", help="run one scenario spec end to end")
    srun.add_argument("spec", metavar="SPEC",
                      help="spec name from scenarios/ (e.g. fault_smoke) "
                           "or a path to a .yaml/.json/.py spec file")
    srun.add_argument("--quick", action="store_true",
                      help="apply the spec's quick profile "
                           "(CI smoke scale)")
    srun.add_argument("--check", action="store_true",
                      help="exit 1 when any gate fails (CI mode; "
                           "without it the run only reports)")
    srun.add_argument("--out", default=None, metavar="FILE",
                      help="write the report envelope as JSON "
                           "(e.g. results/BENCH_fault_smoke.json)")
    _add_stack_report_flag(srun)
    srun.set_defaults(func=_cmd_scenario_run)

    slist = scenario_sub.add_parser(
        "list", help="list the scenario library")
    slist.set_defaults(func=_cmd_scenario_list)

    scheck = scenario_sub.add_parser(
        "check", help="validate a spec (and its quick profile) without "
                      "running it")
    scheck.add_argument("spec", metavar="SPEC")
    scheck.set_defaults(func=_cmd_scenario_check)

    info = sub.add_parser("info", help="print calibration constants")
    info.set_defaults(func=_cmd_info)

    report = sub.add_parser("report",
                            help="assemble the reproduction report from "
                                 "archived benchmark tables")
    report.add_argument("--results-dir", default="results")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "stack_report", False):
        from repro.core.layers import enable_stack_reports
        enable_stack_reports()
        try:
            rc = args.func(args)
            from repro.core.layers import (format_cascade_reports,
                                           format_stack_reports)
            text = format_stack_reports()
            if text:
                print("\nper-layer proxy stack reports\n" + text)
            cascades = format_cascade_reports()
            if cascades:
                print("\naggregated cascade reports\n" + cascades)
        finally:
            from repro.core.layers import disable_stack_reports
            disable_stack_reports()
        return rc
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
