"""Reproduction report assembly.

Collects the tables archived under ``results/`` by a benchmark run into
one document, prefixed with the paper-vs-measured checklist — the
machine-generated counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ReproductionReport", "assemble_report"]

#: Section ordering and titles for the assembled report.
SECTIONS: Sequence[Tuple[str, str]] = (
    ("fig3_specseis", "Figure 3 — SPECseis execution times"),
    ("fig4_latex", "Figure 4 — LaTeX benchmark"),
    ("fig5_kernel", "Figure 5 — kernel compilation (cold/warm)"),
    ("fig6_cloning", "Figure 6 — VM cloning times"),
    ("table1_parallel", "Table 1 — sequential vs parallel cloning"),
    ("zero_filtering", "§3.2.2 — zero-block filtering"),
    ("scenario_persistent", "§3.2.3 scenario 1 — persistent VM"),
    ("scenario_batch", "§3.2.3 scenario 2 — high-throughput batch"),
    ("ablation_write_policy", "Ablation — write policy"),
    ("ablation_metadata", "Ablation — meta-data handling"),
    ("ablation_cipher", "Ablation — SSH cipher cost"),
    ("ablation_block_size", "Ablation — block size"),
    ("ext_prefetch", "Extension — profile-driven prefetch"),
    ("ext_gridftp", "Extension — GridFTP channel"),
    ("ext_migration", "Extension — VM migration"),
    ("ext_shared_cache", "Extension — shared read-only cache"),
    ("pipelined_io", "Extension — pipelined proxy I/O"),
)


@dataclass
class ReproductionReport:
    """The assembled report plus bookkeeping about coverage."""

    text: str
    present: List[str]
    missing: List[str]

    @property
    def complete(self) -> bool:
        return not self.missing


def assemble_report(results_dir: pathlib.Path | str = "results",
                    title: str = "GVFS reproduction report") -> ReproductionReport:
    """Stitch every archived table into one document.

    Sections whose table file is missing (benchmark not yet run) are
    listed at the top so a partial run is visible at a glance.
    """
    root = pathlib.Path(results_dir)
    present: List[str] = []
    missing: List[str] = []
    chunks: List[str] = [title, "=" * len(title), ""]
    for name, heading in SECTIONS:
        path = root / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        present.append(name)
        chunks.append(heading)
        chunks.append("-" * len(heading))
        chunks.append(path.read_text().rstrip())
        chunks.append("")
    if missing:
        chunks.insert(3, "MISSING (benchmarks not yet run): "
                      + ", ".join(missing) + "\n")
    return ReproductionReport(text="\n".join(chunks),
                              present=present, missing=missing)
