"""Small statistics helpers used by experiments and reports.

Nothing exotic — means, speedups, overhead percentages, and a compact
session-statistics collector that aggregates the counters scattered
across a GVFS chain (mount, proxies, caches, channels) into one record
the middleware (or a benchmark) can print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["SessionStats", "collect_session_stats", "geometric_mean",
           "overhead", "speedup"]


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def overhead(baseline: float, measured: float) -> float:
    """Fractional overhead of ``measured`` relative to ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    return measured / baseline - 1.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for ratios/speedups)."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


@dataclass
class SessionStats:
    """Aggregated counters of one GVFS session."""

    rpc_calls: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    buffer_cache_hits: int = 0
    buffer_cache_misses: int = 0
    zero_filtered_reads: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    file_cache_reads: int = 0
    absorbed_writes: int = 0
    writebacks: int = 0
    channel_fetches: int = 0
    channel_bytes_on_wire: int = 0
    channel_bytes_logical: int = 0

    @property
    def buffer_cache_hit_rate(self) -> float:
        total = self.buffer_cache_hits + self.buffer_cache_misses
        return self.buffer_cache_hits / total if total else 0.0

    @property
    def block_cache_hit_rate(self) -> float:
        total = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / total if total else 0.0

    @property
    def channel_compression_ratio(self) -> float:
        if not self.channel_bytes_logical:
            return 1.0
        return self.channel_bytes_on_wire / self.channel_bytes_logical

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"RPC calls            : {self.rpc_calls}",
            f"wire bytes (tx/rx)   : {self.bytes_sent} / {self.bytes_received}",
            f"buffer cache hit rate: {self.buffer_cache_hit_rate:.1%}",
            f"block cache hit rate : {self.block_cache_hit_rate:.1%}",
            f"zero-filtered reads  : {self.zero_filtered_reads}",
            f"file-cache reads     : {self.file_cache_reads}",
            f"absorbed writes      : {self.absorbed_writes}",
            f"write-backs upstream : {self.writebacks}",
            f"channel fetches      : {self.channel_fetches} "
            f"(wire/logical ratio {self.channel_compression_ratio:.2f})",
        ]
        return "\n".join(lines)


def collect_session_stats(session) -> SessionStats:
    """Aggregate a :class:`~repro.core.session.GvfsSession`'s counters."""
    stats = SessionStats()
    mount = getattr(session, "mount", None)
    if mount is not None and hasattr(mount, "rpc"):
        stats.rpc_calls = mount.rpc.stats.calls
        stats.bytes_sent = mount.rpc.stats.bytes_sent
        stats.bytes_received = mount.rpc.stats.bytes_received
        stats.buffer_cache_hits = mount.cache.hits
        stats.buffer_cache_misses = mount.cache.misses
    proxy = getattr(session, "client_proxy", None)
    if proxy is not None:
        stats.zero_filtered_reads = proxy.stats.zero_filtered_reads
        stats.block_cache_hits = proxy.stats.block_cache_hits
        stats.block_cache_misses = proxy.stats.block_cache_misses
        stats.file_cache_reads = proxy.stats.file_cache_reads
        stats.absorbed_writes = proxy.stats.absorbed_writes
        stats.writebacks = proxy.stats.writebacks
        stats.channel_fetches = proxy.stats.channel_fetches
        if proxy.channel is not None:
            stats.channel_bytes_on_wire = proxy.channel.bytes_on_wire
            stats.channel_bytes_logical = proxy.channel.bytes_logical
    return stats
