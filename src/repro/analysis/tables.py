"""Renderers that print each figure/table in the paper's own shape.

Each ``format_*`` function takes the corresponding experiment results
and returns a text table whose rows/series match what the paper plots,
so a reproduction run can be compared against §4 line by line.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = [
    "format_duration",
    "format_figure3",
    "format_figure4",
    "format_figure5",
    "format_figure6",
    "format_table1",
]


def format_duration(seconds: float) -> str:
    """mm:ss (Figure 3) / h:mm (Figure 5) style compact duration."""
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}h"
    return f"{seconds // 60}:{seconds % 60:02d}"


def _table(header: Sequence[str], rows: List[Sequence[str]],
           title: str) -> str:
    widths = [max(len(str(r[i])) for r in [header, *rows])
              for i in range(len(header))]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([title, bar, line(header), bar,
                      *(line(r) for r in rows), bar])


def format_figure3(results: Dict[str, "AppBenchResult"]) -> str:
    """SPECseis execution times per phase (Figure 3)."""
    scenarios = list(results)
    header = ["phase", *scenarios]
    phases = [p.name for p in next(iter(results.values())).runs[0].phases]
    rows = []
    for name in phases:
        rows.append([name, *(format_duration(results[s].phase(name))
                             for s in scenarios)])
    rows.append(["total", *(format_duration(results[s].run_total())
                            for s in scenarios)])
    return _table(header, rows,
                  "Figure 3: SPECseis benchmark execution times (m:ss)")


def format_figure4(results: Dict[str, "AppBenchResult"],
                   staging_download: float = None,
                   staging_upload: float = None) -> str:
    """LaTeX benchmark: first iteration / mean 2-20 / total (Figure 4)."""
    scenarios = list(results)
    header = ["metric", *scenarios]
    rows = []
    firsts, means, totals, flushes = [], [], [], []
    for s in scenarios:
        run = results[s].runs[0]
        rest = [p.seconds for p in run.phases[1:]]
        firsts.append(run.phases[0].seconds)
        means.append(sum(rest) / len(rest))
        totals.append(run.total_seconds)
        flushes.append(results[s].flush_seconds)
    rows.append(["first iteration (s)", *(f"{v:.2f}" for v in firsts)])
    rows.append(["mean iters 2-20 (s)", *(f"{v:.2f}" for v in means)])
    rows.append(["total (s)", *(f"{v:.1f}" for v in totals)])
    rows.append(["write-back flush (s)", *(f"{v:.1f}" for v in flushes)])
    out = _table(header, rows, "Figure 4: LaTeX benchmark execution times")
    notes = []
    if staging_download is not None:
        notes.append(f"full-state download before session: "
                     f"{staging_download:.0f} s (paper: 2818 s)")
    if staging_upload is not None:
        notes.append(f"full-state upload after session:    "
                     f"{staging_upload:.0f} s (paper: 4633 s)")
    return out + ("\n" + "\n".join(notes) if notes else "")


def format_figure5(results: Dict[str, "AppBenchResult"]) -> str:
    """Kernel compilation: 4 phases x 2 consecutive runs (Figure 5)."""
    scenarios = list(results)
    blocks = []
    for run_index, label in [(0, "first run (cold caches)"),
                             (1, "second run (warm caches)")]:
        header = ["phase", *scenarios]
        phases = [p.name for p in
                  next(iter(results.values())).runs[run_index].phases]
        rows = []
        for name in phases:
            rows.append([name, *(format_duration(
                results[s].phase(name, run=run_index)) for s in scenarios)])
        rows.append(["total", *(format_duration(
            results[s].run_total(run_index)) for s in scenarios)])
        blocks.append(_table(header, rows,
                             f"Figure 5: kernel compilation — {label}"))
    return "\n\n".join(blocks)


def format_figure6(results: Dict[str, "CloneBenchResult"],
                   scp_seconds: float = None,
                   purenfs_seconds: float = None) -> str:
    """Cloning times for a sequence of images, 1..8 (Figure 6)."""
    scenarios = list(results)
    n = max(len(results[s].clone_seconds) for s in scenarios)
    header = ["clone #", *scenarios]
    rows = []
    for i in range(n):
        row = [str(i + 1)]
        for s in scenarios:
            seq = results[s].clone_seconds
            row.append(f"{seq[i]:.1f}" if i < len(seq) else "-")
        rows.append(row)
    out = _table(header, rows, "Figure 6: VM cloning times (seconds)")
    notes = []
    if scp_seconds is not None:
        notes.append(f"cloning by full-image SCP copy: {scp_seconds:.0f} s "
                     "(paper: 1127 s)")
    if purenfs_seconds is not None:
        notes.append(f"cloning off plain NFS (no GVFS): "
                     f"{purenfs_seconds:.0f} s (paper: 2060 s)")
    return out + ("\n" + "\n".join(notes) if notes else "")


def format_table1(seq_cold: float, seq_warm: float,
                  par_cold: float, par_warm: float) -> str:
    """Total time of cloning eight images, sequential vs parallel."""
    rows = [
        ["WAN-S1 (sequential)", f"{seq_cold:.1f}", f"{seq_warm:.1f}"],
        ["WAN-P  (parallel)", f"{par_cold:.1f}", f"{par_warm:.1f}"],
        ["speedup", f"{seq_cold / par_cold:.2f}x",
         f"{seq_warm / par_warm:.2f}x"],
    ]
    return _table(["scenario", "cold caches (s)", "warm caches (s)"], rows,
                  "Table 1: total time of cloning eight VM images")
