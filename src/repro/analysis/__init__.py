"""Result aggregation and paper-style table rendering."""

from repro.analysis.stats import (
    SessionStats,
    collect_session_stats,
    geometric_mean,
    overhead,
    speedup,
)
from repro.analysis.report import ReproductionReport, assemble_report
from repro.analysis.tables import (
    format_figure3,
    format_figure4,
    format_figure5,
    format_figure6,
    format_table1,
    format_duration,
)

__all__ = [
    "ReproductionReport",
    "SessionStats",
    "assemble_report",
    "collect_session_stats",
    "format_duration",
    "format_figure3",
    "format_figure4",
    "format_figure5",
    "format_figure6",
    "format_table1",
    "geometric_mean",
    "overhead",
    "speedup",
]
