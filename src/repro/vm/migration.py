"""VM checkpointing and migration over GVFS (§6 future work).

"Directions for future work include distributed virtual file system
support for efficient checkpointing and migration of VM instances for
load-balancing and fault-tolerant execution."

The mechanism composes the pieces the paper already built:

* **checkpoint** — suspend the VM; the memory state is written through
  the write-back proxy (absorbed locally at disk speed), then the
  middleware consistency signal uploads it to the image server through
  the compressed file channel and regenerates its meta-data;
* **migrate** — checkpoint on the source, then instantiate on the
  destination exactly like a clone: the new host pulls the checkpointed
  state through *its* proxy (zero-filtered, compressed), symlinks the
  virtual disk, and resumes.  Redo logs on the GVFS mount carry the
  disk deltas across.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.core.session import GvfsSession, LocalMount
from repro.vm.cloning import CloneManager, CloneResult
from repro.vm.image import VmImage
from repro.vm.monitor import VirtualMachine, VmMonitor

__all__ = ["MigrationManager", "MigrationResult"]


@dataclass
class MigrationResult:
    """Timing breakdown of one migration."""

    vm: Optional[VirtualMachine]
    total_seconds: float
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def downtime_seconds(self) -> float:
        """Time the VM was unavailable (suspend start to resume end)."""
        return self.total_seconds


class MigrationManager:
    """Moves a live VM between compute servers via the image server."""

    def __init__(self, env,
                 source_monitor: VmMonitor, source_session: GvfsSession,
                 dest_monitor: VmMonitor, dest_session: GvfsSession):
        self.env = env
        self.source_monitor = source_monitor
        self.source_session = source_session
        self.dest_monitor = dest_monitor
        self.dest_session = dest_session

    # ----------------------------------------------------------- checkpoint
    def checkpoint(self, vm: VirtualMachine, vm_dir: str) -> Generator:
        """Process: suspend ``vm`` and push its state to the image server.

        ``vm_dir`` is the VM's directory on the *source session's*
        mount (where its memory state file lives).  Returns the phase
        timing dict.
        """
        phases: Dict[str, float] = {}
        env = self.env

        t = env.now
        yield from self.source_monitor.suspend(self.source_session.mount,
                                               vm_dir, vm)
        phases["suspend"] = env.now - t

        # Middleware consistency point: everything the write-back layer
        # absorbed (memory state, redo log blocks) reaches the server.
        t = env.now
        yield self.env.process(self.source_session.flush())
        phases["flush"] = env.now - t

        # Middleware regenerates the meta-data of the new checkpoint so
        # the destination's zero-filter and file channel see fresh maps.
        t = env.now
        endpoint = self.source_session.endpoint
        if endpoint is not None:
            image = VmImage.load(endpoint.export.fs, vm_dir)
            image.generate_metadata()
        phases["metadata"] = env.now - t
        return phases

    # -------------------------------------------------------------- migrate
    def migrate(self, vm: VirtualMachine, vm_dir: str,
                dest_dir: str = "/migrated/vm") -> Generator:
        """Process: checkpoint on the source, resume on the destination.

        Returns a :class:`MigrationResult`; the result's ``vm`` runs on
        the destination host.
        """
        env = self.env
        start = env.now

        phases = yield from self.checkpoint(vm, vm_dir)

        # The destination pulls the checkpointed state like a clone:
        # copy config + memory state through its proxy, symlink the
        # virtual disk, resume.
        t = env.now
        dest_compute = self.dest_session.compute_host
        manager = CloneManager(env, self.dest_monitor,
                               self.dest_session.mount,
                               LocalMount(dest_compute.local))
        clone: CloneResult = yield from manager.clone(
            vm_dir, dest_dir, clone_name=dest_dir.rsplit("/", 1)[-1])
        phases["instantiate"] = env.now - t
        for name, value in clone.phases.items():
            phases[f"instantiate.{name}"] = value

        return MigrationResult(vm=clone.vm,
                               total_seconds=env.now - start,
                               phases=phases)
