"""VM image generation: memory state, virtual disk, configuration.

Images are generated deterministically from a seed with the two
content properties the paper's results hinge on:

* **memory state** is zero-rich — "normally the memory state contains
  many zero-filled blocks"; a 512 MB post-boot RedHat 7.3 image had
  60,452 of 65,750 blocks (~92 %) zero-filled — and its non-zero pages
  are *compressible* (gzip shrinks them further);
* the **virtual disk** is large (GBs) but guests touch a small working
  set (<10 %, §3.2.2), scattered across the disk.

Non-zero content is produced lazily by :class:`RandomContent`, so a
1.6 GB disk costs nothing until blocks are actually read.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.metadata import (
    FileMetadata,
    generate_memory_state_metadata,
)
from repro.storage.vfs import CHUNK_SIZE, ContentSource, FileSystem, Inode, SparseFile

__all__ = [
    "GuestFile",
    "RandomContent",
    "VmConfig",
    "VmImage",
    "make_memory_state",
    "make_virtual_disk",
]


#: Shared all-zero chunk — immutable, so every zero read can be one object.
_ZERO_CHUNK = bytes(CHUNK_SIZE)


def _mix(seed: int, index: int) -> int:
    """Cheap deterministic 64-bit mix of (seed, index)."""
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xC2B2AE3D27D4EB4F) & (2**64 - 1)
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & (2**64 - 1)
    x ^= x >> 29
    return x


class RandomContent(ContentSource):
    """Deterministic chunk content with a configurable zero fraction.

    A chunk is zero when its mixed hash falls below ``zero_fraction``;
    zero-ness is decided *without* generating bytes, so scanning a
    multi-hundred-MB file for its zero map is fast.  Non-zero chunks are
    half-entropy (a 4 KB random page tiled twice), giving gzip the ~2:1
    ratio typical of real memory pages.
    """

    #: Per-source memo capacity: 8192 chunks x 8 KB = 64 MB ceiling —
    #: enough to hold every non-zero chunk of a paper-scale memory
    #: state, so back-to-back clones regenerate nothing.
    _MEMO_CHUNKS = 8192

    def __init__(self, seed: int, zero_fraction: float = 0.0):
        if not 0.0 <= zero_fraction <= 1.0:
            raise ValueError(f"zero_fraction out of range: {zero_fraction}")
        self.seed = seed
        self.zero_fraction = zero_fraction
        self._threshold = int(zero_fraction * 2**64)
        # Chunk generation (an RNG construction + fill per call) is one
        # of the hottest non-simulation costs of a clone, and the same
        # chunks are read over and over (per clone, per run, and by
        # compression sizing).  The bytes are deterministic, so an LRU
        # memo returns the identical object without re-generating it.
        self._memo: "OrderedDict[int, bytes]" = OrderedDict()

    def is_zero(self, index: int) -> bool:
        return _mix(self.seed, index) < self._threshold

    def chunk(self, index: int) -> bytes:
        if _mix(self.seed, index) < self._threshold:
            return _ZERO_CHUNK
        memo = self._memo
        data = memo.get(index)
        if data is not None:
            memo.move_to_end(index)
            return data
        rng = np.random.default_rng(_mix(self.seed, index))
        half = rng.integers(0, 256, CHUNK_SIZE // 2, dtype=np.uint8).tobytes()
        data = half + half
        memo[index] = data
        if len(memo) > self._MEMO_CHUNKS:
            memo.popitem(last=False)
        return data


def make_memory_state(size: int, zero_fraction: float = 0.92,
                      seed: int = 0) -> SparseFile:
    """A memory-state file: ``zero_fraction`` of blocks are zero-filled."""
    return SparseFile(size=size, source=RandomContent(seed, zero_fraction))


def make_virtual_disk(size: int, populated_fraction: float = 0.45,
                      seed: int = 0) -> SparseFile:
    """A virtual disk: mostly populated with filesystem content."""
    return SparseFile(size=size,
                      source=RandomContent(seed + 1, 1.0 - populated_fraction))


@dataclass(frozen=True)
class GuestFile:
    """A file inside the guest's filesystem, mapped onto the virtual disk.

    The layout is a deterministic scatter of the file's blocks across
    the disk — what an aged ext2 filesystem looks like — so guest file
    reads become the scattered ``.vmdk`` block accesses that the proxy
    cache must absorb.
    """

    name: str
    size: int

    def block_offsets(self, disk_size: int, block_size: int,
                      seed: int) -> List[int]:
        """Disk offsets (block-aligned) holding this file's blocks."""
        n = (self.size + block_size - 1) // block_size
        total_blocks = disk_size // block_size
        if total_blocks <= 0:
            raise ValueError("disk smaller than one block")
        name_seed = zlib.crc32(self.name.encode()) ^ seed
        # Files live in extents of ~16 contiguous blocks scattered around.
        offsets: List[int] = []
        extent = 16
        base = None
        for i in range(n):
            if i % extent == 0:
                base = _mix(name_seed, i // extent) % total_blocks
            offsets.append(((base + i % extent) % total_blocks) * block_size)
        return offsets


@dataclass(frozen=True)
class VmConfig:
    """Static configuration of a VM image (the ``.cfg`` file contents)."""

    name: str
    memory_mb: int = 320
    disk_gb: float = 1.6
    os_name: str = "Red Hat Linux 7.3"
    persistent: bool = False      # non-persistent disks use redo logs
    seed: int = 0

    @property
    def memory_bytes(self) -> int:
        return self.memory_mb * 1024 * 1024

    @property
    def disk_bytes(self) -> int:
        return int(self.disk_gb * 1024 * 1024 * 1024)

    def to_bytes(self) -> bytes:
        lines = [f"displayName = \"{self.name}\"",
                 f"memsize = \"{self.memory_mb}\"",
                 f"guestOS = \"{self.os_name}\"",
                 f"disk.size = \"{self.disk_bytes}\"",
                 f"disk.mode = \"{'persistent' if self.persistent else 'undoable'}\"",
                 f"repro.seed = \"{self.seed}\""]
        return ("\n".join(lines) + "\n").encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "VmConfig":
        fields: Dict[str, str] = {}
        for line in raw.decode().splitlines():
            if "=" in line:
                key, _, value = line.partition("=")
                fields[key.strip()] = value.strip().strip('"')
        return cls(name=fields["displayName"],
                   memory_mb=int(fields["memsize"]),
                   disk_gb=int(fields["disk.size"]) / 1024 ** 3,
                   os_name=fields["guestOS"],
                   persistent=fields["disk.mode"] == "persistent",
                   seed=int(fields.get("repro.seed", "0")))


class VmImage:
    """The files of one VM image inside a filesystem directory.

    Layout::

        <dir>/vm.cfg       configuration
        <dir>/mem.vmss     memory (suspend) state
        <dir>/disk.vmdk    virtual disk
        <dir>/.mem.vmss.gvfs   meta-data (after generate_metadata())
    """

    CONFIG_NAME = "vm.cfg"
    MEMORY_NAME = "mem.vmss"
    DISK_NAME = "disk.vmdk"

    def __init__(self, fs: FileSystem, directory: str, config: VmConfig):
        self.fs = fs
        self.directory = directory.rstrip("/")
        self.config = config

    # -- paths ------------------------------------------------------------
    @property
    def config_path(self) -> str:
        return f"{self.directory}/{self.CONFIG_NAME}"

    @property
    def memory_path(self) -> str:
        return f"{self.directory}/{self.MEMORY_NAME}"

    @property
    def disk_path(self) -> str:
        return f"{self.directory}/{self.DISK_NAME}"

    # -- creation -----------------------------------------------------------
    @classmethod
    def create(cls, fs: FileSystem, directory: str, config: VmConfig,
               zero_fraction: float = 0.92,
               disk_populated: float = 0.45) -> "VmImage":
        """Materialize a golden image in ``fs`` at ``directory``."""
        if not fs.exists(directory):
            fs.mkdir(directory, parents=True)
        image = cls(fs, directory, config)
        cfg = fs.create(image.config_path)
        cfg.data.write(0, config.to_bytes())
        mem = fs.create(image.memory_path)
        mem.data = make_memory_state(config.memory_bytes, zero_fraction,
                                     seed=config.seed)
        disk = fs.create(image.disk_path)
        disk.data = make_virtual_disk(config.disk_bytes, disk_populated,
                                      seed=config.seed)
        return image

    @classmethod
    def load(cls, fs: FileSystem, directory: str) -> "VmImage":
        """Open an existing image directory."""
        raw = fs.read(f"{directory.rstrip('/')}/{cls.CONFIG_NAME}")
        return cls(fs, directory, VmConfig.from_bytes(raw))

    # -- inodes ----------------------------------------------------------------
    @property
    def memory_inode(self) -> Inode:
        return self.fs.lookup(self.memory_path)

    @property
    def disk_inode(self) -> Inode:
        return self.fs.lookup(self.disk_path)

    # -- middleware steps ----------------------------------------------------------
    def generate_metadata(self, block_size: int = 8192) -> FileMetadata:
        """Middleware pre-processing: zero map + file channel for the
        memory state (§3.2.2)."""
        return generate_memory_state_metadata(self.fs, self.memory_path,
                                              block_size=block_size)

    @property
    def total_state_bytes(self) -> int:
        """Size of everything an SCP-based clone must move."""
        return (self.memory_inode.data.size + self.disk_inode.data.size
                + len(self.config.to_bytes()))
