"""Virtual machine substrate: images, monitor, redo logs, cloning.

The paper's evaluation runs VMware GSX VMs whose state lives in regular
files — a memory state file (``.vmss``) and a virtual disk (``.vmdk``)
— served through GVFS.  This package reproduces that layer: realistic
image generation (zero-rich memory state, partially populated virtual
disk with a small working set), a monitor whose *resume* reads the
whole memory state and whose guests issue virtual-disk block I/O, redo
logs for non-persistent disks, and the §4.3 cloning procedure.
"""

from repro.vm.image import (
    GuestFile,
    RandomContent,
    VmConfig,
    VmImage,
    make_memory_state,
    make_virtual_disk,
)
from repro.vm.monitor import VirtualMachine, VmMonitor
from repro.vm.redolog import RedoLog
from repro.vm.cloning import CloneManager, CloneResult
from repro.vm.migration import MigrationManager, MigrationResult

__all__ = [
    "CloneManager",
    "CloneResult",
    "MigrationManager",
    "MigrationResult",
    "GuestFile",
    "RandomContent",
    "RedoLog",
    "VirtualMachine",
    "VmConfig",
    "VmImage",
    "VmMonitor",
    "make_memory_state",
    "make_virtual_disk",
]
