"""Redo logs for non-persistent virtual disks (§3.2.3).

A non-persistent VM leaves its golden virtual disk untouched:
modifications append to a redo log, and reads overlay the log onto the
base disk.  The log lives on the GVFS mount, so the proxy's write-back
cache absorbs its writes ("write-back can help save user time for
writes to the redo logs").
"""

from __future__ import annotations

from typing import Dict, Generator

__all__ = ["RedoLog"]


class RedoLog:
    """Copy-on-write overlay of a base virtual disk file.

    ``base`` and ``log`` are open-file objects (``NfsFile`` or
    ``LocalFile``) exposing ``read``/``write`` processes.
    """

    def __init__(self, env, base, log, block_size: int = 8192):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.env = env
        self.base = base
        self.log = log
        self.block_size = block_size
        # disk block index -> offset of its copy in the log file.
        self._map: Dict[int, int] = {}
        self._append_at = 0
        # Statistics
        self.blocks_logged = 0
        self.reads_from_log = 0
        self.reads_from_base = 0

    @property
    def log_bytes(self) -> int:
        """Current size of the redo log payload."""
        return self._append_at

    def overlaid_blocks(self) -> int:
        return len(self._map)

    # -- I/O ------------------------------------------------------------------
    def read(self, offset: int, count: int) -> Generator:
        """Process: read with log-over-base overlay; returns bytes."""
        if offset < 0 or count < 0:
            raise ValueError(f"bad read offset={offset} count={count}")
        out = bytearray()
        pos = offset
        end = offset + count
        while pos < end:
            idx, within = divmod(pos, self.block_size)
            take = min(self.block_size - within, end - pos)
            log_offset = self._map.get(idx)
            if log_offset is not None:
                data = yield from self.log.read(log_offset + within, take)
                self.reads_from_log += 1
            else:
                data = yield from self.base.read(pos, take)
                self.reads_from_base += 1
            out += data
            if len(data) < take:
                break  # EOF on the base disk
            pos += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> Generator:
        """Process: stage ``data`` into the log (copy-on-write)."""
        if offset < 0:
            raise ValueError(f"negative write offset: {offset}")
        pos = offset
        view = memoryview(bytes(data))
        while len(view):
            idx, within = divmod(pos, self.block_size)
            take = min(self.block_size - within, len(view))
            log_offset = self._map.get(idx)
            if log_offset is None:
                # First touch: allocate a log block; partial overwrites
                # copy the base block in first.
                log_offset = self._append_at
                self._append_at += self.block_size
                self._map[idx] = log_offset
                if within != 0 or take != self.block_size:
                    base_block = yield from self.base.read(
                        idx * self.block_size, self.block_size)
                    yield from self.log.write_sync(log_offset, base_block)
                self.blocks_logged += 1
            # Redo-log appends are synchronous at the VMM level too —
            # the write-back proxy is what makes them cheap (§3.2.3).
            yield from self.log.write_sync(log_offset + within,
                                           bytes(view[:take]))
            view = view[take:]
            pos += take
