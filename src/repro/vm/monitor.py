"""The VM monitor: resume, suspend, and guest execution.

Models the behaviour of a hosted VMM (VMware GSX, §4.1) as seen by the
file system — which is all that matters to GVFS:

* **resume** reads the VM configuration and then the *entire* memory
  state file, block by block ("resuming a VMware VM requires reading
  the entire memory state file"), then spends a fixed device-init time;
* **suspend** writes the entire memory state back;
* a running guest turns application file accesses into scattered
  virtual-disk block I/O, filtered through a **guest page cache** (the
  VM's own RAM) — re-reads of a warm working set never leave the VM;
* guest writes go to the redo log (non-persistent disks) or the virtual
  disk itself (persistent).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.net.topology import Host
from repro.nfs.protocol import NFS_BLOCK_SIZE
from repro.vm.image import GuestFile, RandomContent, VmConfig, VmImage
from repro.vm.redolog import RedoLog

__all__ = ["VirtualMachine", "VmMonitor"]


class VirtualMachine:
    """A live (resumed) VM instance on a compute server."""

    #: Fraction of guest RAM usable as guest page cache.
    GUEST_CACHE_FRACTION = 0.6
    #: CPU cost of a guest-page-cache hit (copy + syscall inside guest).
    GUEST_HIT_CPU = 4e-6

    def __init__(self, env, host: Host, config: VmConfig, disk_file,
                 redo: Optional[RedoLog], block_size: int = NFS_BLOCK_SIZE):
        self.env = env
        self.host = host
        self.config = config
        self.disk_file = disk_file
        self.redo = redo
        self.block_size = block_size
        cache_blocks = int(config.memory_bytes * self.GUEST_CACHE_FRACTION
                           // block_size)
        self._guest_cache: OrderedDict = OrderedDict()
        self._guest_cache_capacity = max(cache_blocks, 16)
        self.running = True
        # User data (attached by middleware; see attach_user_data).
        self.user_mount = None
        self.user_dir = ""
        self.user_bytes_read = 0
        self.user_bytes_written = 0
        # Statistics
        self.guest_cache_hits = 0
        self.guest_cache_misses = 0
        self.disk_bytes_read = 0
        self.disk_bytes_written = 0

    # -- virtual disk I/O ----------------------------------------------------
    def _disk_read(self, offset: int, count: int) -> Generator:
        if self.redo is not None:
            data = yield from self.redo.read(offset, count)
        else:
            data = yield from self.disk_file.read(offset, count)
        self.disk_bytes_read += len(data)
        return data

    def _disk_write(self, offset: int, data: bytes) -> Generator:
        # A hosted VMM writes virtual-disk state synchronously (O_SYNC)
        # for guest-visible durability — which is why WAN writes without
        # a write-back proxy dominate the paper's I/O-intensive phases.
        if self.redo is not None:
            yield from self.redo.write(offset, data)
        else:
            yield from self.disk_file.write_sync(offset, data)
        self.disk_bytes_written += len(data)

    def _guest_cache_touch(self, offset: int) -> bool:
        if offset in self._guest_cache:
            self._guest_cache.move_to_end(offset)
            self.guest_cache_hits += 1
            return True
        self.guest_cache_misses += 1
        return False

    def _guest_cache_insert(self, offset: int) -> None:
        self._guest_cache[offset] = True
        self._guest_cache.move_to_end(offset)
        while len(self._guest_cache) > self._guest_cache_capacity:
            self._guest_cache.popitem(last=False)

    # -- guest file operations ---------------------------------------------------
    def read_guest_file(self, gf: GuestFile, fraction: float = 1.0) -> Generator:
        """Process: the guest reads (a prefix ``fraction`` of) a file.

        Blocks found in the guest page cache cost only guest CPU; the
        rest become virtual-disk block reads at the file's scattered
        disk offsets.
        """
        offsets = gf.block_offsets(self.config.disk_bytes, self.block_size,
                                   self.config.seed)
        n = max(int(len(offsets) * fraction), 1) if offsets else 0
        hits = 0
        for offset in offsets[:n]:
            if self._guest_cache_touch(offset):
                hits += 1
                continue
            yield from self._disk_read(offset, self.block_size)
            self._guest_cache_insert(offset)
        if hits:
            # Guest CPU for in-cache copies, charged in one batch.
            yield self.host.compute(hits * self.GUEST_HIT_CPU)

    def write_guest_file(self, gf: GuestFile, fraction: float = 1.0,
                         sync: bool = False) -> Generator:
        """Process: the guest writes (a prefix of) a file.

        Written blocks enter the guest cache; the guest's own flusher
        pushes them to the virtual disk / redo log, modelled as the
        write happening inline (``sync``) or through the guest cache
        with the device write still charged (journalled data reaches
        the virtual disk within the guest flush interval — which a
        several-second benchmark iteration always exceeds).
        """
        del sync  # both paths charge the device write; kept for API clarity
        offsets = gf.block_offsets(self.config.disk_bytes, self.block_size,
                                   self.config.seed)
        n = max(int(len(offsets) * fraction), 1) if offsets else 0
        payload = RandomContent(self.config.seed ^ 0x5EED)
        for i, offset in enumerate(offsets[:n]):
            yield from self._disk_write(offset,
                                        payload.chunk(i)[:self.block_size])
            self._guest_cache_insert(offset)

    def compute(self, cpu_seconds: float):
        """Guest computation runs on the host CPU (one vCPU)."""
        return self.host.compute(cpu_seconds)

    def drop_guest_caches(self) -> None:
        """Forget the guest page cache (fresh-boot conditions)."""
        self._guest_cache.clear()

    # -- user data (Figure 1's data servers) -------------------------------
    def attach_user_data(self, mount, base_dir: str) -> None:
        """Mount the user's Grid virtual file system inside the VM.

        Per §2, middleware builds the virtual workspace "by mounting the
        user's Grid virtual file system inside the VM clone": user files
        live on a *data server* and are accessed through their own GVFS
        session, independent of the VM image's session.
        """
        self.user_mount = mount
        self.user_dir = base_dir.rstrip("/")

    def _require_user_data(self):
        if getattr(self, "user_mount", None) is None:
            raise RuntimeError("no user data mounted in this VM")

    def read_user_file(self, name: str) -> Generator:
        """Process: the guest reads a user file via the data-server
        mount; returns the bytes."""
        self._require_user_data()
        f = yield from self.user_mount.open(f"{self.user_dir}/{name}")
        out = bytearray()
        offset = 0
        while offset < f.size:
            data = yield from f.read(offset, self.block_size)
            if not data:
                break
            out += data
            offset += len(data)
        yield from f.close()
        self.user_bytes_read = getattr(self, "user_bytes_read", 0) + len(out)
        return bytes(out)

    def write_user_file(self, name: str, payload: bytes) -> Generator:
        """Process: the guest writes a user file via the data mount."""
        self._require_user_data()
        f = yield from self.user_mount.create(
            f"{self.user_dir}/{name}", exclusive=False)
        offset = 0
        view = memoryview(payload)
        while offset < len(view):
            take = min(self.block_size, len(view) - offset)
            yield from f.write(offset, bytes(view[offset:offset + take]))
            offset += take
        yield from f.close()
        self.user_bytes_written = (getattr(self, "user_bytes_written", 0)
                                   + len(payload))


class VmMonitor:
    """VMM on one compute server, storing VM state in mounted files."""

    #: Fixed device re-initialization time on resume (VMM overhead).
    DEVICE_INIT_SECONDS = 8.0
    #: CPU cost the VMM spends per memory-state block restored
    #: (address-space rebuild + device state replay).
    RESTORE_CPU_PER_BLOCK = 100e-6

    def __init__(self, env, host: Host, block_size: int = NFS_BLOCK_SIZE):
        self.env = env
        self.host = host
        self.block_size = block_size

    def resume(self, mount, vm_dir: str,
               disk_mount=None, disk_dir: Optional[str] = None,
               redo_mount=None, redo_dir: Optional[str] = None,
               redo_name: Optional[str] = None,
               verify_against=None) -> Generator:
        """Process: resume the VM whose state sits in ``mount:vm_dir``.

        ``disk_mount``/``disk_dir`` override where the virtual disk is
        opened (cloning symlinks the disk from a different place);
        ``redo_mount``/``redo_dir``/``redo_name`` place the redo log of
        a non-persistent disk (clones keep redo logs on the GVFS mount
        so the proxy's write-back absorbs them).  Returns a
        :class:`VirtualMachine`.
        """
        vm_dir = vm_dir.rstrip("/")
        cfg_file = yield from mount.open(f"{vm_dir}/{VmImage.CONFIG_NAME}")
        raw = yield from cfg_file.read(0, 65536)
        config = VmConfig.from_bytes(raw)

        # Read the ENTIRE memory state file, block by block.
        mem_file = yield from mount.open(f"{vm_dir}/{VmImage.MEMORY_NAME}")
        offset = 0
        blocks = 0
        while offset < mem_file.size:
            data = yield from mem_file.read(offset, self.block_size)
            if not data:
                break
            if verify_against is not None:
                expected = verify_against.read(offset, len(data))
                if data != expected:
                    raise AssertionError(
                        f"memory state corruption at offset {offset}")
            blocks += 1
            offset += len(data)
        # VMM CPU for rebuilding the address space, charged in one batch.
        yield self.host.compute(blocks * self.RESTORE_CPU_PER_BLOCK)
        yield from mem_file.close()

        # Open the virtual disk (possibly behind a symbolic link).
        dmount = disk_mount if disk_mount is not None else mount
        ddir = (disk_dir if disk_dir is not None else vm_dir).rstrip("/")
        disk_file = yield from dmount.open(f"{ddir}/{VmImage.DISK_NAME}")

        redo = None
        if not config.persistent:
            rmount = redo_mount if redo_mount is not None else mount
            rdir = (redo_dir if redo_dir is not None else vm_dir).rstrip("/")
            rname = redo_name or f"{VmImage.DISK_NAME}.REDO"
            redo_file = yield from rmount.create(f"{rdir}/{rname}",
                                                 exclusive=False)
            redo = RedoLog(self.env, disk_file, redo_file, self.block_size)

        yield self.env.timeout(self.DEVICE_INIT_SECONDS)
        return VirtualMachine(self.env, self.host, config, disk_file, redo,
                              self.block_size)

    def suspend(self, mount, vm_dir: str, vm: VirtualMachine) -> Generator:
        """Process: write the VM's entire memory state back to its files."""
        vm_dir = vm_dir.rstrip("/")
        mem_file = yield from mount.open(f"{vm_dir}/{VmImage.MEMORY_NAME}")
        payload = RandomContent(vm.config.seed ^ 0xD1E, zero_fraction=0.85)
        offset = 0
        size = vm.config.memory_bytes
        idx = 0
        while offset < size:
            take = min(self.block_size, size - offset)
            yield from mem_file.write(offset, payload.chunk(idx)[:take])
            offset += take
            idx += 1
        yield from mem_file.close()
        vm.running = False
