"""VM cloning (§3.2.3, evaluated in §4.3).

The cloning scheme: copy the VM configuration file, copy the VM memory
state file, build symbolic links to the virtual disk files, configure
the cloned VM, and resume it.  Config and memory state are copied
*through GVFS* onto the compute server's local disk — which is where
the meta-data extensions pay off: zero-filled blocks never cross the
wire, and the non-zero payload arrives compressed through the
file-based channel.  The virtual disk is never copied; the clone reads
it on demand through the mount, with modifications going to a per-clone
redo log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.core.session import LocalMount
from repro.nfs.protocol import NFS_BLOCK_SIZE
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VirtualMachine, VmMonitor

__all__ = ["CloneManager", "CloneResult"]


@dataclass
class CloneResult:
    """Outcome of one cloning operation."""

    vm: Optional[VirtualMachine]
    clone_dir: str
    total_seconds: float
    phases: Dict[str, float] = field(default_factory=dict)


class CloneManager:
    """Clones golden images from a GVFS mount onto a compute server."""

    #: Time middleware spends customizing the clone (user config, network
    #: identity, boot-script edits) — fixed cost on the compute node.
    CUSTOMIZE_SECONDS = 5.0

    def __init__(self, env, monitor: VmMonitor, mount,
                 local_mount: LocalMount,
                 block_size: int = NFS_BLOCK_SIZE):
        self.env = env
        self.monitor = monitor
        self.mount = mount              # GVFS mount holding golden images
        self.local = local_mount        # compute-server local filesystem
        self.block_size = block_size

    # ------------------------------------------------------------------ steps
    def _copy_config(self, image_dir: str, clone_dir: str,
                     clone_name: str) -> Generator:
        src = yield from self.mount.open(f"{image_dir}/{VmImage.CONFIG_NAME}")
        raw = yield from src.read(0, 65536)
        config = VmConfig.from_bytes(raw)
        dst = yield from self.local.create(
            f"{clone_dir}/{VmImage.CONFIG_NAME}", exclusive=False)
        yield from dst.write(0, raw)
        yield from dst.close()
        return config

    def _copy_memory_state(self, image_dir: str, clone_dir: str) -> Generator:
        """Stream the memory state through GVFS into a local copy."""
        src = yield from self.mount.open(f"{image_dir}/{VmImage.MEMORY_NAME}")
        dst = yield from self.local.create(
            f"{clone_dir}/{VmImage.MEMORY_NAME}", exclusive=False)
        offset = 0
        while offset < src.size:
            data = yield from src.read(offset, self.block_size)
            if not data:
                break
            yield from dst.write(offset, data)
            offset += len(data)
        yield from src.close()
        yield from dst.close()
        return offset

    # ------------------------------------------------------------------ clone
    def clone(self, image_dir: str, clone_dir: str,
              clone_name: Optional[str] = None,
              resume: bool = True) -> Generator:
        """Process: clone ``image_dir`` (on the mount) to ``clone_dir``
        (compute-local) and resume it; returns :class:`CloneResult`."""
        image_dir = image_dir.rstrip("/")
        clone_dir = clone_dir.rstrip("/")
        clone_name = clone_name or clone_dir.rsplit("/", 1)[-1]
        start = self.env.now
        phases: Dict[str, float] = {}

        if not self.local.lfs.fs.exists(clone_dir):
            self.local.lfs.fs.mkdir(clone_dir, parents=True)

        t = self.env.now
        config = yield from self._copy_config(image_dir, clone_dir, clone_name)
        phases["copy_config"] = self.env.now - t

        t = self.env.now
        yield from self._copy_memory_state(image_dir, clone_dir)
        phases["copy_memory"] = self.env.now - t

        # Symbolic links to the virtual disk files, not copies.
        t = self.env.now
        link_path = f"{clone_dir}/{VmImage.DISK_NAME}"
        if not self.local.lfs.fs.exists(link_path):
            yield from self.local.symlink(
                link_path, f"{image_dir}/{VmImage.DISK_NAME}")
        phases["link_disk"] = self.env.now - t

        # Configure the clone with user-specific information.
        t = self.env.now
        yield self.monitor.host.compute(self.CUSTOMIZE_SECONDS)
        cfg = yield from self.local.open(
            f"{clone_dir}/{VmImage.CONFIG_NAME}")
        renamed = VmConfig(name=clone_name, memory_mb=config.memory_mb,
                           disk_gb=config.disk_gb, os_name=config.os_name,
                           persistent=config.persistent, seed=config.seed)
        yield from cfg.write(0, renamed.to_bytes())
        yield from cfg.close()
        phases["configure"] = self.env.now - t

        vm = None
        if resume:
            t = self.env.now
            vm = yield from self.monitor.resume(
                self.local, clone_dir,
                disk_mount=self.mount, disk_dir=image_dir,
                redo_mount=self.mount, redo_dir=image_dir,
                redo_name=f"{VmImage.DISK_NAME}.{clone_name}.REDO")
            phases["resume"] = self.env.now - t

        return CloneResult(vm=vm, clone_dir=clone_dir,
                           total_seconds=self.env.now - start, phases=phases)
