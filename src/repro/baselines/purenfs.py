"""Pure-NFS cloning baseline: no proxies, no caches, no meta-data.

"If the VM state is not copied but read from a pure NFS-mounted
directory, it takes 2060 seconds to clone a VM because the block-based
transfer of the memory state file is very slow" (§4.3.2): resume reads
the entire memory state 8 KB at a time over the WAN, each read paying a
round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.net.topology import Testbed
from repro.nfs.client import MountOptions, NfsClient
from repro.nfs.server import NfsServer
from repro.nfs.rpc import RpcClient
from repro.vm.monitor import VmMonitor

__all__ = ["PureNfsCloneBaseline"]


@dataclass
class PureNfsCloneResult:
    total_seconds: float


class PureNfsCloneBaseline:
    """Resume a VM directly off a plain WAN NFS mount."""

    def __init__(self, testbed: Testbed, server: NfsServer,
                 compute_index: int = 0,
                 mount_options: Optional[MountOptions] = None):
        self.testbed = testbed
        self.env = testbed.env
        self.compute = testbed.compute[compute_index]
        # Plain NFS: the kernel client talks to the kernel server over
        # the raw WAN route — no tunnels, no proxies.
        rpc = RpcClient(self.env, server,
                        testbed.wan_route(compute_index),
                        testbed.wan_route_back(compute_index),
                        name="purenfs")
        client = NfsClient(self.env, name="purenfs-client")
        self.mount = client.mount("/nfs", rpc, server.root_fh,
                                  mount_options or MountOptions())

    def clone(self, image_dir: str) -> Generator:
        """Process: resume the VM straight from the mount (no copying)."""
        env = self.env
        t0 = env.now
        monitor = VmMonitor(env, self.compute)
        yield env.process(monitor.resume(self.mount, image_dir))
        return PureNfsCloneResult(total_seconds=env.now - t0)
