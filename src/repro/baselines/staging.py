"""File-staging baseline (GASS/GridFTP style, §3.1 and §4.2.2).

Staging transfers *entire* files between image server and compute
server at session boundaries: the full VM state is downloaded before
the session starts (the paper's 2818 s comparison for the LaTeX
session) and uploaded when it ends (4633 s) — regardless of how little
of it the session actually touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.net.ssh import ScpTransfer
from repro.net.topology import Testbed
from repro.vm.image import VmImage

__all__ = ["StagingBaseline"]


@dataclass
class StagingResult:
    download_seconds: float = 0.0
    upload_seconds: float = 0.0


class StagingBaseline:
    """Whole-state download/upload at session boundaries."""

    #: Upload streams of the era ran markedly below download rates
    #: (asymmetric paths / congestion toward the image server); the
    #: paper's pair is 2818 s down vs 4633 s up for the same state.
    UPLOAD_SLOWDOWN = 1.6

    def __init__(self, testbed: Testbed, compute_index: int = 0):
        self.testbed = testbed
        self.env = testbed.env
        self.down = ScpTransfer(self.env,
                                testbed.wan_route_back(compute_index),
                                name="stage-down")
        up = ScpTransfer(self.env, testbed.wan_route(compute_index),
                         name="stage-up")
        up.tcp_window = int(up.tcp_window / self.UPLOAD_SLOWDOWN)
        self.up = up

    def state_bytes(self, image: VmImage) -> int:
        return image.total_state_bytes

    def download(self, image: VmImage) -> Generator:
        """Process: stage the whole VM state in; returns seconds."""
        t0 = self.env.now
        yield self.env.process(self.down.transfer(image.total_state_bytes))
        return self.env.now - t0

    def upload(self, image: VmImage) -> Generator:
        """Process: stage the whole (modified) VM state back out."""
        t0 = self.env.now
        yield self.env.process(self.up.transfer(image.total_state_bytes))
        return self.env.now - t0

    def session(self, image: VmImage) -> Generator:
        """Process: download + upload bracket; returns StagingResult."""
        down = yield self.env.process(self.download(image))
        up = yield self.env.process(self.upload(image))
        return StagingResult(download_seconds=down, upload_seconds=up)
