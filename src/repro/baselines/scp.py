"""SCP full-file cloning baseline.

"If the VM is cloned using SCP for full file copying, it takes
approximately twenty minutes to transfer the entire image" (§4.3.2):
the whole uncompressed state — virtual disk, memory state, config —
crosses the WAN as one TCP-window-limited stream, after which the VM
resumes from purely local files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.session import LocalMount
from repro.net.ssh import ScpTransfer
from repro.net.topology import Testbed
from repro.vm.image import VmImage
from repro.vm.monitor import VmMonitor

__all__ = ["ScpCloneBaseline"]


@dataclass
class ScpCloneResult:
    transfer_seconds: float
    resume_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.resume_seconds


class ScpCloneBaseline:
    """Clone by SCP-ing the entire image, then resume locally."""

    def __init__(self, testbed: Testbed, compute_index: int = 0):
        self.testbed = testbed
        self.env = testbed.env
        self.compute = testbed.compute[compute_index]
        self.scp = ScpTransfer(self.env,
                               testbed.wan_route_back(compute_index),
                               name="scp-clone")

    def clone(self, image: VmImage, clone_dir: str,
              resume: bool = True) -> Generator:
        """Process: full-file transfer + local resume; returns result."""
        env = self.env
        t0 = env.now
        yield env.process(self.scp.transfer(image.total_state_bytes))
        # Materialize the local replica (contents shared logically).
        local_fs = self.compute.local.fs
        clone_dir = clone_dir.rstrip("/")
        if not local_fs.exists(clone_dir):
            local_fs.mkdir(clone_dir, parents=True)
        for name in (VmImage.CONFIG_NAME, VmImage.MEMORY_NAME,
                     VmImage.DISK_NAME):
            src = image.fs.lookup(f"{image.directory}/{name}")
            dst = local_fs.create(f"{clone_dir}/{name}", exclusive=False)
            dst.data = src.data.copy()
        # The received bytes were written to the local disk while the
        # stream arrived; at ~1.7 MB/s the 40 MB/s disk never lags, so
        # no extra foreground time is charged.
        transfer_seconds = env.now - t0

        resume_seconds = 0.0
        if resume:
            t1 = env.now
            monitor = VmMonitor(env, self.compute)
            local = LocalMount(self.compute.local)
            yield env.process(monitor.resume(local, clone_dir))
            resume_seconds = env.now - t1
        return ScpCloneResult(transfer_seconds, resume_seconds)
