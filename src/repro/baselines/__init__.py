"""Comparator systems the paper measures GVFS against.

* :mod:`~repro.baselines.scp` — cloning by copying the entire image
  with SCP before resuming (the paper's ~1127 s comparator);
* :mod:`~repro.baselines.purenfs` — resuming straight off a plain
  NFS-mounted directory with no GVFS extensions (~2060 s);
* :mod:`~repro.baselines.staging` — GASS/file-staging style whole-state
  download at session start and upload at session end (the 2818 s /
  4633 s numbers framing Figure 4).
"""

from repro.baselines.scp import ScpCloneBaseline
from repro.baselines.purenfs import PureNfsCloneBaseline
from repro.baselines.staging import StagingBaseline

__all__ = ["PureNfsCloneBaseline", "ScpCloneBaseline", "StagingBaseline"]
