"""GridFTP-style parallel-stream bulk transfer (§6 future work).

A single 2003-era TCP stream over a long fat pipe is window-limited to
``window / RTT``; GridFTP's answer was N parallel streams striping one
file, multiplying per-transfer throughput until the raw path saturates.
The paper names "protocols such as GridFTP for inter-proxy transfers"
as the way to speed up the file-based data channel — this class is a
drop-in replacement for :class:`~repro.net.ssh.ScpTransfer` there.
"""

from __future__ import annotations

from typing import Generator

from repro.net.link import Route
from repro.net.ssh import DEFAULT_TCP_WINDOW, ScpTransfer
from repro.sim import AllOf, Environment

__all__ = ["GridFtpTransfer"]


class GridFtpTransfer:
    """Striped multi-stream transfer over one route.

    ``transfer(nbytes)`` splits the payload into ``streams`` stripes
    and moves them concurrently, each stripe paced like one TCP stream;
    the shared links of the route arbitrate contention naturally.
    """

    def __init__(self, env: Environment, route: Route, streams: int = 4,
                 cipher_bps: float = 35e6,
                 tcp_window: int = DEFAULT_TCP_WINDOW,
                 name: str = "gridftp"):
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self.env = env
        self.route = route
        self.streams = streams
        self.name = name
        self._stripes = [
            ScpTransfer(env, route, cipher_bps=cipher_bps,
                        tcp_window=tcp_window, name=f"{name}.s{i}")
            for i in range(streams)]
        self.bytes_transferred = 0

    @property
    def effective_bandwidth(self) -> float:
        """Aggregate streaming rate: N window-limited streams, capped by
        the route's raw bottleneck."""
        per_stream = self._stripes[0].effective_bandwidth
        return min(per_stream * self.streams,
                   self.route.bottleneck_bandwidth)

    def transfer_time(self, nbytes: int) -> float:
        """Analytic no-contention transfer time."""
        rtt = 2.0 * self.route.latency
        return rtt + nbytes / self.effective_bandwidth

    def transfer(self, nbytes: int) -> Generator:
        """Process: move ``nbytes`` as ``streams`` concurrent stripes."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        base, extra = divmod(nbytes, self.streams)
        jobs = []
        for i, stripe in enumerate(self._stripes):
            stripe_bytes = base + (1 if i < extra else 0)
            if stripe_bytes:
                jobs.append(self.env.process(stripe.transfer(stripe_bytes)))
        if jobs:
            yield AllOf(self.env, jobs)
        self.bytes_transferred += nbytes
