"""Hosts and the paper's experimental topology.

The HPDC'04 testbed (§4.1):

* **LAN image server** — dual 1.8 GHz PIII, 1 GB RAM, at UF.
* **WAN image server** — dual 1 GHz PIII, 1 GB RAM, at Northwestern,
  reached across Abilene.
* **Compute servers** — UF cluster nodes (1.1 GHz PIII for the
  application runs; quad 2.4 GHz Xeon for the cloning runs), 100 Mbit/s
  Ethernet to the LAN image server.

Calibration constants below are set once from era-accurate values
(100 Mbit Ethernet; Abilene UF↔NWU one-way delay ~19 ms; 64 KiB TCP
windows) and shared by *every* experiment — no per-figure tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.link import LinkMode, Route, duplex
from repro.sim import Environment, FifoResource
from repro.storage.disk import DiskParams, SCSI_2003
from repro.storage.localfs import LocalFileSystem

__all__ = ["Host", "LINK_PROFILES", "NetworkConditions", "Testbed",
           "make_paper_testbed", "resolve_profile",
           "LAN_2003", "RACK_2003", "SITE_2003", "WAN_2003"]


@dataclass(frozen=True)
class NetworkConditions:
    """One-way latency (s) and raw bandwidth (bytes/s) of a path segment."""

    latency: float
    bandwidth: float


#: 100 Mbit/s switched Ethernet, sub-millisecond one-way delay.
LAN_2003 = NetworkConditions(latency=0.1e-3, bandwidth=12.5e6)

#: Abilene path UF <-> Northwestern: ~38 ms RTT; the shared campus/
#: backbone segment offers far more raw bandwidth than one 2003 TCP
#: stream can use (per-stream throughput is window-limited instead).
WAN_2003 = NetworkConditions(latency=18.8e-3, bandwidth=30e6)

#: Top-of-rack gigabit interconnect (era clusters were moving the
#: intra-rack hop to 1000BASE-T): one switch hop, negligible delay.
RACK_2003 = NetworkConditions(latency=0.05e-3, bandwidth=125e6)

#: Campus/site backbone: still 100 Mbit per access port but several
#: switch/router hops away, so noticeably more one-way delay than the
#: single-switch LAN segment.
SITE_2003 = NetworkConditions(latency=0.5e-3, bandwidth=12.5e6)

#: Named per-hop link profiles for cascade levels and added hosts —
#: a rack-level cache sits one gigabit hop away, a site cache across
#: the campus backbone, the origin across the WAN.
LINK_PROFILES: Dict[str, NetworkConditions] = {
    "lan": LAN_2003,
    "rack": RACK_2003,
    "site": SITE_2003,
    "wan": WAN_2003,
}


def resolve_profile(profile) -> NetworkConditions:
    """Map a profile name (or pass through conditions) to
    :class:`NetworkConditions`."""
    if isinstance(profile, NetworkConditions):
        return profile
    try:
        return LINK_PROFILES[profile]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown link profile {profile!r}; choose from "
            f"{sorted(LINK_PROFILES)} or pass NetworkConditions") from None


class Host:
    """A machine: CPUs, a local disk/page-cache, and a name.

    CPU capacity is a FIFO resource; compute phases of workloads and
    CPU-bound pipeline stages (gzip) hold one CPU while they run so
    co-located work contends realistically.
    """

    def __init__(self, env: Environment, name: str, cpus: int = 1,
                 cpu_speed: float = 1.0,
                 disk_params: DiskParams = SCSI_2003,
                 page_cache_bytes: int = 512 * 1024 * 1024):
        self.env = env
        self.name = name
        self.cpu_speed = float(cpu_speed)
        self.cpu = FifoResource(env, capacity=cpus, name=f"{name}.cpu")
        self.local = LocalFileSystem(env, name=f"{name}.local",
                                     disk_params=disk_params,
                                     page_cache_bytes=page_cache_bytes)

    def compute(self, cpu_seconds: float):
        """Process: hold one CPU for ``cpu_seconds`` (scaled by speed)."""
        def _run():
            req = self.cpu.request()
            try:
                yield req
                yield self.env.timeout(cpu_seconds / self.cpu_speed)
            finally:
                self.cpu.release(req)
        return self.env.process(_run(), name=f"{self.name}.compute")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name}>"


class Testbed:
    """The wired-up testbed: hosts plus routes between them.

    Routes are derived from per-host access links and shared segments,
    so concurrent flows (e.g. eight parallel clonings) contend exactly
    where the real topology would make them contend: on the image
    server's access link and on endpoint CPUs.
    """

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(self, env: Environment, n_compute: int = 1,
                 lan: NetworkConditions = LAN_2003,
                 wan: NetworkConditions = WAN_2003,
                 compute_cpu_speed: float = 1.0,
                 compute_page_cache_bytes: int = 512 * 1024 * 1024,
                 link_mode: LinkMode = LinkMode.EXACT):
        if n_compute < 1:
            raise ValueError("need at least one compute server")
        self.env = env
        self.lan_conditions = lan
        self.wan_conditions = wan
        self.link_mode = link_mode

        # Hosts. CPU speeds are relative to the 1.1 GHz PIII compute node.
        self.compute: List[Host] = [
            Host(env, f"compute{i}", cpus=4, cpu_speed=compute_cpu_speed,
                 page_cache_bytes=compute_page_cache_bytes)
            for i in range(n_compute)]
        self.lan_server = Host(env, "lan-image-server", cpus=2, cpu_speed=1.6)
        self.wan_server = Host(env, "wan-image-server", cpus=2, cpu_speed=0.9)

        # Access links (full duplex pairs): one per compute node, one per
        # image server; plus the shared WAN segment.
        self._access: Dict[str, tuple] = {}
        for host in [*self.compute, self.lan_server, self.wan_server]:
            self._access[host.name] = duplex(
                env, lan.latency, lan.bandwidth, name=f"{host.name}.eth",
                mode=link_mode)
        self.wan_segment = duplex(env, wan.latency, wan.bandwidth,
                                  name="abilene", mode=link_mode)

    # -- host construction --------------------------------------------------
    def add_host(self, name: str, cpus: int = 2, cpu_speed: float = 1.6,
                 page_cache_bytes: int = 512 * 1024 * 1024,
                 conditions: Optional[NetworkConditions] = None) -> Host:
        """Add an attached host (e.g. an intermediate cascade-cache
        server) with its own access-link pair, routable to every other
        host via :meth:`route`.  Defaults mirror the LAN image server;
        ``conditions`` picks the access-link calibration (a
        :data:`LINK_PROFILES` entry such as rack or site conditions)
        instead of the testbed-wide LAN segment.
        """
        if name in self._access:
            raise ValueError(f"host {name!r} already exists")
        conditions = conditions or self.lan_conditions
        host = Host(self.env, name, cpus=cpus, cpu_speed=cpu_speed,
                    page_cache_bytes=page_cache_bytes)
        self._access[name] = duplex(
            self.env, conditions.latency, conditions.bandwidth,
            name=f"{name}.eth", mode=self.link_mode)
        return host

    # -- route construction -------------------------------------------------
    def route(self, src: Host, dst: Host, via_wan: bool = False) -> Route:
        """A route between any two attached hosts.  ``via_wan`` inserts
        the shared Abilene segment (cache-cascade hops between LAN hosts
        stay on campus Ethernet)."""
        return self._route(src, dst, via_wan)

    def _route(self, src: Host, dst: Host, via_wan: bool) -> Route:
        src_up, _ = self._access[src.name]
        _, dst_down = self._access[dst.name]
        hops = [src_up]
        if via_wan:
            # Forward direction of the shared segment is UF -> NWU.
            hops.append(self.wan_segment[0] if dst is self.wan_server
                        else self.wan_segment[1])
        hops.append(dst_down)
        return Route(hops, name=f"{src.name}->{dst.name}")

    def lan_route(self, compute_index: int = 0) -> Route:
        """Compute node → LAN image server."""
        return self._route(self.compute[compute_index], self.lan_server, False)

    def lan_route_back(self, compute_index: int = 0) -> Route:
        """LAN image server → compute node."""
        return self._route(self.lan_server, self.compute[compute_index], False)

    def wan_route(self, compute_index: int = 0) -> Route:
        """Compute node → WAN image server (across Abilene)."""
        return self._route(self.compute[compute_index], self.wan_server, True)

    def wan_route_back(self, compute_index: int = 0) -> Route:
        """WAN image server → compute node."""
        return self._route(self.wan_server, self.compute[compute_index], True)

    def lan_server_route(self, to_wan: bool = True) -> Route:
        """LAN image server → WAN image server (2nd-level cache fills)."""
        return self._route(self.lan_server, self.wan_server, True)

    def lan_server_route_back(self) -> Route:
        return self._route(self.wan_server, self.lan_server, True)


def make_paper_testbed(env: Optional[Environment] = None,
                       n_compute: int = 1, **kwargs) -> Testbed:
    """The testbed of §4.1 with the calibrated era constants.

    ``kwargs`` forward to :class:`Testbed` (e.g. ``compute_cpu_speed``
    for the quad-Xeon cloning nodes).
    """
    return Testbed(env or Environment(), n_compute=n_compute, **kwargs)
