"""Hosts and the paper's experimental topology.

The HPDC'04 testbed (§4.1):

* **LAN image server** — dual 1.8 GHz PIII, 1 GB RAM, at UF.
* **WAN image server** — dual 1 GHz PIII, 1 GB RAM, at Northwestern,
  reached across Abilene.
* **Compute servers** — UF cluster nodes (1.1 GHz PIII for the
  application runs; quad 2.4 GHz Xeon for the cloning runs), 100 Mbit/s
  Ethernet to the LAN image server.

Calibration constants below are set once from era-accurate values
(100 Mbit Ethernet; Abilene UF↔NWU one-way delay ~19 ms; 64 KiB TCP
windows) and shared by *every* experiment — no per-figure tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.link import LinkMode, Route, duplex
from repro.sim import AnyOf, Environment, Event, FifoResource
from repro.storage.disk import DiskParams, SCSI_2003
from repro.storage.localfs import LocalFileSystem

__all__ = ["Host", "LINK_PROFILES", "NetworkConditions", "PeerCacheDirectory",
           "PeerMember", "Testbed", "make_paper_testbed", "resolve_profile",
           "LAN_2003", "RACK_2003", "SITE_2003", "WAN_2003"]


@dataclass(frozen=True)
class NetworkConditions:
    """One-way latency (s) and raw bandwidth (bytes/s) of a path segment."""

    latency: float
    bandwidth: float


#: 100 Mbit/s switched Ethernet, sub-millisecond one-way delay.
LAN_2003 = NetworkConditions(latency=0.1e-3, bandwidth=12.5e6)

#: Abilene path UF <-> Northwestern: ~38 ms RTT; the shared campus/
#: backbone segment offers far more raw bandwidth than one 2003 TCP
#: stream can use (per-stream throughput is window-limited instead).
WAN_2003 = NetworkConditions(latency=18.8e-3, bandwidth=30e6)

#: Top-of-rack gigabit interconnect (era clusters were moving the
#: intra-rack hop to 1000BASE-T): one switch hop, negligible delay.
RACK_2003 = NetworkConditions(latency=0.05e-3, bandwidth=125e6)

#: Campus/site backbone: still 100 Mbit per access port but several
#: switch/router hops away, so noticeably more one-way delay than the
#: single-switch LAN segment.
SITE_2003 = NetworkConditions(latency=0.5e-3, bandwidth=12.5e6)

#: Named per-hop link profiles for cascade levels and added hosts —
#: a rack-level cache sits one gigabit hop away, a site cache across
#: the campus backbone, the origin across the WAN.
LINK_PROFILES: Dict[str, NetworkConditions] = {
    "lan": LAN_2003,
    "rack": RACK_2003,
    "site": SITE_2003,
    "wan": WAN_2003,
}


def resolve_profile(profile) -> NetworkConditions:
    """Map a profile name (or pass through conditions) to
    :class:`NetworkConditions`."""
    if isinstance(profile, NetworkConditions):
        return profile
    try:
        return LINK_PROFILES[profile]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown link profile {profile!r}; choose from "
            f"{sorted(LINK_PROFILES)} or pass NetworkConditions") from None


class Host:
    """A machine: CPUs, a local disk/page-cache, and a name.

    CPU capacity is a FIFO resource; compute phases of workloads and
    CPU-bound pipeline stages (gzip) hold one CPU while they run so
    co-located work contends realistically.
    """

    def __init__(self, env: Environment, name: str, cpus: int = 1,
                 cpu_speed: float = 1.0,
                 disk_params: DiskParams = SCSI_2003,
                 page_cache_bytes: int = 512 * 1024 * 1024):
        self.env = env
        self.name = name
        self.cpu_speed = float(cpu_speed)
        self.cpu = FifoResource(env, capacity=cpus, name=f"{name}.cpu")
        self.local = LocalFileSystem(env, name=f"{name}.local",
                                     disk_params=disk_params,
                                     page_cache_bytes=page_cache_bytes)

    def compute(self, cpu_seconds: float):
        """Process: hold one CPU for ``cpu_seconds`` (scaled by speed)."""
        def _run():
            req = self.cpu.request()
            try:
                yield req
                yield self.env.timeout(cpu_seconds / self.cpu_speed)
            finally:
                self.cpu.release(req)
        return self.env.process(_run(), name=f"{self.name}.compute")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name}>"


class PeerMember:
    """One proxy's membership in a site's peer-cache directory.

    Doubles as the block cache's observer (``block_published`` /
    ``block_retracted`` / ``cache_cleared`` / ``cache_crashed``),
    relaying ownership changes into the directory, and as the handle
    the proxy's peer-cache layer borrows through.  Fully duck-typed on the cache object — the
    network package never imports :mod:`repro.core`.
    """

    __slots__ = ("name", "host", "block_cache", "directory")

    def __init__(self, name: str, host: Host, block_cache, directory):
        self.name = name
        self.host = host
        self.block_cache = block_cache
        self.directory = directory

    # -- cache observer feed (pushed membership updates) ---------------------
    def block_published(self, key) -> None:
        self.directory._publish(self, key)

    def block_retracted(self, key) -> None:
        self.directory._retract(self, key)

    def cache_cleared(self) -> None:
        self.directory._retract_all(self)

    def cache_crashed(self) -> None:
        # The proxy process died: beyond retracting its advertisements,
        # the directory must stop waiting on any WAN fetch this member
        # was the designated fetcher for.
        self.directory.retire(self)

    # -- the borrow face used by the proxy's peer-cache layer ----------------
    def borrow(self, key):
        """Process: fetch ``key`` from a same-site peer (see
        :meth:`PeerCacheDirectory.borrow`)."""
        return self.directory.borrow(self, key)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PeerMember {self.name} on {self.host.name}>"


class PeerCacheDirectory:
    """Per-site block-ownership directory for cooperative proxy caching.

    Peer proxies on one site register their block caches; each cache
    pushes ownership deltas as blocks become (or stop being) shareable,
    so the directory's map is always current without polling.  Only
    *clean* blocks are listed — dirty frames are session-private until
    written back.  A miss then consults the directory before crossing
    the WAN: a small query round trip to the directory host, and on a
    hit the block moves peer-to-peer over the site's cheap links.

    Timing model: membership updates ride existing traffic (piggybacked
    deltas, not charged); a lookup pays the query round trip; a borrow
    additionally pays the request message to the owner, the owner's
    bank-file read, and the block-sized response.  Routes between host
    pairs are built once and cached, so steady-state lookups allocate
    nothing.
    """

    #: Size of a directory query / response / block-request message.
    QUERY_BYTES = 128
    #: How long a miss waits for a site peer's in-flight fetch of the
    #: same block before giving up and crossing the WAN itself.
    PENDING_TIMEOUT = 0.5

    def __init__(self, testbed: "Testbed", site: str = "site0",
                 host: Optional[Host] = None):
        self.testbed = testbed
        self.env = testbed.env
        self.site = site
        #: Host answering directory queries (the LAN image server by
        #: default — it is on every member's cheap-link horizon).
        self.host = host if host is not None else testbed.lan_server
        self.members: List[PeerMember] = []
        # key -> owners, in deterministic registration order.
        self._owners: Dict = {}
        # key -> (fetcher, publication gate): set when the directory
        # told a member "nobody has it" (that member becomes the site's
        # designated WAN fetcher); later askers wait on the gate instead
        # of duplicating the fetch.  Recording the fetcher lets a crash
        # release exactly its gates (see :meth:`retire`).
        self._pending: Dict = {}
        self._routes: Dict = {}
        # Statistics
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.coalesced = 0
        self.pending_timeouts = 0
        self.bytes_served = 0
        self.retirements = 0

    def join(self, name: str, host: Host, block_cache) -> PeerMember:
        """Register a proxy's block cache; returns its member handle.

        Installs the membership observer on the cache and seeds the
        directory with whatever clean blocks the cache already holds
        (a warm cache joining late is immediately useful).  Joining the
        same cache twice returns the existing member.
        """
        for member in self.members:
            if member.block_cache is block_cache:
                return member
        member = PeerMember(name, host, block_cache, self)
        self.members.append(member)
        block_cache.observers.append(member)
        for key in block_cache.iter_clean_keys():
            self._publish(member, key)
        return member

    # -- membership map (synchronous, pushed by cache observers) -------------
    def _publish(self, member: PeerMember, key) -> None:
        owners = self._owners.get(key)
        if owners is None:
            self._owners[key] = [member]
        elif member not in owners:
            owners.append(member)
        pending = self._pending.pop(key, None)
        if pending is not None and not pending[1].triggered:
            pending[1].succeed()

    def _retract(self, member: PeerMember, key) -> None:
        owners = self._owners.get(key)
        if owners is not None and member in owners:
            owners.remove(member)
            if not owners:
                del self._owners[key]

    def _retract_all(self, member: PeerMember) -> None:
        dead = [key for key, owners in self._owners.items()
                if member in owners]
        for key in dead:
            self._retract(member, key)

    def retire(self, member: PeerMember) -> None:
        """A member's proxy crashed: drop its advertisements *and*
        release every borrow gate it was the designated fetcher for.

        Waiters on a released gate re-query, find no owner, and fall
        through to their own upstream — a crash costs them one retry,
        never a :attr:`PENDING_TIMEOUT` stall on a fetch that will
        never be published.
        """
        self._retract_all(member)
        stuck = [key for key, (fetcher, _) in self._pending.items()
                 if fetcher is member]
        for key in stuck:
            _, gate = self._pending.pop(key)
            if not gate.triggered:
                gate.succeed()
        self.retirements += 1

    def locate(self, key, exclude: Optional[PeerMember] = None):
        """First registered owner of ``key`` other than ``exclude``
        (deterministic: registration order), or None."""
        owners = self._owners.get(key)
        if not owners:
            return None
        for owner in owners:
            if owner is not exclude:
                return owner
        return None

    def _route(self, src: Host, dst: Host) -> Route:
        pair = (src.name, dst.name)
        route = self._routes.get(pair)
        if route is None:
            route = self.testbed.route(src, dst)
            self._routes[pair] = route
        return route

    def borrow(self, member: PeerMember, key):
        """Process: try to fetch ``key`` from a same-site peer.

        Returns ``(data, owner_found)``: ``(bytes, True)`` on a peer
        hit; ``(None, False)`` when no peer owns the block;
        ``(None, True)`` when the directory's answer was stale — the
        listed owner evicted or dirtied the block before the request
        arrived (the caller falls through to its upstream either way).

        When no peer owns the block but one is already fetching it over
        the WAN (this member was told "nobody has it" moments ago), the
        directory answers "in flight — wait": the asker blocks on the
        publication gate up to :attr:`PENDING_TIMEOUT` and then borrows
        the freshly landed copy over the LAN, so a storm of peers
        cloning one image moves each block across the WAN once instead
        of once per peer.
        """
        self.lookups += 1
        # Query round trip to the directory host.
        yield from self._route(member.host, self.host).transmit(
            self.QUERY_BYTES)
        owner = self.locate(key, exclude=member)
        yield from self._route(self.host, member.host).transmit(
            self.QUERY_BYTES)
        if owner is None:
            pending = self._pending.get(key)
            if pending is None:
                # This member becomes the designated fetcher.
                self._pending[key] = (member, Event(self.env))
                self.misses += 1
                return None, False
            gate = pending[1]
            yield AnyOf(self.env, [gate,
                                   self.env.timeout(self.PENDING_TIMEOUT)])
            if not gate.triggered:
                # The fetcher stalled (WAN fault, failed fetch): stop
                # advertising it so the next asker takes over, and fall
                # through to our own upstream.
                if self._pending.get(key) is pending:
                    del self._pending[key]
                self.pending_timeouts += 1
                self.misses += 1
                return None, False
            # Published while we waited: re-query for the owner.
            yield from self._route(member.host, self.host).transmit(
                self.QUERY_BYTES)
            owner = self.locate(key, exclude=member)
            yield from self._route(self.host, member.host).transmit(
                self.QUERY_BYTES)
            if owner is None:
                # Evicted again in the window between publish and
                # re-query; give up and go upstream.
                self.misses += 1
                return None, False
            self.coalesced += 1
        # Block request to the owner; its cache charges the bank read.
        yield from self._route(member.host, owner.host).transmit(
            self.QUERY_BYTES)
        data = yield from owner.block_cache.read_cached(key)
        if data is None:
            # Stale entry: gone (or dirtied) since the directory answered.
            yield from self._route(owner.host, member.host).transmit(
                self.QUERY_BYTES)
            self.stale += 1
            return None, True
        yield from self._route(owner.host, member.host).transmit(
            len(data) + self.QUERY_BYTES)
        self.hits += 1
        self.bytes_served += len(data)
        return data, True

    def stats_snapshot(self) -> Dict[str, int]:
        return {"members": len(self.members),
                "listed_blocks": len(self._owners),
                "lookups": self.lookups, "hits": self.hits,
                "misses": self.misses, "stale": self.stale,
                "coalesced": self.coalesced,
                "pending_timeouts": self.pending_timeouts,
                "bytes_served": self.bytes_served,
                "retirements": self.retirements}


class Testbed:
    """The wired-up testbed: hosts plus routes between them.

    Routes are derived from per-host access links and shared segments,
    so concurrent flows (e.g. eight parallel clonings) contend exactly
    where the real topology would make them contend: on the image
    server's access link and on endpoint CPUs.
    """

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(self, env: Environment, n_compute: int = 1,
                 lan: NetworkConditions = LAN_2003,
                 wan: NetworkConditions = WAN_2003,
                 compute_cpu_speed: float = 1.0,
                 compute_page_cache_bytes: int = 512 * 1024 * 1024,
                 link_mode: LinkMode = LinkMode.EXACT):
        if n_compute < 1:
            raise ValueError("need at least one compute server")
        self.env = env
        self.lan_conditions = lan
        self.wan_conditions = wan
        self.link_mode = link_mode

        # Hosts. CPU speeds are relative to the 1.1 GHz PIII compute node.
        self.compute: List[Host] = [
            Host(env, f"compute{i}", cpus=4, cpu_speed=compute_cpu_speed,
                 page_cache_bytes=compute_page_cache_bytes)
            for i in range(n_compute)]
        self.lan_server = Host(env, "lan-image-server", cpus=2, cpu_speed=1.6)
        self.wan_server = Host(env, "wan-image-server", cpus=2, cpu_speed=0.9)

        # Access links (full duplex pairs): one per compute node, one per
        # image server; plus the shared WAN segment.
        self._access: Dict[str, tuple] = {}
        for host in [*self.compute, self.lan_server, self.wan_server]:
            self._access[host.name] = duplex(
                env, lan.latency, lan.bandwidth, name=f"{host.name}.eth",
                mode=link_mode)
        self.wan_segment = duplex(env, wan.latency, wan.bandwidth,
                                  name="abilene", mode=link_mode)

        # Cooperative peer-cache directories, one per site, created on
        # first use (see :meth:`peer_directory`).
        self._peer_directories: Dict[str, PeerCacheDirectory] = {}

    # -- host construction --------------------------------------------------
    def add_host(self, name: str, cpus: int = 2, cpu_speed: float = 1.6,
                 page_cache_bytes: int = 512 * 1024 * 1024,
                 conditions: Optional[NetworkConditions] = None) -> Host:
        """Add an attached host (e.g. an intermediate cascade-cache
        server) with its own access-link pair, routable to every other
        host via :meth:`route`.  Defaults mirror the LAN image server;
        ``conditions`` picks the access-link calibration (a
        :data:`LINK_PROFILES` entry such as rack or site conditions)
        instead of the testbed-wide LAN segment.
        """
        if name in self._access:
            raise ValueError(f"host {name!r} already exists")
        conditions = conditions or self.lan_conditions
        host = Host(self.env, name, cpus=cpus, cpu_speed=cpu_speed,
                    page_cache_bytes=page_cache_bytes)
        self._access[name] = duplex(
            self.env, conditions.latency, conditions.bandwidth,
            name=f"{name}.eth", mode=self.link_mode)
        return host

    def add_origin_pool(self, n: int, prefix: str = "data-server",
                        profile: str = "site", cpus: int = 2,
                        cpu_speed: float = 1.6,
                        page_cache_bytes: int = 512 * 1024 * 1024
                        ) -> List[Host]:
        """Provision ``n`` origin-tier hosts (an image-server farm).

        Each data server gets its *own* access-link duplex at the named
        :data:`LINK_PROFILES` calibration (default: campus-backbone
        site links), so aggregate farm bandwidth scales with the number
        of servers instead of funneling through one image server's
        port.  Hosts are named ``{prefix}0..{n-1}`` and are routable
        from every compute node via :meth:`route`.
        """
        if n < 1:
            raise ValueError("need at least one data server")
        conditions = resolve_profile(profile)
        return [self.add_host(f"{prefix}{i}", cpus=cpus,
                              cpu_speed=cpu_speed,
                              page_cache_bytes=page_cache_bytes,
                              conditions=conditions)
                for i in range(n)]

    # -- cooperative caching --------------------------------------------------
    def peer_directory(self, site: str = "site0") -> PeerCacheDirectory:
        """The site's cooperative peer-cache directory, created on
        first use.  Proxies join it via
        :meth:`PeerCacheDirectory.join`; the default directory host is
        the LAN image server."""
        directory = self._peer_directories.get(site)
        if directory is None:
            directory = PeerCacheDirectory(self, site=site)
            self._peer_directories[site] = directory
        return directory

    # -- route construction -------------------------------------------------
    def route(self, src: Host, dst: Host, via_wan: bool = False) -> Route:
        """A route between any two attached hosts.  ``via_wan`` inserts
        the shared Abilene segment (cache-cascade hops between LAN hosts
        stay on campus Ethernet)."""
        return self._route(src, dst, via_wan)

    def _route(self, src: Host, dst: Host, via_wan: bool) -> Route:
        src_up, _ = self._access[src.name]
        _, dst_down = self._access[dst.name]
        hops = [src_up]
        if via_wan:
            # Forward direction of the shared segment is UF -> NWU.
            hops.append(self.wan_segment[0] if dst is self.wan_server
                        else self.wan_segment[1])
        hops.append(dst_down)
        return Route(hops, name=f"{src.name}->{dst.name}")

    def lan_route(self, compute_index: int = 0) -> Route:
        """Compute node → LAN image server."""
        return self._route(self.compute[compute_index], self.lan_server, False)

    def lan_route_back(self, compute_index: int = 0) -> Route:
        """LAN image server → compute node."""
        return self._route(self.lan_server, self.compute[compute_index], False)

    def wan_route(self, compute_index: int = 0) -> Route:
        """Compute node → WAN image server (across Abilene)."""
        return self._route(self.compute[compute_index], self.wan_server, True)

    def wan_route_back(self, compute_index: int = 0) -> Route:
        """WAN image server → compute node."""
        return self._route(self.wan_server, self.compute[compute_index], True)

    def lan_server_route(self, to_wan: bool = True) -> Route:
        """LAN image server → WAN image server (2nd-level cache fills)."""
        return self._route(self.lan_server, self.wan_server, True)

    def lan_server_route_back(self) -> Route:
        return self._route(self.wan_server, self.lan_server, True)


def make_paper_testbed(env: Optional[Environment] = None,
                       n_compute: int = 1, **kwargs) -> Testbed:
    """The testbed of §4.1 with the calibrated era constants.

    ``kwargs`` forward to :class:`Testbed` (e.g. ``compute_cpu_speed``
    for the quad-Xeon cloning nodes).
    """
    return Testbed(env or Environment(), n_compute=n_compute, **kwargs)
