"""Point-to-point link and multi-hop route models.

A :class:`Link` is unidirectional and owns a transmit resource: a
message holds the transmitter for ``size / bandwidth`` seconds
(serialization, where contention and queueing arise), then propagates
for ``latency`` seconds without occupying the transmitter — so back-to-
back messages pipeline exactly as they do on a real wire.

A :class:`Route` is an ordered list of links crossed store-and-forward.
Both expose ``transmit(nbytes)`` as a process generator::

    yield env.process(route.transmit(32 * 1024))

Link modes
----------
``LinkMode.EXACT`` (the default) is the discrete model above: every
message queues on the transmit resource, so the event cost per message
is a resource grant, a serialization timeout, a release and a
propagation timeout.  ``LinkMode.FLUID`` is an opt-in fast path for
fleet-scale runs: the transmitter becomes a scalar ``busy-until``
clock, and a message costs exactly one engine event.  Completion times
are identical to EXACT for FIFO traffic (``max(now, busy_until) +
serialization + latency`` is precisely what the FIFO resource
computes); drift appears only around faults and interrupts, which is
why fluid mode is opt-in and golden-checked against the exact DES (see
``repro.experiments.fleetbench``).
"""

from __future__ import annotations

import enum
from typing import Generator, Iterable, List, Optional, Tuple

from repro.sim import Environment, FifoResource
from repro.sim.engine import Event

__all__ = ["Link", "LinkMode", "Route", "duplex"]


class LinkMode(enum.Enum):
    """Transmit model of a :class:`Link` (see module docstring)."""

    EXACT = "exact"
    FLUID = "fluid"

#: Fixed per-message framing cost (Ethernet/IP/UDP/RPC headers), bytes.
HEADER_BYTES = 160


class Link:
    """A unidirectional network link.

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth:
        Serialization rate in bytes/second.
    name:
        Label used in stats and repr.
    """

    def __init__(self, env: Environment, latency: float, bandwidth: float,
                 name: str = "link", mode: LinkMode = LinkMode.EXACT):
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth <= 0:
            raise ValueError(f"non-positive bandwidth: {bandwidth}")
        self.env = env
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.name = name
        self.mode = mode
        self._tx = FifoResource(env, capacity=1, name=f"{name}.tx")
        # Fluid-mode transmitter state: the instant the wire frees up.
        self._fluid_busy_until = 0.0
        # Fault state: a failed link either stalls traffic until
        # restore() (the default — models a routing blackout where the
        # retransmit eventually gets through) or drops it outright
        # (drop_on_fail=True: messages vanish; recovery relies on the
        # caller's RPC timeout).
        self.failed = False
        self.drop_on_fail = False
        self._repair_gates: List[Event] = []
        # Statistics
        self.bytes_sent = 0
        self.messages_sent = 0
        self.busy_time = 0.0
        self.outages = 0
        self.drops = 0

    def serialization_delay(self, nbytes: int) -> float:
        """Time the transmitter is held for a message of ``nbytes``."""
        return (nbytes + HEADER_BYTES) / self.bandwidth

    @property
    def fluid_ready(self) -> bool:
        """True while this link may use the fluid fast path: fluid mode
        and no outage history.

        The scalar busy-until clock cannot represent traffic stalled
        behind an outage, so a link's first failure permanently demotes
        it to the exact store-and-forward path — accuracy around faults
        beats the event saving.  This is what lets the fault-injection
        benches run fluid: unfaulted links keep the fast path, faulted
        ones fall back.
        """
        return self.mode is LinkMode.FLUID and self.outages == 0

    # -- fault injection ------------------------------------------------------
    def fail(self) -> None:
        """Take the link down; traffic stalls (or drops) until restore()."""
        if not self.failed:
            self.failed = True
            self.outages += 1

    def restore(self) -> None:
        """Bring the link back up and release every stalled message."""
        if not self.failed:
            return
        self.failed = False
        gates, self._repair_gates = self._repair_gates, []
        for gate in gates:
            gate.succeed()

    def _blocked(self) -> Generator:
        """Process step taken by a message that hits a down link."""
        if self.drop_on_fail:
            # The message is gone; park forever.  The caller's RPC
            # timeout (or an interrupt) is the only way out.
            self.drops += 1
            yield Event(self.env)
            return
        while self.failed:
            gate = Event(self.env)
            self._repair_gates.append(gate)
            yield gate

    def _transmit_fluid(self, nbytes: int) -> Generator:
        """Fluid-mode transmit: one engine event per message.

        ``max(now, busy_until) + serialization`` reproduces the FIFO
        transmitter's grant/serialize/release sequence without the
        resource bookkeeping; fault handling mirrors the exact path
        (stall or drop on entry, stall again if the link went down
        while the message was in flight).
        """
        if self.failed:
            yield from self._blocked()
        delay = self.serialization_delay(nbytes)
        now = self.env.now
        start = self._fluid_busy_until
        if start < now:
            start = now
        done = start + delay
        self._fluid_busy_until = done
        self.busy_time += delay
        yield self.env.timeout(done + self.latency - now)
        if self.failed:
            yield from self._blocked()
        self.bytes_sent += nbytes
        self.messages_sent += 1

    def transmit(self, nbytes: int) -> Generator:
        """Process: queue for the transmitter, serialize, propagate."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        if self.fluid_ready:
            yield from self._transmit_fluid(nbytes)
            return
        if self.failed:
            yield from self._blocked()
        if self._fluid_busy_until > self.env.now:
            # A fluid link that just fell back to the exact path after
            # its first outage: traffic that entered fluid still owns
            # the wire until busy-until; queue behind it.  Zero-cost on
            # always-exact links (busy-until never moves off 0).
            yield self.env.timeout(self._fluid_busy_until - self.env.now)
        req = self._tx.request()
        try:
            # ``yield req`` sits inside the try so an interrupt landing
            # while we queue (or hold) the transmitter still releases it
            # — FifoResource.release handles the not-yet-granted case.
            yield req
            delay = self.serialization_delay(nbytes)
            yield self.env.timeout(delay)
            self.busy_time += delay
        finally:
            self._tx.release(req)
        if self.failed:
            # Went down mid-flight: the message is on the wire when the
            # outage hits, so it stalls (or is lost) like queued traffic.
            yield from self._blocked()
        yield self.env.timeout(self.latency)
        self.bytes_sent += nbytes
        self.messages_sent += 1

    @property
    def queue_length(self) -> int:
        """Messages currently waiting for the transmitter."""
        return self._tx.queue_length

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Link {self.name}: {self.latency * 1e3:.3f} ms, "
                f"{self.bandwidth / 1e6:.1f} MB/s>")


class Route:
    """An ordered multi-hop path; messages cross hops store-and-forward."""

    def __init__(self, links: Iterable[Link], name: str = ""):
        self.links: List[Link] = list(links)
        if not self.links:
            raise ValueError("route requires at least one link")
        self.name = name or "+".join(l.name for l in self.links)
        self.env = self.links[0].env

    @property
    def latency(self) -> float:
        """End-to-end propagation delay (sum of hop latencies)."""
        return sum(l.latency for l in self.links)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Bandwidth of the slowest hop."""
        return min(l.bandwidth for l in self.links)

    @property
    def mode(self) -> LinkMode:
        """FLUID when every hop is fluid, EXACT otherwise."""
        if all(l.mode is LinkMode.FLUID for l in self.links):
            return LinkMode.FLUID
        return LinkMode.EXACT

    def transmit(self, nbytes: int) -> Generator:
        """Process: carry one message of ``nbytes`` across every hop."""
        for link in self.links:
            yield from link.transmit(nbytes)

    def transmit_bulk(self, nbytes: int, pace: Optional[float] = None,
                      n_messages: int = 1) -> Generator:
        """Process: move a bulk stream across the route as one event.

        The fluid counterpart of a *chunked, pipelined* stream (an SCP
        transfer): each hop serializes the stream concurrently with the
        others (chunks pipeline across hops), so the stream completes
        when the busiest hop finishes serializing, plus end-to-end
        propagation; ``pace`` caps the sender's self-pacing rate (TCP
        window / cipher) and ``n_messages`` charges the per-chunk
        framing overhead the chunked path would pay.  Each hop's
        ``busy_until`` advances by the full serialization time, so
        concurrent bulk streams share a bottleneck link in arrival
        order exactly like queued chunks would.

        Falls back to per-hop store-and-forward when any hop is EXACT,
        down, or has ever been down (see :attr:`Link.fluid_ready`) —
        correctness (fault stalls, contention with discrete traffic)
        beats the event saving there.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if any(not l.fluid_ready for l in self.links):
            yield from self.transmit(nbytes)
            return
        env = self.env
        t0 = env.now
        finish = t0
        wire_bytes = nbytes + max(n_messages, 1) * HEADER_BYTES
        for link in self.links:
            ser = wire_bytes / link.bandwidth
            start = link._fluid_busy_until
            if start < t0:
                start = t0
            link._fluid_busy_until = start + ser
            link.busy_time += ser
            link.bytes_sent += nbytes
            link.messages_sent += max(n_messages, 1)
            if start + ser > finish:
                finish = start + ser
        finish += self.latency
        if pace:
            paced = t0 + nbytes / pace
            if paced > finish:
                finish = paced
        yield env.timeout(finish - t0)

    def unloaded_transfer_time(self, nbytes: int) -> float:
        """Analytic no-contention time for one message (for tests)."""
        return sum(l.serialization_delay(nbytes) + l.latency for l in self.links)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Route {self.name}: {len(self.links)} hop(s)>"


def duplex(env: Environment, latency: float, bandwidth: float,
           name: str = "link",
           mode: LinkMode = LinkMode.EXACT) -> Tuple[Link, Link]:
    """Build a full-duplex link as an independent (forward, reverse) pair."""
    return (Link(env, latency, bandwidth, name=f"{name}.fwd", mode=mode),
            Link(env, latency, bandwidth, name=f"{name}.rev", mode=mode))
