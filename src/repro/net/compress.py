"""Compression model (GZIP-era) used by the file-based data channel.

The paper compresses VM memory-state files with GZIP on the image
server before SCP-ing them (§3.2.2).  Two things matter to the results:
the *compressed size* (memory images are mostly zero-filled, so they
shrink dramatically) and the *CPU time* on 2003-era processors.

Sizes are computed honestly with :mod:`zlib` over the file's chunks;
long zero runs are costed via a memoized per-megabyte deflate size so a
multi-hundred-megabyte sparse file never has to be materialized.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Iterable, Union

__all__ = ["CompressionModel", "GZIP"]

#: Granularity for compressing zero runs (bytes).
_ZERO_PIECE = 1 << 20

#: Deflate output size for one _ZERO_PIECE of zeros (computed once).
_ZERO_PIECE_COMPRESSED = len(zlib.compress(bytes(_ZERO_PIECE), 6))

Chunk = Union[bytes, int]  # bytes payload, or an int length of a zero run


class CompressionModel:
    """A stream compressor characterized by real output size + CPU rates.

    Parameters
    ----------
    compress_bps:
        Compression CPU throughput, input bytes/second.
    decompress_bps:
        Decompression CPU throughput, output bytes/second.
    level:
        zlib level used when measuring compressed sizes.
    """

    def __init__(self, name: str, compress_bps: float, decompress_bps: float,
                 level: int = 6):
        if compress_bps <= 0 or decompress_bps <= 0:
            raise ValueError("throughputs must be positive")
        self.name = name
        self.compress_bps = float(compress_bps)
        self.decompress_bps = float(decompress_bps)
        self.level = level
        # Per-chunk deflate sizes keyed by the chunk bytes themselves
        # (exact content equality, so the memo can never lie about a
        # size).  The same image chunks are sized once per clone and
        # once per experiment run; deflating them again each time was
        # the single largest wall-clock cost of the cloning benchmarks.
        self._size_memo: "OrderedDict[bytes, int]" = OrderedDict()
        # Sized to cover a paper-scale memory state's non-zero chunks;
        # a smaller cap would evict the whole working set on every
        # sequential sizing pass.  The keys are usually the generator's
        # own memoized chunk objects, so the bytes are not duplicated.
        self._size_memo_cap = 16384
        self._zero_rest_memo: dict = {}

    # -- size ---------------------------------------------------------------
    def compressed_size(self, chunks: Iterable[Chunk]) -> int:
        """Deflated size of a chunk stream.

        ``chunks`` yields either ``bytes`` (literal data) or an ``int``
        (a run of that many zero bytes).  Each literal chunk is deflated
        for real; zero runs are costed analytically from a measured
        per-piece deflate size, which overstates the true (single
        stream) size by <1 % — a conservative error.
        """
        total = 0
        memo = self._size_memo
        for chunk in chunks:
            if isinstance(chunk, (int,)):
                if chunk < 0:
                    raise ValueError(f"negative zero-run length: {chunk}")
                whole, rest = divmod(chunk, _ZERO_PIECE)
                total += whole * _ZERO_PIECE_COMPRESSED
                if rest:
                    n = self._zero_rest_memo.get(rest)
                    if n is None:
                        n = len(zlib.compress(bytes(rest), self.level))
                        self._zero_rest_memo[rest] = n
                    total += n
            else:
                n = memo.get(chunk)
                if n is None:
                    n = len(zlib.compress(chunk, self.level))
                    memo[chunk] = n
                    if len(memo) > self._size_memo_cap:
                        memo.popitem(last=False)
                else:
                    memo.move_to_end(chunk)
                total += n
        return total

    def ratio(self, chunks: Iterable[Chunk], original_size: int) -> float:
        """compressed/original size ratio (1.0 = incompressible)."""
        if original_size <= 0:
            raise ValueError("original_size must be positive")
        return self.compressed_size(chunks) / original_size

    # -- CPU time -----------------------------------------------------------
    def compress_time(self, original_size: int) -> float:
        """CPU seconds to compress ``original_size`` input bytes."""
        return original_size / self.compress_bps

    def decompress_time(self, original_size: int) -> float:
        """CPU seconds to decompress back to ``original_size`` bytes."""
        return original_size / self.decompress_bps

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CompressionModel {self.name}: "
                f"{self.compress_bps / 1e6:.0f}/{self.decompress_bps / 1e6:.0f} MB/s>")


#: GZIP on ~1 GHz Pentium-III-era hardware (the paper's image server):
#: the WAN-P total of Table 1 bounds the effective per-CPU compress rate
#: from below at ~8.5 MB/s; decompression runs a few times faster.
GZIP = CompressionModel("gzip", compress_bps=9.5e6, decompress_bps=20e6)
