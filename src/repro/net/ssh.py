"""SSH tunnel and SCP bulk-transfer models.

GVFS forwards NFS RPC traffic through SSH tunnels (private data
channels), and the file-based channel moves whole files with GSI-SCP.
Two era-accurate costs are modelled:

* **Cipher CPU** — each byte is encrypted at the sender and decrypted
  at the receiver at a finite rate (Pentium-III-class machines).
* **TCP window limiting** — a single 2003-era TCP stream over a long
  fat pipe is throttled to ``window / RTT`` regardless of raw link
  bandwidth; this is what makes SCP of a 1.9 GB VM image take ~19 min
  in the paper even over Abilene.
"""

from __future__ import annotations

from typing import Generator

from repro.net.link import LinkMode, Route
from repro.sim import Environment

__all__ = ["SshTunnel", "ScpTransfer", "DEFAULT_TCP_WINDOW"]

#: Default TCP receive window of 2003-era Linux stacks (64 KiB).
DEFAULT_TCP_WINDOW = 64 * 1024


class SshTunnel:
    """An established SSH tunnel over a route.

    ``transmit`` behaves like :meth:`repro.net.link.Route.transmit` with
    added per-byte cipher time at both endpoints.  The one-time
    connection setup (key exchange: a few round trips plus asymmetric
    crypto) is charged on first use unless the tunnel is pre-established.
    """

    #: Asymmetric-crypto CPU cost of the SSH handshake, seconds.
    HANDSHAKE_CPU = 0.15
    #: Round trips in the SSH/TCP connection setup.
    HANDSHAKE_ROUND_TRIPS = 4

    def __init__(self, env: Environment, route: Route,
                 cipher_bps: float = 35e6, pre_established: bool = True,
                 name: str = "ssh"):
        if cipher_bps <= 0:
            raise ValueError("cipher_bps must be positive")
        self.env = env
        self.route = route
        self.cipher_bps = float(cipher_bps)
        self.name = name
        self._established = bool(pre_established)
        self.bytes_tunnelled = 0

    @property
    def established(self) -> bool:
        return self._established

    @property
    def latency(self) -> float:
        """End-to-end propagation latency of the underlying route."""
        return self.route.latency

    def cipher_delay(self, nbytes: int) -> float:
        """Encrypt+decrypt CPU time for ``nbytes`` (both endpoints)."""
        return 2.0 * nbytes / self.cipher_bps

    def connect(self) -> Generator:
        """Process: establish the tunnel (idempotent)."""
        if self._established:
            return
        rtt = 2.0 * self.route.latency
        yield self.env.timeout(
            self.HANDSHAKE_ROUND_TRIPS * rtt + self.HANDSHAKE_CPU)
        self._established = True

    def transmit(self, nbytes: int) -> Generator:
        """Process: push one message of ``nbytes`` through the tunnel."""
        if not self._established:
            yield from self.connect()
        # Encryption happens before the wire, decryption after; both
        # serialize with the message itself.
        yield self.env.timeout(nbytes / self.cipher_bps)
        yield from self.route.transmit(nbytes)
        yield self.env.timeout(nbytes / self.cipher_bps)
        self.bytes_tunnelled += nbytes


class ScpTransfer:
    """Whole-file SCP over an SSH connection.

    Effective streaming throughput is the minimum of the route's
    bottleneck bandwidth, the cipher rate, and the TCP window limit
    ``window / RTT``.  ``transfer`` is a process that completes when the
    last byte arrives.
    """

    def __init__(self, env: Environment, route: Route,
                 cipher_bps: float = 35e6,
                 tcp_window: int = DEFAULT_TCP_WINDOW,
                 name: str = "scp"):
        if tcp_window <= 0:
            raise ValueError("tcp_window must be positive")
        self.env = env
        self.route = route
        self.cipher_bps = float(cipher_bps)
        self.tcp_window = int(tcp_window)
        self.name = name
        self.bytes_transferred = 0

    @property
    def effective_bandwidth(self) -> float:
        """Streaming rate in bytes/second after all three limits."""
        rtt = 2.0 * self.route.latency
        limits = [self.route.bottleneck_bandwidth, self.cipher_bps]
        if rtt > 0:
            limits.append(self.tcp_window / rtt)
        return min(limits)

    def transfer_time(self, nbytes: int) -> float:
        """Analytic transfer time: setup round trip + streaming."""
        rtt = 2.0 * self.route.latency
        return rtt + nbytes / self.effective_bandwidth

    #: Chunk size used to interleave a stream with other traffic.
    CHUNK = 256 * 1024

    @property
    def per_stream_rate(self) -> float:
        """Rate one TCP stream can sustain, ignoring link contention."""
        rtt = 2.0 * self.route.latency
        limits = [self.cipher_bps]
        if rtt > 0:
            limits.append(self.tcp_window / rtt)
        return min(limits)

    def transfer(self, nbytes: int) -> Generator:
        """Process: move ``nbytes`` as a paced sequence of chunks.

        Each chunk crosses the route's shared links (contending with
        other traffic); between chunks the stream self-paces to its TCP
        window rate.  Under no contention the total time matches the
        analytic ``transfer_time``; under contention, concurrent streams
        share link bandwidth fairly at chunk granularity.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        rtt = 2.0 * self.route.latency
        yield self.env.timeout(rtt)  # scp/sftp session setup
        if self.route.mode is LinkMode.FLUID:
            # Fluid fast path: the whole paced, chunked stream becomes
            # one completion event per stream instead of ~5 events per
            # 256 KiB chunk.  Chunk-granular framing is still charged
            # via ``n_messages`` so the wire cost matches the exact
            # path; accuracy is golden-checked in fleetbench.
            n_chunks = max(1, -(-nbytes // self.CHUNK))
            yield from self.route.transmit_bulk(
                nbytes, pace=self.per_stream_rate, n_messages=n_chunks)
            self.bytes_transferred += nbytes
            return
        pace = self.per_stream_rate
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.CHUNK, remaining)
            start = self.env.now
            yield from self.route.transmit(chunk)
            window_interval = chunk / pace
            elapsed = self.env.now - start
            if elapsed < window_interval:
                yield self.env.timeout(window_interval - elapsed)
            remaining -= chunk
        self.bytes_transferred += nbytes
