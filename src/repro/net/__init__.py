"""Network substrate: links, routes, tunnels and file-transfer models.

The paper's testbed connects compute servers to a LAN image server over
100 Mbit/s Ethernet and to a WAN image server across Abilene
(UF ↔ Northwestern).  This package reproduces the *timing behaviour* of
those paths with a latency + bandwidth + FIFO-queueing link model, plus
models for SSH-tunnelled channels (per-byte cipher cost) and SCP bulk
transfers (TCP-window-limited over long fat pipes).
"""

from repro.net.link import Link, Route, duplex
from repro.net.ssh import ScpTransfer, SshTunnel
from repro.net.gridftp import GridFtpTransfer
from repro.net.compress import CompressionModel, GZIP
from repro.net.topology import NetworkConditions, Testbed, make_paper_testbed

__all__ = [
    "CompressionModel",
    "GZIP",
    "GridFtpTransfer",
    "Link",
    "NetworkConditions",
    "Route",
    "ScpTransfer",
    "SshTunnel",
    "Testbed",
    "duplex",
    "make_paper_testbed",
]
