"""Seeded arrival processes for scenario phases.

A phase does not start on every peer at once: the spec's
:class:`~repro.scenario.spec.ArrivalSpec` describes *when* each of the
``n`` peers joins, as offsets (simulated seconds) from the phase start.
All processes are seeded from ``f"{seed}:{key}:arrival"`` so the same
spec + seed yields the same offsets on every run — the determinism gate
depends on it.

The ``diurnal`` kind reproduces the day-shaped load curves grid
deployments see (vm5k-style campaigns): a raised-cosine intensity

    intensity(x) = (1 + cos(2*pi*(x - peak)))**sharpness

over the fraction ``x = t / window_s`` of the window, sampled by inverse
transform over a fixed 512-point grid.  ``peak`` places rush hour;
``sharpness`` concentrates it.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.scenario.spec import ArrivalSpec, SpecError

__all__ = ["arrival_offsets"]

_GRID = 512


def _rng(seed: int, key: str) -> random.Random:
    return random.Random(f"{seed}:{key}:arrival")


def _diurnal_offsets(arrival: ArrivalSpec, n: int,
                     rng: random.Random) -> List[float]:
    # Cumulative intensity over a fixed grid -> inverse-CDF sampling.
    weights = []
    for i in range(_GRID):
        x = (i + 0.5) / _GRID
        weights.append(
            (1.0 + math.cos(2.0 * math.pi * (x - arrival.peak)))
            ** arrival.sharpness)
    total = sum(weights)
    if total <= 0.0:                    # degenerate curve -> uniform
        return sorted(rng.uniform(0.0, arrival.window_s)
                      for _ in range(n))
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    offsets = []
    for _ in range(n):
        u = rng.random()
        # Linear scan is fine at 512 cells; bisect would hide the logic.
        cell = next(i for i, c in enumerate(cdf) if c >= u)
        lo = cdf[cell - 1] if cell else 0.0
        hi = cdf[cell]
        frac = (u - lo) / (hi - lo) if hi > lo else 0.5
        x = (cell + frac) / _GRID
        offsets.append(x * arrival.window_s)
    return sorted(offsets)


def arrival_offsets(arrival: ArrivalSpec, n: int, seed: int,
                    key: str) -> List[float]:
    """Offsets (seconds from phase start) for ``n`` peers, ascending."""
    rng = _rng(seed, key)
    if arrival.kind == "fixed":
        return [i * arrival.stagger_s for i in range(n)]
    if arrival.kind == "uniform":
        return sorted(rng.uniform(0.0, arrival.window_s)
                      for _ in range(n))
    if arrival.kind == "poisson":
        offsets = []
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(arrival.rate_per_s)
            offsets.append(t)
        return offsets
    if arrival.kind == "diurnal":
        return _diurnal_offsets(arrival, n, rng)
    raise SpecError(f"unknown arrival kind {arrival.kind!r}")
