"""The declarative scenario schema.

A scenario is pure data: frozen dataclasses parsed from a plain dict
(YAML, JSON, or a ``SPEC`` dict in a ``.py`` file — see
:mod:`repro.scenario.loader`).  Parsing is strict — an unknown key
anywhere in the document raises :class:`SpecError` naming the offending
path, so a typo'd gate or phase field fails at load time instead of
silently running a different experiment.

``ScenarioSpec.to_dict`` emits the *normalized* form: every field
explicit, defaults filled in.  ``from_dict(spec.to_dict()) == spec``
holds for any spec, which is what the round-trip tests pin down.

Two scenario kinds share the envelope:

``fleet``
    The native runner (:mod:`repro.scenario.runner`): topology +
    sessions + phases + faults, gated by the named assertions in
    :mod:`repro.scenario.gates`.
``bench``
    A legacy ``*bench`` driver (faultbench, coopbench, …) run through
    the same report envelope; ``bench.driver`` names it and
    ``bench.params`` forwards keyword arguments.

Every spec may carry a ``quick`` section: a partial document deep-merged
over the spec when the run is invoked with ``--quick`` (dicts merge
recursively, lists and scalars replace), so one file describes both the
CI smoke scale and the full nightly scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ArrivalSpec",
    "BenchSpec",
    "FaultSpec",
    "GateSpec",
    "ImageSpec",
    "PhaseSpec",
    "ScenarioSpec",
    "SessionSpec",
    "SpecError",
    "TopologySpec",
    "deep_merge",
]

SCENARIO_KINDS = ("fleet", "bench")
SESSION_MODES = ("inclusive", "exclusive", "cooperative")
ARRIVAL_KINDS = ("fixed", "uniform", "poisson", "diurnal")
PHASE_KINDS = ("clone_storm", "trace_load", "restart_clients", "rollout",
               "migration_wave", "flush")
FAULT_KINDS = ("link_flap", "server_outage", "server_crash",
               "proxy_restart", "seeded_flaps", "layer")

#: Phase kinds that boot VMs other phases can replay traces on.
_VM_SOURCES = ("clone_storm", "rollout")


class SpecError(ValueError):
    """A scenario document failed to parse or validate."""


# --------------------------------------------------------------------------
# Strict dict -> dataclass construction
# --------------------------------------------------------------------------

def _require_mapping(data, where: str) -> dict:
    if not isinstance(data, dict):
        raise SpecError(f"{where}: expected a mapping, got "
                        f"{type(data).__name__}")
    return data


def _build(cls, data, where: str, nested=None):
    """Construct dataclass ``cls`` from ``data``, rejecting unknown keys.

    ``nested`` maps a field name to a ``(builder, is_list)`` pair for
    fields holding nested spec objects.
    """
    data = _require_mapping(data, where)
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise SpecError(f"{where}: unknown key(s) {unknown}; "
                        f"expected a subset of {sorted(names)}")
    kwargs = {}
    for key, value in data.items():
        builder = (nested or {}).get(key)
        if builder is not None:
            build, is_list = builder
            if is_list:
                if not isinstance(value, (list, tuple)):
                    raise SpecError(f"{where}.{key}: expected a list")
                value = tuple(build(item, f"{where}.{key}[{i}]")
                              for i, item in enumerate(value))
            else:
                value = build(value, f"{where}.{key}")
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise SpecError(f"{where}: {exc}") from None


def deep_merge(base: dict, override: dict) -> dict:
    """Recursive dict merge: mappings merge key-wise, everything else
    (lists included) replaces.  Returns a new dict; inputs untouched."""
    out = dict(base)
    for key, value in override.items():
        if (isinstance(value, dict) and isinstance(out.get(key), dict)):
            out[key] = deep_merge(out[key], value)
        else:
            out[key] = value
    return out


# --------------------------------------------------------------------------
# Leaf specs
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ImageSpec:
    """One golden image materialized on the origin server."""

    name: str
    memory_mb: int = 16
    disk_gb: float = 0.125
    seed: int = 1
    zero_fraction: float = 0.5
    #: Generate ``.gvfs`` meta-data (zero maps + file-channel handles);
    #: off by default so reads flow block-wise through the cache tiers.
    metadata: bool = False

    @classmethod
    def from_dict(cls, data, where: str = "image") -> "ImageSpec":
        spec = _build(cls, data, where)
        if not spec.name:
            raise SpecError(f"{where}: image needs a name")
        if spec.memory_mb < 1:
            raise SpecError(f"{where}: memory_mb must be >= 1")
        return spec

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class TopologySpec:
    """The testbed: N LAN peers behind the calibrated WAN."""

    peers: int = 1
    link_mode: str = "exact"            # "exact" | "fluid"
    images: Tuple[ImageSpec, ...] = ()

    @classmethod
    def from_dict(cls, data, where: str = "topology") -> "TopologySpec":
        spec = _build(cls, data, where,
                      nested={"images": (ImageSpec.from_dict, True)})
        if spec.peers < 1:
            raise SpecError(f"{where}: peers must be >= 1")
        if spec.link_mode not in ("exact", "fluid"):
            raise SpecError(f"{where}: link_mode must be 'exact' or "
                            f"'fluid', got {spec.link_mode!r}")
        names = [img.name for img in spec.images]
        if len(set(names)) != len(names):
            raise SpecError(f"{where}: duplicate image names in {names}")
        return spec

    def to_dict(self) -> dict:
        return {"peers": self.peers, "link_mode": self.link_mode,
                "images": [img.to_dict() for img in self.images]}


@dataclass(frozen=True)
class SessionSpec:
    """Per-peer session + cascade construction knobs."""

    mode: str = "inclusive"             # inclusive | exclusive | cooperative
    depth: int = 1                      # cascade depth incl. client proxy
    eviction: str = "lru"
    client_cache_mb: int = 16
    #: Intermediate-level cache sizes, client-ward first; when shorter
    #: than ``depth - 1`` the last entry repeats origin-ward.
    level_cache_mb: Tuple[int, ...] = ()
    readahead_depth: int = 0
    #: ``GvfsSession.harden_rpc`` keyword overrides; ``None`` means
    #: "default ladder, applied automatically when faults are declared".
    harden: Optional[dict] = None

    @classmethod
    def from_dict(cls, data, where: str = "sessions") -> "SessionSpec":
        spec = _build(cls, data, where)
        if spec.mode not in SESSION_MODES:
            raise SpecError(f"{where}: mode must be one of "
                            f"{list(SESSION_MODES)}, got {spec.mode!r}")
        if spec.depth < 1:
            raise SpecError(f"{where}: depth must be >= 1")
        if spec.client_cache_mb < 1:
            raise SpecError(f"{where}: client_cache_mb must be >= 1")
        if spec.harden is not None:
            _require_mapping(spec.harden, f"{where}.harden")
        return spec

    def to_dict(self) -> dict:
        return {"mode": self.mode, "depth": self.depth,
                "eviction": self.eviction,
                "client_cache_mb": self.client_cache_mb,
                "level_cache_mb": list(self.level_cache_mb),
                "readahead_depth": self.readahead_depth,
                "harden": dict(self.harden) if self.harden else None}


@dataclass(frozen=True)
class ArrivalSpec:
    """When each peer joins a phase (offsets from the phase start).

    ``fixed``
        Peer ``i`` arrives at ``i * stagger_s``.
    ``uniform``
        Seeded uniform draws over ``[0, window_s]``, sorted.
    ``poisson``
        A seeded Poisson process of rate ``rate_per_s``.
    ``diurnal``
        Inverse-CDF samples of a day-shaped intensity curve over
        ``window_s``: load peaks at fraction ``peak`` of the window,
        concentrated by ``sharpness`` (higher = spikier rush hour).
    """

    kind: str = "fixed"
    stagger_s: float = 0.0
    window_s: float = 0.0
    rate_per_s: float = 0.0
    peak: float = 0.5
    sharpness: float = 2.0

    @classmethod
    def from_dict(cls, data, where: str = "arrival") -> "ArrivalSpec":
        spec = _build(cls, data, where)
        if spec.kind not in ARRIVAL_KINDS:
            raise SpecError(f"{where}: kind must be one of "
                            f"{list(ARRIVAL_KINDS)}, got {spec.kind!r}")
        if spec.kind in ("uniform", "diurnal") and spec.window_s <= 0:
            raise SpecError(f"{where}: {spec.kind} arrivals need "
                            "window_s > 0")
        if spec.kind == "poisson" and spec.rate_per_s <= 0:
            raise SpecError(f"{where}: poisson arrivals need "
                            "rate_per_s > 0")
        return spec

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class PhaseSpec:
    """One step of the scenario timeline."""

    name: str
    kind: str
    image: str = ""                     # clone_storm / rollout / migration
    arrival: ArrivalSpec = ArrivalSpec()
    # trace_load shape (per peer):
    reads: int = 0
    writes: int = 0
    compute_s: float = 0.0
    file_mb: int = 1
    read_fraction: float = 1.0

    @classmethod
    def from_dict(cls, data, where: str = "phase") -> "PhaseSpec":
        spec = _build(cls, data, where,
                      nested={"arrival": (ArrivalSpec.from_dict, False)})
        if not spec.name:
            raise SpecError(f"{where}: phase needs a name")
        if spec.kind not in PHASE_KINDS:
            raise SpecError(f"{where}: kind must be one of "
                            f"{list(PHASE_KINDS)}, got {spec.kind!r}")
        if spec.kind in ("clone_storm", "rollout", "migration_wave") \
                and not spec.image:
            raise SpecError(f"{where}: {spec.kind} needs an image")
        if spec.kind == "trace_load" and spec.reads + spec.writes == 0 \
                and spec.compute_s <= 0:
            raise SpecError(f"{where}: trace_load needs reads, writes "
                            "or compute_s")
        return spec

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "image": self.image,
                "arrival": self.arrival.to_dict(), "reads": self.reads,
                "writes": self.writes, "compute_s": self.compute_s,
                "file_mb": self.file_mb,
                "read_fraction": self.read_fraction}


@dataclass(frozen=True)
class FaultSpec:
    """One composed fault-plan element (see :mod:`repro.sim.faults`).

    ``target`` uses the runner's standard names: ``wan`` (the WAN duplex
    segment), ``origin`` (the image server), ``client:<i>`` (peer i's
    client proxy), ``level:<k>`` (cascade level k, client proxy = 1) —
    or, for ``kind: layer``, a chaos name like ``s0/block-cache`` /
    ``l2/upstream-rpc`` (:mod:`repro.sim.chaos`).
    """

    kind: str
    target: str = "wan"
    at: float = 0.0
    down_for: float = 0.0
    flaps: int = 1
    period: float = 0.0                 # 0 -> link_flap default (2x down)
    fault: str = ""                     # layer fault kind value
    arg: object = None
    seed: int = 0
    horizon: float = 0.0
    mean_up: float = 60.0
    mean_down: float = 2.0

    @classmethod
    def from_dict(cls, data, where: str = "fault") -> "FaultSpec":
        spec = _build(cls, data, where)
        if spec.kind not in FAULT_KINDS:
            raise SpecError(f"{where}: kind must be one of "
                            f"{list(FAULT_KINDS)}, got {spec.kind!r}")
        if spec.kind in ("link_flap", "server_outage", "proxy_restart") \
                and spec.down_for <= 0:
            raise SpecError(f"{where}: {spec.kind} needs down_for > 0")
        if spec.kind == "seeded_flaps" and spec.horizon <= 0:
            raise SpecError(f"{where}: seeded_flaps needs horizon > 0")
        if spec.kind == "layer" and not spec.fault:
            raise SpecError(f"{where}: layer faults need 'fault' (a "
                            "FaultKind value, e.g. corrupt-frame)")
        return spec

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class GateSpec:
    """One named acceptance assertion (see :mod:`repro.scenario.gates`)."""

    name: str
    params: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data, where: str = "gate") -> "GateSpec":
        if isinstance(data, str):       # shorthand: `- zero_lost_writes`
            data = {"name": data}
        spec = _build(cls, data, where)
        if not spec.name:
            raise SpecError(f"{where}: gate needs a name")
        _require_mapping(spec.params, f"{where}.params")
        return spec

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}


@dataclass(frozen=True)
class BenchSpec:
    """A legacy bench driver run through the scenario envelope."""

    driver: str = ""
    params: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data, where: str = "bench") -> "BenchSpec":
        spec = _build(cls, data, where)
        _require_mapping(spec.params, f"{where}.params")
        return spec

    def to_dict(self) -> dict:
        return {"driver": self.driver, "params": dict(self.params)}


# --------------------------------------------------------------------------
# The scenario
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """A full declarative scenario document."""

    name: str
    kind: str = "fleet"
    description: str = ""
    seed: int = 0
    topology: TopologySpec = TopologySpec()
    sessions: SessionSpec = SessionSpec()
    phases: Tuple[PhaseSpec, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    gates: Tuple[GateSpec, ...] = ()
    bench: BenchSpec = BenchSpec()
    quick: dict = field(default_factory=dict)

    # -- parsing -----------------------------------------------------------
    @classmethod
    def from_dict(cls, data, where: str = "scenario") -> "ScenarioSpec":
        spec = _build(cls, data, where, nested={
            "topology": (TopologySpec.from_dict, False),
            "sessions": (SessionSpec.from_dict, False),
            "phases": (PhaseSpec.from_dict, True),
            "faults": (FaultSpec.from_dict, True),
            "gates": (GateSpec.from_dict, True),
            "bench": (BenchSpec.from_dict, False),
        })
        if not spec.name:
            raise SpecError(f"{where}: scenario needs a name")
        if spec.kind not in SCENARIO_KINDS:
            raise SpecError(f"{where}: kind must be one of "
                            f"{list(SCENARIO_KINDS)}, got {spec.kind!r}")
        _require_mapping(spec.quick, f"{where}.quick")
        spec.validate(where)
        return spec

    def validate(self, where: str = "scenario") -> None:
        """Cross-field checks beyond per-section parsing."""
        if self.kind == "bench":
            if not self.bench.driver:
                raise SpecError(f"{where}: bench scenarios need "
                                "bench.driver")
            if self.phases or self.faults:
                raise SpecError(f"{where}: bench scenarios carry no "
                                "phases/faults — the driver owns its "
                                "workload")
            return
        if not self.phases:
            raise SpecError(f"{where}: fleet scenarios need at least "
                            "one phase")
        images = {img.name for img in self.topology.images}
        seen = set()
        booted = False
        for i, phase in enumerate(self.phases):
            tag = f"{where}.phases[{i}] ({phase.name})"
            if phase.name in seen:
                raise SpecError(f"{tag}: duplicate phase name")
            seen.add(phase.name)
            if phase.image and phase.image not in images:
                raise SpecError(f"{tag}: unknown image {phase.image!r}; "
                                f"topology declares {sorted(images)}")
            if phase.kind == "trace_load" and not booted:
                raise SpecError(f"{tag}: trace_load needs a preceding "
                                "clone_storm or rollout to boot VMs")
            if phase.kind in _VM_SOURCES:
                booted = True
        if self.sessions.depth < 2 and any(
                f.target.startswith("level:") for f in self.faults):
            raise SpecError(f"{where}: level:<k> fault targets need "
                            "depth >= 2")

    # -- normalization -----------------------------------------------------
    def to_dict(self) -> dict:
        """The normalized document: every field explicit."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "sessions": self.sessions.to_dict(),
            "phases": [p.to_dict() for p in self.phases],
            "faults": [f.to_dict() for f in self.faults],
            "gates": [g.to_dict() for g in self.gates],
            "bench": self.bench.to_dict(),
            "quick": dict(self.quick),
        }

    # -- profiles ----------------------------------------------------------
    def quicked(self) -> "ScenarioSpec":
        """The spec with its ``quick`` profile deep-merged in.

        Dicts merge recursively; lists and scalars replace.  A spec
        without a quick section is its own quick profile (the driver's
        ``quick`` flag still reaches bench drivers).
        """
        if not self.quick:
            return self
        base = self.to_dict()
        override = base.pop("quick")
        merged = deep_merge(base, override)
        merged["quick"] = {}
        return ScenarioSpec.from_dict(merged, where=f"{self.name}.quick")

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return dataclasses.replace(self, seed=seed)


def spec_names(specs: List[ScenarioSpec]) -> Dict[str, ScenarioSpec]:
    return {spec.name: spec for spec in specs}
