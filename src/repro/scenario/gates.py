"""The named-assertion vocabulary for scenario reports.

A gate is a pure predicate over the run's ``metrics`` dict: it never
re-runs anything, so the same gates evaluate identically in the CLI, in
CI, and when re-checking a stored ``BENCH_*.json``.  Every gate returns
``(ok, detail)`` — the detail string is the one-line explanation that
ends up in the report envelope and on stderr when the gate fails.

Vocabulary (params in braces):

``zero_lost_writes``
    The end-of-run durability probe found every flushed byte at the
    origin (``metrics["lost_writes"] == 0``).
``integrity``
    Every cloned/replayed guest image matched its golden bytes.
``replay_identical``
    Running the same spec + seed twice produced bit-identical metrics.
``makespan_ceiling {phase, max_s}``
    A phase's simulated makespan stays under a ceiling.
``throughput_floor {phase, min_mb_per_s}``
    A clone phase's aggregate MB/s (cloned bytes / makespan) stays
    above a floor.
``wan_bytes_ceiling {max_mb[, phase]}``
    Total (or per-phase) WAN traffic stays under a ceiling.
``peer_hit_min {min_hits[, min_ratio]}``
    Cooperative peer caches served at least ``min_hits`` blocks
    (and optionally at least ``min_ratio`` of lookups).
``demotions_min {min}``
    Exclusive cascades demoted at least ``min`` victims downstream.
``golden_signature {signature}``
    The run's timing signature (phase makespans + final clock) equals a
    pinned golden value.
``downtime_ceiling {phase, max_s}``
    The worst per-VM downtime in a migration wave stays under a
    ceiling.
``check_report``
    (bench scenarios) the wrapped driver's own ``check_report`` gates
    all passed — ``metrics["check_failures"]`` is empty.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.scenario.spec import GateSpec, SpecError

__all__ = ["GATES", "evaluate_gates", "validate_gates"]


def _phase_row(metrics: dict, params: dict, gate: str) -> dict:
    name = params.get("phase", "")
    for row in metrics.get("phases", []):
        if row.get("phase") == name:
            return row
    raise SpecError(f"gate {gate}: no phase named {name!r} in metrics")


def _zero_lost_writes(metrics: dict, params: dict) -> Tuple[bool, str]:
    lost = metrics.get("lost_writes")
    if lost is None:
        return False, "run recorded no durability probe"
    return lost == 0, f"{lost} lost write block(s) after full flush"


def _integrity(metrics: dict, params: dict) -> Tuple[bool, str]:
    ok = metrics.get("integrity_ok")
    if ok is None:
        return False, "run recorded no integrity check"
    return bool(ok), "cloned images match golden bytes" if ok \
        else "cloned image bytes diverged from golden"


def _replay_identical(metrics: dict, params: dict) -> Tuple[bool, str]:
    ok = metrics.get("replay_identical")
    if ok is None:
        return False, "run recorded no replay comparison"
    return bool(ok), "second seeded run bit-identical" if ok \
        else "second seeded run diverged"


def _makespan_ceiling(metrics: dict, params: dict) -> Tuple[bool, str]:
    row = _phase_row(metrics, params, "makespan_ceiling")
    max_s = float(params["max_s"])
    got = float(row["makespan_s"])
    return got <= max_s, (f"phase {row['phase']} makespan {got:.2f}s "
                          f"vs ceiling {max_s:.2f}s")


def _throughput_floor(metrics: dict, params: dict) -> Tuple[bool, str]:
    row = _phase_row(metrics, params, "throughput_floor")
    floor = float(params["min_mb_per_s"])
    makespan = float(row["makespan_s"])
    mb = float(row.get("cloned_mb", 0.0))
    rate = mb / makespan if makespan > 0 else 0.0
    return rate >= floor, (f"phase {row['phase']} {rate:.3f} MB/s vs "
                           f"floor {floor:.3f} MB/s")


def _wan_bytes_ceiling(metrics: dict, params: dict) -> Tuple[bool, str]:
    max_bytes = float(params["max_mb"]) * 1024 * 1024
    if "phase" in params:
        row = _phase_row(metrics, params, "wan_bytes_ceiling")
        got = float(row.get("wan_bytes", 0.0))
        label = f"phase {row['phase']}"
    else:
        got = float(metrics.get("wan_bytes_total", 0.0))
        label = "total"
    return got <= max_bytes, (f"{label} WAN bytes {got / 1e6:.1f} MB vs "
                              f"ceiling {params['max_mb']} MB")


def _peer_hit_min(metrics: dict, params: dict) -> Tuple[bool, str]:
    stats = metrics.get("peer_stats")
    if not stats:
        return False, "run recorded no peer-cache stats"
    hits = int(stats.get("peer_hits", 0))
    min_hits = int(params.get("min_hits", 1))
    ok = hits >= min_hits
    detail = f"{hits} peer hit(s) vs floor {min_hits}"
    if "min_ratio" in params:
        ratio = float(metrics.get("peer_hit_ratio", 0.0))
        ok = ok and ratio >= float(params["min_ratio"])
        detail += f", hit ratio {ratio:.3f} vs {params['min_ratio']}"
    return ok, detail


def _demotions_min(metrics: dict, params: dict) -> Tuple[bool, str]:
    stats = metrics.get("demotion_stats")
    if not stats:
        return False, "run recorded no demotion stats"
    out = int(stats.get("demotions_out", 0))
    floor = int(params.get("min", 1))
    return out >= floor, f"{out} demotion(s) vs floor {floor}"


def _golden_signature(metrics: dict, params: dict) -> Tuple[bool, str]:
    want = params["signature"]
    got = metrics.get("sim_signature")
    return got == want, ("timing signature matches golden" if got == want
                         else f"signature {got} != golden {want}")


def _downtime_ceiling(metrics: dict, params: dict) -> Tuple[bool, str]:
    row = _phase_row(metrics, params, "downtime_ceiling")
    max_s = float(params["max_s"])
    got = float(row.get("max_downtime_s", float("inf")))
    return got <= max_s, (f"phase {row['phase']} worst downtime "
                          f"{got:.2f}s vs ceiling {max_s:.2f}s")


def _check_report(metrics: dict, params: dict) -> Tuple[bool, str]:
    failures = metrics.get("check_failures")
    if failures is None:
        return False, "run recorded no check_report result"
    if failures:
        return False, "; ".join(str(f) for f in failures)
    return True, "driver check_report passed"


GATES = {
    "zero_lost_writes": _zero_lost_writes,
    "integrity": _integrity,
    "replay_identical": _replay_identical,
    "makespan_ceiling": _makespan_ceiling,
    "throughput_floor": _throughput_floor,
    "wan_bytes_ceiling": _wan_bytes_ceiling,
    "peer_hit_min": _peer_hit_min,
    "demotions_min": _demotions_min,
    "golden_signature": _golden_signature,
    "downtime_ceiling": _downtime_ceiling,
    "check_report": _check_report,
}

_REQUIRED_PARAMS = {
    "makespan_ceiling": ("phase", "max_s"),
    "throughput_floor": ("phase", "min_mb_per_s"),
    "wan_bytes_ceiling": ("max_mb",),
    "golden_signature": ("signature",),
    "downtime_ceiling": ("phase", "max_s"),
}


def validate_gates(gates) -> None:
    """Reject unknown gate names / missing params at spec-load time."""
    for gate in gates:
        if gate.name not in GATES:
            raise SpecError(f"unknown gate {gate.name!r}; vocabulary: "
                            f"{sorted(GATES)}")
        for param in _REQUIRED_PARAMS.get(gate.name, ()):
            if param not in gate.params:
                raise SpecError(f"gate {gate.name}: missing required "
                                f"param {param!r}")


def evaluate_gates(gates, metrics: dict) -> List[Dict]:
    """Evaluate every gate; returns report rows [{name, ok, detail,
    params}] in spec order."""
    validate_gates(gates)
    rows = []
    for gate in gates:
        ok, detail = GATES[gate.name](metrics, gate.params)
        rows.append({"name": gate.name, "ok": bool(ok),
                     "detail": detail, "params": dict(gate.params)})
    return rows


def default_gates_for(kind: str):
    """Gates applied when a spec declares none."""
    if kind == "bench":
        return (GateSpec(name="check_report"),)
    return ()
