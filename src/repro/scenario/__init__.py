"""Declarative fleet-scenario engine (the vm5k-style control plane).

One spec — a YAML/JSON/py document parsed into :class:`ScenarioSpec` —
drives the full pipeline: topology build, session/cascade construction,
arrival-scheduled workload phases (clone storms, trace replays,
live-migration waves, golden-image rollouts), composed fault plans, and
a uniform report/gate stage emitting one ``BENCH_*.json`` envelope.

* :mod:`repro.scenario.spec` — the dataclass schema + quick profiles;
* :mod:`repro.scenario.loader` — file formats and the ``scenarios/``
  library directory;
* :mod:`repro.scenario.arrivals` — seeded arrival processes (fixed
  stagger, uniform window, Poisson, diurnal curve);
* :mod:`repro.scenario.gates` — the named-assertion vocabulary;
* :mod:`repro.scenario.runner` — the native fleet runner plus the
  adapters that run every legacy ``*bench`` driver through the same
  envelope;
* :mod:`repro.scenario.schema` — the shared report JSON schema and the
  dependency-free validator the tier-1 suite checks archives with.
"""

from repro.scenario.spec import (
    ArrivalSpec,
    BenchSpec,
    FaultSpec,
    GateSpec,
    ImageSpec,
    PhaseSpec,
    ScenarioSpec,
    SessionSpec,
    SpecError,
    TopologySpec,
)

__all__ = [
    "ArrivalSpec",
    "BenchSpec",
    "FaultSpec",
    "GateSpec",
    "ImageSpec",
    "PhaseSpec",
    "ScenarioSpec",
    "SessionSpec",
    "SpecError",
    "TopologySpec",
]
