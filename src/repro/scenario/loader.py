"""Load scenario documents from disk.

Three formats, chosen by suffix:

``.yaml`` / ``.yml``
    The usual form (needs PyYAML; a clear :class:`SpecError` is raised
    when it is missing rather than an ImportError mid-run).
``.json``
    Always available.
``.py``
    Executed in an empty namespace; the module must bind ``SPEC`` to a
    plain dict.  For specs that want comments-with-code (computed
    sweeps, shared constants).

Bare names resolve against the repository's ``scenarios/`` library:
``load_spec("fault_smoke")`` finds ``scenarios/fault_smoke.yaml``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.scenario.gates import default_gates_for, validate_gates
from repro.scenario.spec import ScenarioSpec, SpecError

__all__ = ["SCENARIO_DIR", "list_specs", "load_spec"]

#: repo_root/scenarios — the spec library the CLI matrix runs from.
SCENARIO_DIR = Path(__file__).resolve().parents[3] / "scenarios"

_SUFFIXES = (".yaml", ".yml", ".json", ".py")


def _parse_yaml(text: str, where: str) -> dict:
    try:
        import yaml
    except ImportError:
        raise SpecError(
            f"{where}: PyYAML is not installed — use a .json or .py "
            "spec, or install PyYAML") from None
    return yaml.safe_load(text)


def _parse_py(text: str, where: str) -> dict:
    namespace: dict = {}
    exec(compile(text, where, "exec"), namespace)
    if "SPEC" not in namespace:
        raise SpecError(f"{where}: .py specs must define SPEC (a dict)")
    return namespace["SPEC"]


def _resolve(name_or_path: str) -> Path:
    path = Path(name_or_path)
    if path.suffix in _SUFFIXES and path.exists():
        return path
    for suffix in _SUFFIXES:
        candidate = SCENARIO_DIR / f"{name_or_path}{suffix}"
        if candidate.exists():
            return candidate
    raise SpecError(
        f"no scenario {name_or_path!r}: not a spec file and not found "
        f"in {SCENARIO_DIR} (known: {[s.name for s in list_specs()]})")


def load_spec(name_or_path: str) -> ScenarioSpec:
    """Parse + validate one spec (quick profile NOT applied — callers
    opt in via ``spec.quicked()``)."""
    path = _resolve(name_or_path)
    text = path.read_text()
    where = str(path)
    if path.suffix in (".yaml", ".yml"):
        data = _parse_yaml(text, where)
    elif path.suffix == ".json":
        data = json.loads(text)
    else:
        data = _parse_py(text, where)
    spec = ScenarioSpec.from_dict(data, where=where)
    # Gate names and params are part of load-time validation: a typo'd
    # gate must fail `scenario check`, not the end of a long run.
    validate_gates(tuple(spec.gates) or default_gates_for(spec.kind))
    if spec.quick:
        quick = spec.quicked()
        validate_gates(tuple(quick.gates)
                       or default_gates_for(quick.kind))
    return spec


def list_specs() -> List[ScenarioSpec]:
    """Every spec in the library directory, sorted by name."""
    specs = []
    if SCENARIO_DIR.is_dir():
        for path in sorted(SCENARIO_DIR.iterdir()):
            if path.suffix in _SUFFIXES and not path.name.startswith("_"):
                specs.append(load_spec(str(path)))
    return sorted(specs, key=lambda spec: spec.name)
