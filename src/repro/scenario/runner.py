"""Execute a :class:`~repro.scenario.spec.ScenarioSpec`.

Two paths share one report envelope:

* **fleet** specs run natively: the runner builds the testbed and
  cascade the spec declares, schedules each phase's per-peer work on
  seeded arrival offsets, composes the declared fault plans onto a
  single :class:`~repro.sim.faults.FaultInjector`, and closes with a
  durability probe (write through every session, flush every tier,
  diff the origin bytes).  The resulting ``metrics`` dict is pure
  simulation output — no wall-clock, no global-counter names — so a
  second run of the same spec + seed must reproduce it bit-identically
  (the ``replay_identical`` gate runs the whole scenario twice and
  compares).

* **bench** specs delegate to a legacy ``repro.experiments`` driver
  through :func:`run_bench_driver`; the driver's own ``check_report``
  failures land in ``metrics["check_failures"]`` where the
  ``check_report`` gate reads them.

Either way the envelope is::

    {"schema_version": 1, "benchmark": "scenario", "scenario": ...,
     "kind": ..., "driver": ..., "quick": ..., "seed": ...,
     "gates": [{name, ok, detail, params}], "ok": ..., "metrics": {...}}

which is exactly the strict branch of ``bench_schema.json``.
"""

from __future__ import annotations

import json
import random
from contextlib import contextmanager
from typing import Dict, List, Tuple

from repro.scenario.arrivals import arrival_offsets
from repro.scenario.gates import default_gates_for, evaluate_gates, \
    validate_gates
from repro.scenario.spec import ImageSpec, ScenarioSpec, SessionSpec, \
    SpecError

__all__ = ["run_bench_driver", "run_spec"]

MB = 1024 * 1024

#: Default retransmission ladder applied to every RPC hop when a spec
#: declares faults (sessions via ``harden_rpc``, cascade levels by
#: attribute — both reach the same RpcClient knobs).
_DEFAULT_HARDEN = {"timeout": 1.0, "max_retries": 8, "backoff": 2.0,
                   "max_timeout": 8.0}


# --------------------------------------------------------------------------
# Fleet runner: construction helpers
# --------------------------------------------------------------------------

@contextmanager
def _readahead(depth: int):
    """Scoped process-global readahead override (construction-time
    knob; the save/restore discipline of cascadebench)."""
    from repro.core.config import pipeline_overrides, set_pipeline_overrides
    saved = pipeline_overrides().get("readahead_depth")
    set_pipeline_overrides(readahead_depth=depth)
    try:
        yield
    finally:
        set_pipeline_overrides(readahead_depth=saved)


def _materialize_image(fs, img: ImageSpec):
    from repro.vm.image import VmConfig, VmImage
    image = VmImage.create(
        fs, f"/images/{img.name}",
        VmConfig(name=img.name, memory_mb=img.memory_mb,
                 disk_gb=img.disk_gb, persistent=False, seed=img.seed),
        zero_fraction=img.zero_fraction)
    if img.metadata:
        image.generate_metadata()
    return image


def _cache_configs(ses: SessionSpec):
    """Client + intermediate-level cache geometries from the spec."""
    from repro.core.config import ProxyCacheConfig
    client = ProxyCacheConfig(capacity_bytes=ses.client_cache_mb * MB,
                              n_banks=8, associativity=4,
                              eviction=ses.eviction)
    sizes = list(ses.level_cache_mb)
    if not sizes:
        sizes = [max(4 * ses.client_cache_mb, 64)]
    while len(sizes) < ses.depth - 1:     # last entry repeats origin-ward
        sizes.append(sizes[-1])
    levels = [ProxyCacheConfig(capacity_bytes=mb * MB, n_banks=16,
                               associativity=4, eviction=ses.eviction)
              for mb in sizes[:ses.depth - 1]]
    return client, levels


def _harden_everything(spec: ScenarioSpec, sessions, cascade) -> None:
    """Arm the retransmission ladder on every RPC hop (client proxies
    via harden_rpc, cascade levels directly on their upstream client)."""
    knobs = dict(_DEFAULT_HARDEN)
    knobs.update(spec.sessions.harden or {})
    for session in sessions:
        session.harden_rpc(**knobs)
    for level in cascade.levels:
        upstream = level.proxy.upstream
        for key in ("timeout", "max_retries", "backoff", "max_timeout"):
            if key in knobs:
                setattr(upstream, key, knobs[key])


def _attach_faults(spec: ScenarioSpec, env, testbed, endpoint, sessions,
                   cascade):
    """One injector bound to the standard target names + every layer
    port, with all declared plans merged onto it."""
    from repro.sim.chaos import attach_stack, layer_fault
    from repro.sim.faults import FaultInjector, FaultKind, FaultPlan

    injector = FaultInjector(env)
    injector.attach("wan", list(testbed.wan_segment))
    injector.attach("origin", endpoint.server)
    for i, session in enumerate(sessions):
        injector.attach(f"client:{i}", session.client_proxy)
        attach_stack(injector, f"s{i}", session.client_proxy)
    for k, level in enumerate(cascade.levels, start=2):
        injector.attach(f"level:{k}", level.proxy)
        attach_stack(injector, f"l{k}", level.proxy)

    plan = FaultPlan([])
    for fault in spec.faults:
        if fault.kind == "link_flap":
            plan = plan.merged(FaultPlan.link_flap(
                fault.target, first_down=fault.at,
                down_for=fault.down_for, flaps=fault.flaps,
                period=fault.period or None))
        elif fault.kind == "server_outage":
            plan = plan.merged(FaultPlan.server_outage(
                fault.target, at=fault.at, down_for=fault.down_for))
        elif fault.kind == "server_crash":
            plan = plan.merged(FaultPlan.server_crash(
                fault.target, at=fault.at))
        elif fault.kind == "proxy_restart":
            plan = plan.merged(FaultPlan.proxy_restart(
                fault.target, at=fault.at, down_for=fault.down_for))
        elif fault.kind == "seeded_flaps":
            plan = plan.merged(FaultPlan.seeded_flaps(
                fault.target, seed=fault.seed or spec.seed,
                horizon=fault.horizon, mean_up=fault.mean_up,
                mean_down=fault.mean_down, start_after=fault.at))
        elif fault.kind == "layer":
            plan = plan.merged(layer_fault(
                FaultKind(fault.fault), fault.target, at=fault.at,
                arg=fault.arg))
        else:                             # pragma: no cover - spec rejects
            raise SpecError(f"unknown fault kind {fault.kind!r}")
    injector.schedule(plan)
    return injector


# --------------------------------------------------------------------------
# Fleet runner: one deterministic pass
# --------------------------------------------------------------------------

def _run_fleet_once(spec: ScenarioSpec) -> Dict:
    from repro.core.session import GvfsSession, LocalMount, Scenario, \
        ServerEndpoint, build_cascade
    from repro.net.link import LinkMode
    from repro.net.topology import make_paper_testbed
    from repro.nfs.protocol import NFS_BLOCK_SIZE
    from repro.sim import AllOf
    from repro.vm.cloning import CloneManager
    from repro.vm.image import VmImage
    from repro.vm.migration import MigrationManager
    from repro.vm.monitor import VmMonitor
    from repro.workloads.traces import IoTrace, TraceEvent, \
        trace_to_workload

    n = spec.topology.peers
    link_mode = (LinkMode.FLUID if spec.topology.link_mode == "fluid"
                 else LinkMode.EXACT)
    testbed = make_paper_testbed(n_compute=n, link_mode=link_mode)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    fs = endpoint.export.fs
    images = {img.name: _materialize_image(fs, img)
              for img in spec.topology.images}
    image_specs = {img.name: img for img in spec.topology.images}

    client_cfg, level_cfgs = _cache_configs(spec.sessions)
    with _readahead(spec.sessions.readahead_depth):
        cascade = build_cascade(testbed, endpoint, level_cfgs,
                                name=f"scn-{spec.name}")
        directory = (testbed.peer_directory()
                     if spec.sessions.mode == "cooperative" else None)
        sessions = [GvfsSession.build(
            testbed, Scenario.WAN_CACHED, endpoint=endpoint,
            compute_index=i, cache_config=client_cfg, via=cascade,
            peer_directory=directory,
            exclusive=(spec.sessions.mode == "exclusive"))
            for i in range(n)]
        if spec.sessions.mode == "exclusive":
            cascade.arm_exclusive()

    monitors = [VmMonitor(env, testbed.compute[i]) for i in range(n)]
    managers = [CloneManager(env, monitors[i], sessions[i].mount,
                             LocalMount(testbed.compute[i].local))
                for i in range(n)]

    injector = None
    if spec.faults:
        _harden_everything(spec, sessions, cascade)
        injector = _attach_faults(spec, env, testbed, endpoint, sessions,
                                  cascade)

    def wan_bytes() -> int:
        return sum(link.bytes_sent for link in testbed.wan_segment)

    phases: List[Dict] = []
    vms: Dict[int, object] = {}           # peer -> last-booted VM
    integrity_ok = True

    # Durability-probe files exist origin-side before the run starts so
    # the mounts can open them mid-simulation.
    fs.mkdir("/probe")
    probe_payloads = []
    for i in range(n):
        fs.create(f"/probe/w{i}")
        probe_payloads.append(
            random.Random(f"{spec.seed}:probe:{i}").randbytes(
                4 * NFS_BLOCK_SIZE))

    # ---- phase implementations (all driver-generator fragments) ------

    def staggered(phase, work):
        """Run ``work(i)`` per peer on the phase's arrival offsets."""
        offsets = arrival_offsets(phase.arrival, n, spec.seed, phase.name)

        def one(i):
            yield env.timeout(offsets[i])
            yield from work(i)

        yield AllOf(env, [env.process(one(i)) for i in range(n)])

    def check_clones(phase, image) -> bool:
        origin = fs.read(image.memory_path)
        return all(
            testbed.compute[i].local.fs.read(
                f"/clones/{phase.name}-p{i}/{VmImage.MEMORY_NAME}")
            == origin
            for i in range(n))

    def clone_storm(phase, extra=None):
        nonlocal integrity_ok
        image = images[phase.image]
        t0, w0 = env.now, wan_bytes()

        def work(i):
            result = yield env.process(managers[i].clone(
                image.directory, f"/clones/{phase.name}-p{i}",
                clone_name=f"{phase.name}-p{i}"))
            vms[i] = result.vm

        yield from staggered(phase, work)
        integrity_ok = integrity_ok and check_clones(phase, image)
        row = {"phase": phase.name, "kind": phase.kind,
               "makespan_s": env.now - t0,
               "wan_bytes": wan_bytes() - w0,
               "cloned_mb": n * image.config.memory_bytes // MB}
        row.update(extra or {})
        phases.append(row)

    def trace_load(phase):
        t0, w0 = env.now, wan_bytes()

        def peer_trace(i) -> IoTrace:
            events = []
            size = int(phase.file_mb * MB)
            for j in range(phase.reads):
                events.append(TraceEvent("read", f"{phase.name}-f{j}",
                                         size, phase.read_fraction))
            for j in range(phase.writes):
                events.append(TraceEvent("write", f"{phase.name}-w{j}",
                                         size, phase.read_fraction))
            if phase.compute_s > 0:
                events.append(TraceEvent("compute",
                                         seconds=phase.compute_s))
            rng = random.Random(f"{spec.seed}:{phase.name}:p{i}")
            rng.shuffle(events)
            return IoTrace(application=f"{phase.name}-p{i}",
                           events=events)

        def work(i):
            workload = trace_to_workload(peer_trace(i), phase.name)
            yield env.process(workload.run(vms[i]))

        yield from staggered(phase, work)
        phases.append({"phase": phase.name, "kind": phase.kind,
                       "makespan_s": env.now - t0,
                       "wan_bytes": wan_bytes() - w0})

    def restart_clients(phase):
        t0 = env.now
        for session in sessions:
            yield env.process(session.cold_caches())
        phases.append({"phase": phase.name, "kind": phase.kind,
                       "makespan_s": env.now - t0, "wan_bytes": 0})

    def rollout(phase):
        """Golden-image rollout: fleet-wide invalidation (client
        proxies, every cascade level, the peer directory through its
        observers), then a storm on the new version."""
        for session in sessions:
            yield env.process(session.cold_caches())
        for level in cascade.levels:
            # Levels absorb client write-back; drain before dropping.
            yield env.process(level.proxy.flush())
            yield env.process(level.proxy.quiesce())
            level.proxy.invalidate_caches()
        yield from clone_storm(
            phase, extra={"invalidated_levels": len(cascade.levels) + 1})

    def migration_wave(phase):
        """Every peer boots a VM from server-side state, then migrates
        it to its ring neighbour through the image server."""
        img = image_specs[phase.image]
        # Per-peer VM state materialized origin-side (free of sim cost):
        # resume then streams it across the WAN through each mount.
        for i in range(n):
            _materialize_image(fs, ImageSpec(
                name=f"{phase.name}-p{i}", memory_mb=img.memory_mb,
                disk_gb=img.disk_gb, seed=img.seed + i,
                zero_fraction=img.zero_fraction,
                metadata=img.metadata))

        t0, w0 = env.now, wan_bytes()
        downtimes = [0.0] * n

        def work(i):
            vm_dir = f"/images/{phase.name}-p{i}"
            vm = yield env.process(monitors[i].resume(
                sessions[i].mount, vm_dir))
            dst = (i + 1) % n
            mover = MigrationManager(env, monitors[i], sessions[i],
                                     monitors[dst], sessions[dst])
            result = yield from mover.migrate(
                vm, vm_dir, dest_dir=f"/fleet/{phase.name}-p{i}-moved")
            downtimes[i] = result.downtime_seconds

        yield from staggered(phase, work)
        phases.append({"phase": phase.name, "kind": phase.kind,
                       "makespan_s": env.now - t0,
                       "wan_bytes": wan_bytes() - w0,
                       "downtimes_s": downtimes,
                       "max_downtime_s": max(downtimes)})

    def flush(phase):
        t0 = env.now
        for session in sessions:
            yield env.process(session.flush())
        phases.append({"phase": phase.name, "kind": phase.kind,
                       "makespan_s": env.now - t0, "wan_bytes": 0})

    def durability_probe():
        """Write through every mount, flush every tier client-ward →
        origin-ward, then diff the origin bytes block by block."""
        for i in range(n):
            handle = yield env.process(
                sessions[i].mount.open(f"/probe/w{i}"))
            yield env.process(handle.write(0, probe_payloads[i]))
        for session in sessions:
            yield env.process(session.flush())
        for level in cascade.levels:
            yield env.process(level.proxy.flush())

    kinds = {"clone_storm": clone_storm, "trace_load": trace_load,
             "restart_clients": restart_clients, "rollout": rollout,
             "migration_wave": migration_wave, "flush": flush}

    def driver(env):
        for phase in spec.phases:
            yield from kinds[phase.kind](phase)
        yield from durability_probe()

    env.process(driver(env))
    env.run()

    lost = 0
    for i in range(n):
        server = fs.read(f"/probe/w{i}")
        lost += sum(
            1 for b in range(4)
            if server[b * NFS_BLOCK_SIZE:(b + 1) * NFS_BLOCK_SIZE]
            != probe_payloads[i][b * NFS_BLOCK_SIZE:
                                 (b + 1) * NFS_BLOCK_SIZE])

    metrics: Dict = {
        "peers": n,
        "mode": spec.sessions.mode,
        "depth": spec.sessions.depth,
        "phases": phases,
        "total_sim_seconds": env.now,
        "wan_bytes_total": wan_bytes(),
        "integrity_ok": integrity_ok,
        "lost_writes": lost,
        "levels": _cascade_rows(sessions[0], cascade),
        "sim_signature": [round(p["makespan_s"], 9) for p in phases]
        + [round(env.now, 9)],
    }
    metrics.update(_peer_metrics(sessions))
    metrics["demotion_stats"] = _demotion_metrics(sessions, cascade)
    if injector is not None:
        metrics["fault_timeline"] = [list(entry)
                                     for entry in injector.timeline]
    return metrics


def _cascade_rows(session, cascade) -> List[Dict]:
    """Per-level block-cache stats, client first — name-free so the
    rows are replay-stable (session names use a process-global
    counter)."""
    stacks = [session.client_proxy] + [lvl.proxy for lvl in cascade.levels]
    rows = []
    for tier, stack in enumerate(stacks, start=1):
        counters = stack.stats_snapshot().get("block-cache", {})
        hits = counters.get("block_cache_hits", 0)
        misses = counters.get("block_cache_misses", 0)
        rows.append({"level": tier, "hits": hits, "misses": misses,
                     "hit_ratio": (hits / (hits + misses)
                                   if hits + misses else 0.0)})
    return rows


def _peer_metrics(sessions) -> Dict:
    totals = {"peer_hits": 0, "peer_misses": 0, "peer_stale": 0,
              "peer_bytes": 0}
    present = False
    for session in sessions:
        layer = session.client_proxy.layer("peer-cache")
        if layer is None:
            continue
        present = True
        for key in totals:
            totals[key] += getattr(layer.stats, key)
    if not present:
        return {"peer_stats": None, "peer_hit_ratio": 0.0}
    served = (totals["peer_hits"] + totals["peer_misses"]
              + totals["peer_stale"])
    return {"peer_stats": totals,
            "peer_hit_ratio": (totals["peer_hits"] / served
                               if served else 0.0)}


def _demotion_metrics(sessions, cascade) -> Dict:
    totals = {"demotions_out": 0, "demotions_in": 0, "demotion_drops": 0}
    stacks = ([s.client_proxy for s in sessions]
              + [lvl.proxy for lvl in cascade.levels])
    for stack in stacks:
        layer = stack.layer("block-cache")
        if layer is None:
            continue
        for key in totals:
            totals[key] += getattr(layer.stats, key)
    return totals


# --------------------------------------------------------------------------
# Bench adapters
# --------------------------------------------------------------------------

def _load_baseline(path: str):
    with open(path) as handle:
        return json.load(handle)


def _parse_farm_cells(cells) -> List[Tuple[int, bool]]:
    """Farm cells as ``"4"`` / ``"4+crash"`` strings (YAML-friendly)."""
    parsed = []
    for cell in cells:
        if isinstance(cell, str):
            body, _, tag = cell.partition("+")
            parsed.append((int(body), tag == "crash"))
        else:
            servers, crash = cell
            parsed.append((int(servers), bool(crash)))
    return parsed


def run_bench_driver(name: str, params: Dict, quick: bool,
                     seed: int = 0) -> Tuple[Dict, List[str], str]:
    """Run a legacy bench driver; returns ``(report_dict, failures,
    formatted_text)``.  ``params`` are the spec's ``bench.params``
    (already quick-merged); baseline paths are loaded here so specs
    stay plain data."""
    params = dict(params)
    if name == "perf":
        from repro.experiments import perf
        max_slowdown = params.pop("max_slowdown", None)
        baseline = params.pop("baseline", None)
        report = perf.run_harness(
            workloads=params.pop("workloads", None), quick=quick,
            baseline_path=baseline, **params)
        failures = perf_gate_failures(report, max_slowdown)
        return report.to_dict(), failures, perf.format_report(report)
    if name == "faultbench":
        from repro.experiments import faultbench as mod
        params.setdefault("seed", seed or mod.DEFAULT_SEED)
        report = mod.run_faultbench(quick=quick, **params)
        return report, mod.check_report(report), mod.format_report(report)
    if name == "chaosbench":
        from repro.experiments import chaosbench as mod
        params.setdefault("seed", seed or mod.DEFAULT_SEED)
        report = mod.run_chaosbench(quick=quick, **params)
        return report, mod.check_report(report), mod.format_report(report)
    if name == "cascadebench":
        from repro.experiments import cascadebench as mod
        report = mod.run_cascadebench(quick=quick, **params)
        return report, mod.check_report(report), mod.format_report(report)
    if name == "coopbench":
        from repro.experiments import coopbench as mod
        report = mod.run_coopbench(quick=quick, **params)
        return report, mod.check_report(report), mod.format_report(report)
    if name == "fleetbench":
        from repro.experiments import fleetbench as mod
        baseline = params.pop("baseline", None)
        report = mod.run_fleetbench(quick=quick, **params)
        base = _load_baseline(baseline) if baseline else None
        return (report, mod.check_report(report, baseline=base),
                mod.format_report(report))
    if name == "farmbench":
        from repro.experiments import farmbench as mod
        baseline = params.pop("baseline", None)
        if "cells" in params:
            params["cells"] = _parse_farm_cells(params["cells"])
        if seed:
            params.setdefault("seed", seed)
        report = mod.run_farmbench(quick=quick, **params)
        base = _load_baseline(baseline) if baseline else None
        return (report, mod.check_report(report, baseline=base),
                mod.format_report(report))
    raise SpecError(f"unknown bench driver {name!r}")


def perf_gate_failures(report, max_slowdown=None) -> List[str]:
    """The perf harness's pass/fail conditions as check_report-style
    failure strings (shared with the ``repro.cli perf`` gate).

    ``golden_ok is False`` fails; ``None`` (golden check skipped) does
    not.  ``max_slowdown`` bounds per-workload wall-clock regression
    against the baseline archive, exactly the old ``--max-slowdown``
    CLI semantics."""
    failures = []
    if report.golden_ok is False:
        failures.append("simulated-time results drifted from golden "
                        "timings (a perf change must be timing-neutral)")
    if max_slowdown:
        for name, speedup in (report.speedup or {}).items():
            if speedup < 1.0 / float(max_slowdown):
                failures.append(
                    f"{name}: {1 / speedup:.2f}x slower than baseline "
                    f"(bound {float(max_slowdown):g}x)")
    return failures


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def _format_fleet(spec: ScenarioSpec, metrics: Dict) -> str:
    lines = [f"scenario {spec.name} ({spec.sessions.mode}, depth "
             f"{spec.sessions.depth}, {metrics['peers']} peer(s), "
             f"seed {spec.seed})"]
    lines.append("    phase              kind             makespan(s)"
                 "   WAN-MB")
    for row in metrics["phases"]:
        lines.append(f"    {row['phase']:<18} {row['kind']:<15}"
                     f" {row['makespan_s']:>11.2f}"
                     f" {row['wan_bytes'] / MB:>8.1f}")
    lines.append(f"  total {metrics['total_sim_seconds']:.2f}s sim, "
                 f"{metrics['wan_bytes_total'] / MB:.1f} MB over the WAN, "
                 f"{metrics['lost_writes']} lost write block(s)")
    return "\n".join(lines)


def _format_gates(rows: List[Dict]) -> str:
    lines = ["  gates:"]
    for row in rows:
        mark = "PASS" if row["ok"] else "FAIL"
        lines.append(f"    [{mark}] {row['name']}: {row['detail']}")
    return "\n".join(lines)


def run_spec(spec: ScenarioSpec, quick: bool = False) -> Tuple[Dict, str]:
    """Run a scenario; returns ``(report_envelope, formatted_text)``.

    The envelope's ``ok`` is the conjunction of its gates — the CLI
    turns ``not ok`` into exit code 1, uniformly for every scenario.
    """
    if quick:
        spec = spec.quicked()
    gates = tuple(spec.gates) or default_gates_for(spec.kind)
    validate_gates(gates)

    if spec.kind == "bench":
        report, failures, text = run_bench_driver(
            spec.bench.driver, spec.bench.params, quick, spec.seed)
        metrics = dict(report)
        metrics["check_failures"] = list(failures)
    else:
        metrics = _run_fleet_once(spec)
        if any(g.name == "replay_identical" for g in gates):
            metrics["replay_identical"] = _run_fleet_once(spec) == metrics
        text = _format_fleet(spec, metrics)

    gate_rows = evaluate_gates(gates, metrics)
    envelope = {
        "schema_version": 1,
        "benchmark": "scenario",
        "scenario": spec.name,
        "kind": spec.kind,
        "driver": spec.bench.driver or "fleet",
        "quick": bool(quick),
        "seed": spec.seed,
        "gates": gate_rows,
        "ok": all(row["ok"] for row in gate_rows),
        "metrics": metrics,
    }
    return envelope, text + "\n" + _format_gates(gate_rows)
