"""The shared BENCH report schema and a dependency-free validator.

Every ``results/BENCH_*.json`` archive — scenario envelopes and the
pre-scenario PR2–PR9 reports alike — must satisfy
``bench_schema.json`` (shipped beside this module).  The tier-1 suite
validates the whole archive directory with it, so the container cannot
depend on the ``jsonschema`` package being installed: ``_check``
implements the small subset of JSON Schema the document uses
(type / const / enum / required / properties / additionalProperties /
items / oneOf / anyOf / not / minimum / minItems).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, List

__all__ = ["SchemaError", "bench_schema", "validate_report"]

_SCHEMA_PATH = Path(__file__).with_name("bench_schema.json")

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """A document failed schema validation."""


_SCHEMA_CACHE: dict = {}


def bench_schema() -> dict:
    # Cached: the validator walks it on every report, including once per
    # archived BENCH file in the tier-1 suite.  Callers must not mutate.
    if not _SCHEMA_CACHE:
        _SCHEMA_CACHE.update(json.loads(_SCHEMA_PATH.read_text()))
    return _SCHEMA_CACHE


def _type_ok(value: Any, name: str) -> bool:
    py = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False
    return isinstance(value, py)


def _check(value: Any, schema: dict, path: str, errors: List[str]) -> None:
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, "
                      f"got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(f"{path}: expected {schema['type']}, got "
                      f"{type(value).__name__}")
        return
    if "minimum" in schema and isinstance(value, (int, float)) \
            and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "not" in schema:
        sub: List[str] = []
        _check(value, schema["not"], path, sub)
        if not sub:
            errors.append(f"{path}: matches forbidden schema")
    for branch_kind in ("oneOf", "anyOf"):
        if branch_kind in schema:
            matches = []
            failures = []
            for i, branch in enumerate(schema[branch_kind]):
                sub = []
                _check(value, branch, f"{path}<{branch_kind}[{i}]>", sub)
                if sub:
                    failures.extend(sub)
                else:
                    matches.append(i)
            if not matches:
                errors.append(f"{path}: no {branch_kind} branch matched "
                              f"({'; '.join(failures[:4])})")
            elif branch_kind == "oneOf" and len(matches) > 1:
                errors.append(f"{path}: oneOf matched branches {matches}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub_schema in props.items():
            if key in value:
                _check(value[key], sub_schema, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            extra = sorted(set(value) - set(props))
            if extra:
                errors.append(f"{path}: unexpected key(s) {extra}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} items")
        if "items" in schema:
            for i, item in enumerate(value):
                _check(item, schema["items"], f"{path}[{i}]", errors)


def validate_report(doc: Any, schema: dict = None) -> List[str]:
    """Validate a BENCH report; returns the (possibly empty) error list."""
    errors: List[str] = []
    _check(doc, schema if schema is not None else bench_schema(),
           "$", errors)
    return errors


def assert_valid_report(doc: Any, label: str = "report") -> None:
    errors = validate_report(doc)
    if errors:
        raise SchemaError(f"{label} violates bench_schema.json:\n  "
                          + "\n  ".join(errors))
