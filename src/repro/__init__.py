"""repro — reproduction of *Distributed File System Support for Virtual
Machines in Grid Computing* (Zhao, Zhang, Figueiredo; HPDC 2004).

The package implements the paper's Grid Virtual File System (GVFS) and
every substrate its evaluation depends on:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.net` — links/routes, SSH tunnels, SCP, compression, and
  the paper's LAN/WAN testbed topology;
* :mod:`repro.storage` — disks, sparse files, local filesystems;
* :mod:`repro.nfs` — a userspace NFSv3 subset (protocol, server,
  client with kernel-style buffer cache);
* :mod:`repro.core` — **the contribution**: GVFS proxies with
  block/file disk caches, meta-data handling (zero maps, file channel)
  and middleware-driven consistency, assembled into per-user sessions;
* :mod:`repro.vm` — VM images, monitor, redo logs, cloning;
* :mod:`repro.workloads` — SPECseis / LaTeX / kernel-compile models;
* :mod:`repro.middleware` — logical accounts, image catalog, session
  orchestration;
* :mod:`repro.baselines` — SCP, plain-NFS and staging comparators;
* :mod:`repro.experiments` + :mod:`repro.analysis` — drivers and table
  renderers for every figure and table in §4.

Quickstart::

    from repro.core.session import GvfsSession, Scenario, ServerEndpoint
    from repro.net.topology import make_paper_testbed
    from repro.vm.image import VmImage, VmConfig

    testbed = make_paper_testbed()
    endpoint = ServerEndpoint(testbed.env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden"))
    image.generate_metadata()
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint)
    # session.mount now serves the image over a caching proxy chain.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "experiments",
    "middleware",
    "net",
    "nfs",
    "sim",
    "storage",
    "vm",
    "workloads",
]
