"""Application access profiling and profile-driven prefetch.

§3.2.2: "Grid middleware should be able to accumulate knowledge for
applications from their past behaviors and make intelligent decisions
based on the knowledge", and §6 names "dynamic profiling of application
data access behavior to support pre-fetching and high-bandwidth
transfers of large data blocks in a selective manner" as future work.

This module implements that loop:

* :class:`AccessProfiler` observes the READ stream at a proxy and
  records the ordered set of blocks a session touched (the
  application's working set, in first-touch order);
* :class:`ApplicationKnowledgeBase` persists profiles per application
  name (the middleware's accumulated knowledge), with serialization so
  profiles survive across sessions;
* :class:`Prefetcher` replays a profile into a fresh session's proxy
  block cache with configurable concurrency — batched, pipelined
  fetches instead of the demand-paged one-block-per-round-trip pattern,
  hiding WAN latency before the application starts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest
from repro.sim import AllOf, Environment

__all__ = ["AccessProfile", "AccessProfiler", "ApplicationKnowledgeBase",
           "Prefetcher", "format_pipeline_report"]

_MAGIC = "GVFS-PROFILE-1"


@dataclass(frozen=True)
class AccessProfile:
    """Ordered first-touch block trace of one application run.

    Blocks are keyed ``(fsid, fileid, block_index)``: file ids are
    stable properties of the image on its server, so a profile recorded
    in one session addresses the same data in the next.
    """

    application: str
    blocks: Tuple[Tuple[str, int, int], ...]
    block_size: int = 8192

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def bytes_covered(self) -> int:
        return len(self.blocks) * self.block_size

    def to_bytes(self) -> bytes:
        doc = {"application": self.application,
               "block_size": self.block_size,
               "blocks": [list(b) for b in self.blocks]}
        return (_MAGIC + "\n" + json.dumps(doc, separators=(",", ":"))).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AccessProfile":
        text = raw.decode()
        magic, _, body = text.partition("\n")
        if magic != _MAGIC:
            raise ValueError(f"bad profile magic: {magic!r}")
        doc = json.loads(body)
        return cls(application=doc["application"],
                   blocks=tuple((b[0], b[1], b[2]) for b in doc["blocks"]),
                   block_size=doc["block_size"])


class AccessProfiler:
    """Records the READ stream observed at one proxy."""

    def __init__(self, application: str, block_size: int = 8192):
        self.application = application
        self.block_size = block_size
        self._seen: set = set()
        self._order: List[Tuple[str, int, int]] = []
        self.recording = True

    def observe(self, request: NfsRequest) -> None:
        """Proxy read-observer hook (attach via proxy.read_observers)."""
        if not self.recording or request.proc is not NfsProc.READ:
            return
        fh = request.fh
        first = request.offset // self.block_size
        last = (max(request.offset + request.count - 1, request.offset)
                // self.block_size)
        for idx in range(first, last + 1):
            key = (fh.fsid, fh.fileid, idx)
            if key not in self._seen:
                self._seen.add(key)
                self._order.append(key)

    def stop(self) -> AccessProfile:
        """Finish recording; returns the accumulated profile."""
        self.recording = False
        return AccessProfile(application=self.application,
                             blocks=tuple(self._order),
                             block_size=self.block_size)


class ApplicationKnowledgeBase:
    """Middleware's per-application profile store."""

    def __init__(self):
        self._profiles: Dict[str, AccessProfile] = {}

    def remember(self, profile: AccessProfile) -> None:
        self._profiles[profile.application] = profile

    def recall(self, application: str) -> Optional[AccessProfile]:
        return self._profiles.get(application)

    def applications(self) -> List[str]:
        return sorted(self._profiles)

    # Profiles can round-trip through files (e.g. stored on the image
    # server next to the application's image).
    def export(self, application: str) -> bytes:
        return self._profiles[application].to_bytes()

    def import_profile(self, raw: bytes) -> AccessProfile:
        profile = AccessProfile.from_bytes(raw)
        self.remember(profile)
        return profile


class Prefetcher:
    """Replays a profile into a proxy's block cache ahead of execution.

    Issues upstream READs with ``concurrency`` requests in flight —
    the "high-bandwidth transfers of large data blocks in a selective
    manner" of §6 — and installs each reply in the proxy block cache so
    the application's demand reads hit locally.
    """

    def __init__(self, env: Environment, proxy, concurrency: int = 8):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if proxy.block_cache is None:
            raise ValueError("prefetch requires a proxy block cache")
        self.env = env
        self.proxy = proxy
        self.concurrency = concurrency
        # Statistics
        self.blocks_fetched = 0
        self.blocks_skipped = 0

    def _fetch_one(self, fh: FileHandle, index: int,
                   block_size: int) -> Generator:
        self.proxy.register_prefetch((fh, index))
        reply = yield from self.proxy.upstream.call(NfsRequest(
            NfsProc.READ, fh=fh, offset=index * block_size,
            count=block_size,
            credentials=self.proxy.config.identity or (0, 0)))
        if reply.ok and reply.data:
            victim = yield from self.proxy.block_cache.insert(
                (fh, index), reply.data, dirty=False)
            if victim is not None:
                yield from self.proxy.layer("block-cache").dispose_victim(
                    victim)
            self.blocks_fetched += 1
        else:
            self.proxy.stats.prefetch_failed += 1
            self.proxy.layer("readahead").prefetched.discard((fh, index))
            self.blocks_skipped += 1

    def prefetch(self, profile: AccessProfile) -> Generator:
        """Process: pull every profiled block into the block cache."""
        pending: List[Tuple[FileHandle, int]] = []
        for fsid, fileid, index in profile.blocks:
            key = (FileHandle(fsid, fileid), index)
            cached = self.proxy.block_cache._where.get(key)
            if cached is not None:
                self.blocks_skipped += 1
                continue
            pending.append(key)
        for start in range(0, len(pending), self.concurrency):
            batch = pending[start:start + self.concurrency]
            jobs = [self.env.process(self._fetch_one(
                fh, index, profile.block_size)) for fh, index in batch]
            yield AllOf(self.env, jobs)


def format_pipeline_report(proxy) -> str:
    """Human-readable summary of a proxy's pipelined-I/O counters.

    Covers prefetch accuracy (readahead + profile replays), miss
    coalescing, and write coalescing — the middleware's view of whether
    the pipelined path is earning its keep for this session.
    """
    s = proxy.stats
    lines = [
        f"pipelined I/O — {proxy.config.name}",
        f"  readahead windows : {s.readahead_windows}",
        f"  prefetch issued   : {s.prefetch_issued}",
        f"  prefetch used     : {s.prefetch_used}",
        f"  prefetch failed   : {s.prefetch_failed}",
        f"  prefetch wasted   : {s.prefetch_wasted}",
        f"  prefetch accuracy : {s.prefetch_accuracy:.1%}",
        f"  coalesced misses  : {s.coalesced_misses}",
        f"  merged WRITE rpcs : {s.merged_write_rpcs}"
        f" ({s.merged_write_blocks} blocks)",
    ]
    return "\n".join(lines)
