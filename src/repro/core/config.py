"""Configuration of GVFS proxies and their caches.

The paper stresses that proxies are created *per user / per
application* and can therefore carry customized policies (§3.2.1):
cache size, write policy, block size, associativity.  These dataclasses
are those knobs; middleware builds one per session.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.eviction import POLICIES
from repro.nfs.protocol import NFS_BLOCK_SIZE, NFS_MAX_BLOCK_SIZE

__all__ = ["CachePolicy", "ProxyCacheConfig", "ProxyConfig",
           "clear_pipeline_overrides", "pipeline_overrides",
           "set_pipeline_overrides"]


class CachePolicy(enum.Enum):
    """Write policy of a proxy disk cache."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True)
class ProxyCacheConfig:
    """Geometry and policy of one proxy block cache.

    Defaults mirror §4.1: "512 file banks which are 16-way associative,
    and has a capacity of 8 GBytes".
    """

    capacity_bytes: int = 8 * 1024 * 1024 * 1024
    n_banks: int = 512
    associativity: int = 16
    block_size: int = NFS_BLOCK_SIZE
    policy: CachePolicy = CachePolicy.WRITE_BACK
    #: Keep a persistent dirty-frame journal alongside the bank files so
    #: a crashed proxy can recover its write-back dirty set (off by
    #: default: journal appends cost disk time on every dirty write).
    journal: bool = False
    #: Within-set victim-selection policy (:mod:`repro.core.eviction`):
    #: ``lru`` (the paper's default), ``lfu`` or ``2q``.  Per-proxy, so
    #: each level of a cache cascade can run a different policy.
    eviction: str = "lru"

    def __post_init__(self):
        if self.eviction not in POLICIES:
            raise ValueError(f"unknown eviction policy {self.eviction!r}; "
                             f"choose from {sorted(POLICIES)}")
        if self.block_size <= 0 or self.block_size > NFS_MAX_BLOCK_SIZE:
            raise ValueError(
                f"block_size must be in (0, {NFS_MAX_BLOCK_SIZE}], "
                f"got {self.block_size} (NFS protocol limit, §3.2.1)")
        if self.n_banks < 1 or self.associativity < 1:
            raise ValueError("n_banks and associativity must be >= 1")
        if self.capacity_bytes < self.n_banks * self.associativity * self.block_size:
            raise ValueError("capacity too small for one set per bank")

    @property
    def total_frames(self) -> int:
        return self.capacity_bytes // self.block_size

    @property
    def frames_per_bank(self) -> int:
        return max(self.total_frames // self.n_banks, self.associativity)

    @property
    def sets_per_bank(self) -> int:
        return max(self.frames_per_bank // self.associativity, 1)


@dataclass(frozen=True)
class ProxyConfig:
    """Behaviour of one GVFS proxy."""

    name: str = "gvfs-proxy"
    #: Attach a block cache with this geometry (None = forwarding only).
    cache: Optional[ProxyCacheConfig] = None
    #: Enable meta-data handling (zero maps + file channel).
    metadata: bool = True
    #: Map incoming credentials to this local identity (server-side
    #: proxies allocate short-lived logical-user accounts, §3.1).
    identity: Optional[Tuple[int, int]] = None
    #: Absorb client COMMITs when write-back caching (the middleware,
    #: not the kernel client, decides when data reaches the server).
    absorb_commits: bool = True
    #: Pipelined I/O — sequential readahead: number of blocks fetched
    #: ahead of a detected sequential miss run (0 disables readahead).
    readahead_depth: int = 8
    #: Consecutive block-cache misses of adjacent blocks before the
    #: run detector starts prefetching.
    readahead_min_run: int = 2
    #: Pipelined I/O — coalesced write-back: maximum bytes merged into
    #: one upstream WRITE RPC when flushing adjacent dirty blocks
    #: (values at or below the cache block size mean one RPC per block).
    write_coalesce_bytes: int = 64 * 1024
    #: Concurrent upstream write-back RPCs in flight during a flush.
    write_pipeline_depth: int = 4
    #: Maximum dirty blocks held in the write-back cache before new
    #: writes force synchronous write-back (or, with the upstream down,
    #: are rejected) — bounds data loss exposure.  0 disables the limit.
    dirty_high_water_blocks: int = 0

    def __post_init__(self):
        if self.readahead_depth < 0:
            raise ValueError("readahead_depth must be >= 0")
        if self.readahead_min_run < 1:
            raise ValueError("readahead_min_run must be >= 1")
        if self.write_coalesce_bytes < 0:
            raise ValueError("write_coalesce_bytes must be >= 0")
        if self.write_pipeline_depth < 1:
            raise ValueError("write_pipeline_depth must be >= 1")
        if self.dirty_high_water_blocks < 0:
            raise ValueError("dirty_high_water_blocks must be >= 0")


# -- process-wide pipelined-I/O overrides ------------------------------------
#
# Sessions are assembled deep inside experiment drivers, far from any
# command line; these overrides let the CLI (`repro bench
# --readahead-depth N --write-coalesce-bytes B`) retune every proxy a
# run builds without threading knobs through each driver signature.

_PIPELINE_KNOBS = ("readahead_depth", "readahead_min_run",
                   "write_coalesce_bytes", "write_pipeline_depth")
_pipeline_overrides: Dict[str, int] = {}


def set_pipeline_overrides(**knobs: Optional[int]) -> None:
    """Install defaults for pipelined-I/O knobs on future proxies.

    Accepts any of ``readahead_depth``, ``readahead_min_run``,
    ``write_coalesce_bytes``, ``write_pipeline_depth``; ``None`` leaves
    a knob at its dataclass default.  Applied by
    :meth:`~repro.core.session.GvfsSession.build` and
    :class:`~repro.core.session.SecondLevelCache`.
    """
    for name, value in knobs.items():
        if name not in _PIPELINE_KNOBS:
            raise TypeError(f"unknown pipeline knob: {name}")
        if value is None:
            _pipeline_overrides.pop(name, None)
        else:
            _pipeline_overrides[name] = value


def pipeline_overrides() -> Dict[str, int]:
    """The currently installed pipelined-I/O knob overrides."""
    return dict(_pipeline_overrides)


def clear_pipeline_overrides() -> None:
    """Drop all overrides (test isolation)."""
    _pipeline_overrides.clear()
