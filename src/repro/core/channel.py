"""The on-demand file-based data channel (§3.2.2).

Executes the meta-data action pipeline for a whole file:

1. **compress** — gzip on the image server (server CPU held; the file
   is streamed off the server disk concurrently, so the pipeline runs
   at the slower of CPU and disk);
2. **remote copy** — SCP the *compressed* bytes to the compute server
   (TCP-window-limited over the WAN, out-of-band w.r.t. the NFS RPC
   channel, SSH-encrypted);
3. **uncompress** — gunzip on the compute server into the proxy's
   file-based disk cache (CPU overlapped with the cache install's disk
   writes);
4. **read locally** — subsequent NFS READs are served from the cache
   (the proxy's job; see :mod:`repro.core.proxy`).

The reverse pipeline (:meth:`FileChannel.upload`) writes back a dirty
cached file: compress locally, SCP to the server, uncompress there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.core.filecache import FileCacheEntry, ProxyFileCache
from repro.net.compress import GZIP, CompressionModel
from repro.net.ssh import ScpTransfer
from repro.net.topology import Host
from repro.nfs.protocol import FileHandle
from repro.sim import AllOf, Environment
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import Inode

__all__ = ["CascadedFileChannel", "FileChannel", "RemoteFileLocator"]


@dataclass(frozen=True)
class RemoteFileLocator:
    """How the channel reaches a remote file out-of-band.

    Middleware knows where the image server keeps its files and owns
    SCP credentials for the session's logical accounts; this object is
    that knowledge: a resolver from file handle to the server-side
    inode, plus the hosts at both ends.
    """

    resolve: Callable[[FileHandle], Inode]
    server_host: Host
    server_fs: LocalFileSystem
    client_host: Host


class FileChannel:
    """A file-based data channel between one proxy and one image server."""

    def __init__(self, env: Environment, locator: RemoteFileLocator,
                 scp: ScpTransfer, file_cache: ProxyFileCache,
                 compression: CompressionModel = GZIP,
                 upload_scp: Optional[ScpTransfer] = None):
        self.env = env
        self.locator = locator
        self.scp = scp
        self.upload_scp = upload_scp or scp
        self.file_cache = file_cache
        self.compression = compression
        # Statistics
        self.fetches = 0
        self.uploads = 0
        self.bytes_on_wire = 0
        self.bytes_logical = 0

    def reset_stats(self) -> None:
        """Zero the channel counters (mirrors ProxyBlockCache.reset_stats)."""
        self.fetches = 0
        self.uploads = 0
        self.bytes_on_wire = 0
        self.bytes_logical = 0

    # -- helpers ---------------------------------------------------------------
    def _compress_stage(self, host: Host, fs: Optional[LocalFileSystem],
                        inode: Inode) -> Generator:
        """Process: gzip ``inode`` on ``host``; returns compressed size.

        CPU and the streaming disk read overlap (pipeline), so the stage
        takes the max of the two.
        """
        size = inode.data.size
        jobs = [host.compute(self.compression.compress_time(size))]
        if fs is not None:
            jobs.append(self.env.process(
                fs.timed_scan_inode(inode, 0, size)))
        yield AllOf(self.env, jobs)
        return self.compression.compressed_size(inode.data.iter_chunks())

    def _uncompress_stage(self, host: Host, size: int) -> Generator:
        """Process: gunzip CPU for ``size`` output bytes on ``host``."""
        yield host.compute(self.compression.decompress_time(size))

    # -- the forward pipeline -----------------------------------------------------
    def fetch(self, fh: FileHandle) -> Generator:
        """Process: run compress -> remote copy -> uncompress for ``fh``.

        Returns the installed :class:`FileCacheEntry`.
        """
        remote = self.locator.resolve(fh)
        # 1. compress on the server (e.g. using GZIP)
        compressed = yield from self._compress_stage(
            self.locator.server_host, self.locator.server_fs, remote)
        # 2. remote copy the compressed file (e.g. using GSI-enabled SCP)
        yield from self.scp.transfer(compressed)
        # 3. uncompress into the file cache; gunzip CPU overlaps the
        #    cache's disk install.
        decompress = self.env.process(self._uncompress_stage(
            self.locator.client_host, remote.data.size))
        install = self.env.process(self.file_cache.install(fh, remote.data))
        results = yield AllOf(self.env, [decompress, install])
        entry: FileCacheEntry = results[1]
        self.fetches += 1
        self.bytes_on_wire += compressed
        self.bytes_logical += remote.data.size
        return entry

    # -- the reverse pipeline ------------------------------------------------------
    def upload(self, fh: FileHandle) -> Generator:
        """Process: write back a dirty cached file to the server.

        "The file cache can also support write-back, which includes
        similar steps of compressing, uploading and uncompressing."
        """
        entry = self.file_cache.entry(fh)
        if entry is None:
            raise KeyError(f"{fh} not in file cache")
        # 1. compress the local copy (client CPU + client disk read).
        compressed = yield from self._compress_stage(
            self.locator.client_host, self.file_cache.storage, entry.inode)
        # 2. SCP to the server.
        yield from self.upload_scp.transfer(compressed)
        # 3. uncompress on the server, replacing the remote content.
        remote = self.locator.resolve(fh)
        uncompress = self.env.process(self._uncompress_stage(
            self.locator.server_host, entry.inode.data.size))
        def _write_remote():
            remote.data = entry.inode.data.copy()
            remote.touch()
            yield self.env.process(self.locator.server_fs.stage_bulk_write(
                remote, remote.data.size,
                warm_chunks=range(remote.data.n_chunks())))
        write = self.env.process(_write_remote())
        yield AllOf(self.env, [uncompress, write])
        self.file_cache.mark_clean(fh)
        self.uploads += 1
        self.bytes_on_wire += compressed
        self.bytes_logical += entry.inode.data.size
        return compressed


class CascadedFileChannel(FileChannel):
    """A file channel whose "server" is a second-level proxy cache.

    For the WAN-S3 scenario (§4.3.1): compute servers fetch whole files
    from a LAN cache server; the LAN server's own channel pulls from the
    WAN image server on a miss.  ``locator.resolve`` must resolve into
    the parent's file cache — the constructor wires that automatically.
    """

    def __init__(self, env: Environment, parent: FileChannel,
                 lan_host: Host, client_host: Host,
                 scp: ScpTransfer, file_cache: ProxyFileCache,
                 compression: CompressionModel = GZIP):
        def _resolve(fh: FileHandle) -> Inode:
            entry = parent.file_cache.entry(fh)
            if entry is None:
                raise KeyError(f"{fh} missing from second-level cache")
            return entry.inode

        locator = RemoteFileLocator(
            resolve=_resolve, server_host=lan_host,
            server_fs=parent.file_cache.storage, client_host=client_host)
        super().__init__(env, locator, scp, file_cache, compression)
        self.parent = parent

    def fetch(self, fh: FileHandle) -> Generator:
        """Process: ensure the parent holds the file, then pull over LAN."""
        if fh not in self.parent.file_cache:
            yield from self.parent.fetch(fh)
        entry = yield from super().fetch(fh)
        return entry
