"""Adaptive cascade level sizing driven by deep stats snapshots.

BENCH_pr5 showed that stacking cache levels is not monotonically good:
a depth-4 cascade *regressed* against depth 3 because the extra level
added a store-and-forward hop without absorbing any misses.  This
module closes that loop: :func:`plan_cascade_sizing` reads a
``stats_snapshot(deep=True)`` from a session's client proxy, estimates
each level's working set from occupancy + churn counters, and proposes
per-level actions — keep, shrink, grow, or bypass — and
:func:`apply_cascade_sizing` enacts them on the live stack (bypass
flips the layer's pass-through flag; resizes swap in a fresh
right-sized cache via ``BlockCacheLayer.replace_cache``).

The planner is a pure function of the snapshot: it can run offline on
archived bench output, in tests on hand-built dicts, or periodically
inside an experiment between workload phases.  The split mirrors the
paper's middleware position (§3.2.2): the grid middleware accumulates
knowledge from observed behavior and reconfigures the proxies, rather
than the proxies hard-coding a geometry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.blockcache import ProxyBlockCache
from repro.core.config import ProxyCacheConfig
from repro.sim import Interrupt

__all__ = ["LevelSizing", "PeriodicSizer", "plan_cascade_sizing",
           "apply_cascade_sizing", "resized_config",
           "format_sizing_report"]


@dataclass(frozen=True)
class LevelSizing:
    """One level's sizing verdict (level 1 = the client proxy)."""

    level: int
    name: str
    action: str                 # "keep" | "bypass" | "shrink" | "grow"
    current_frames: int
    target_frames: int
    hit_ratio: float
    working_set: int            # distinct-block estimate, in frames
    reason: str

    @property
    def is_resize(self) -> bool:
        return self.action in ("shrink", "grow")


def _iter_cache_levels(snapshot: Dict) -> List[Tuple[int, str, Dict]]:
    """(level, name, block-cache counters) per caching level, client
    first.  Walks the nested ``"upstream"`` chain of a deep snapshot;
    cacheless stacks (the server-side forwarding proxy) are skipped but
    still terminate the walk."""
    levels = []
    node: Optional[Dict] = snapshot
    name = "client"
    depth = 0
    while node is not None:
        counters = node.get("block-cache")
        if counters is not None:
            depth += 1
            levels.append((depth, name, counters))
        up = node.get("upstream")
        node = up.get("layers") if up else None
        name = up.get("name", f"level{depth + 1}") if up else name
    return levels


def plan_cascade_sizing(snapshot: Dict, *,
                        min_traffic: int = 64,
                        min_hit_ratio: float = 0.02,
                        shrink_slack: float = 0.5,
                        headroom: float = 1.25,
                        max_frames: Optional[int] = None
                        ) -> List[LevelSizing]:
    """Propose per-level sizing actions from one deep snapshot.

    Per caching level the planner computes the demand it actually saw
    (hits + misses, ignoring demotion traffic) and a working-set
    estimate: resident blocks plus evictions, i.e. every distinct frame
    the level ever held.  The estimate overcounts re-admitted blocks,
    which is the safe direction — it never proposes a cache smaller
    than the true working set.  Verdicts:

    * fewer than ``min_traffic`` requests: **keep** (no signal yet);
    * hit ratio below ``min_hit_ratio`` on a non-client level:
      **bypass** — the level charges a store-and-forward hop on every
      miss and absorbs nothing (the BENCH_pr5 depth-4 failure mode).
      The client level is never bypassed: it is the only cache on the
      compute host, and its hit ratio is the paper's headline metric;
    * working set under ``shrink_slack`` of capacity: **shrink** to
      ``working_set * headroom`` frames;
    * evictions exceeding resident blocks (thrash): **grow** to
      ``working_set * headroom`` frames, capped at ``max_frames``;
    * otherwise **keep**.
    """
    plans: List[LevelSizing] = []
    for level, name, c in _iter_cache_levels(snapshot):
        hits = c.get("block_cache_hits", 0)
        misses = c.get("block_cache_misses", 0)
        seen = hits + misses
        capacity = c.get("capacity_frames", 0)
        evictions = c.get("cache_evictions", 0)
        resident = c.get("cached_blocks", 0)
        working_set = resident + evictions
        ratio = hits / seen if seen else 0.0
        target = capacity
        if c.get("bypassed"):
            action, reason = "keep", "already bypassed"
        elif seen < min_traffic:
            action = "keep"
            reason = f"only {seen} requests (< {min_traffic}); no signal"
        elif level > 1 and ratio < min_hit_ratio:
            action = "bypass"
            reason = (f"hit ratio {ratio:.1%} < {min_hit_ratio:.1%}: "
                      "charges a hop, absorbs nothing")
        elif working_set and working_set < capacity * shrink_slack:
            action = "shrink"
            target = int(working_set * headroom)
            reason = (f"working set ~{working_set} of {capacity} frames; "
                      f"release the slack")
        elif evictions > max(resident, 1):
            action = "grow"
            target = int(working_set * headroom)
            if max_frames is not None:
                target = min(target, max_frames)
            if target <= capacity:
                action, target = "keep", capacity
                reason = "thrashing but already at max_frames"
            else:
                reason = (f"{evictions} evictions over {resident} resident "
                          "frames: thrashing")
        else:
            action, reason = "keep", "paying its way"
        plans.append(LevelSizing(level=level, name=name, action=action,
                                 current_frames=capacity,
                                 target_frames=target, hit_ratio=ratio,
                                 working_set=working_set, reason=reason))
    return plans


def resized_config(config: ProxyCacheConfig,
                   target_frames: int) -> ProxyCacheConfig:
    """``config`` rebuilt for about ``target_frames`` frames, keeping
    the bank count, associativity and block size (so demotion and
    shared-frame invariants survive a resize).  Frames round up to a
    whole number of sets across every bank — the smallest geometry the
    config validator accepts."""
    granule = config.n_banks * config.associativity
    frames = max(((target_frames + granule - 1) // granule) * granule,
                 granule)
    return dataclasses.replace(config,
                               capacity_bytes=frames * config.block_size)


def apply_cascade_sizing(stack, plans: List[LevelSizing]
                         ) -> List[Tuple[LevelSizing, bool]]:
    """Enact ``plans`` on the live cascade headed by ``stack`` (a
    client proxy / ProxyStack).  Returns ``(plan, applied)`` pairs;
    a resize is skipped (``applied=False``) when the level still holds
    dirty frames — flush first — or the level no longer exists.

    Bypassing only flips the layer flag: the cache keeps its contents,
    so flipping back (``layer.bypassed = False``) restores it warm.
    Resizing swaps in a fresh empty cache of the new geometry; the old
    cache's blocks are retracted from any peer directory by
    ``replace_cache``, and the level refills from demand.
    """
    stacks = stack.cascade_stacks()
    by_level: Dict[int, object] = {}
    depth = 0
    for s in stacks:
        layer = s.layer("block-cache")
        if layer is not None:
            depth += 1
            by_level[depth] = layer
    results: List[Tuple[LevelSizing, bool]] = []
    for plan in plans:
        layer = by_level.get(plan.level)
        if layer is None or plan.action == "keep":
            results.append((plan, False))
            continue
        if plan.action == "bypass":
            layer.bypassed = True
            results.append((plan, True))
            continue
        old = layer.block_cache
        if old.dirty_frames:
            results.append((plan, False))
            continue
        new_config = resized_config(old.config, plan.target_frames)
        if new_config.total_frames == old.config.total_frames:
            results.append((plan, False))
            continue
        new_cache = ProxyBlockCache(old.env, old.storage, new_config,
                                    name=f"{old.name}+r{plan.level}",
                                    read_only=old.read_only)
        layer.replace_cache(new_cache)
        results.append((plan, True))
    return results


class PeriodicSizer:
    """Run the sizing planner on an engine timer, in-run.

    PR 7's planner ran only between workload phases; this wires it onto
    the simulation clock — the middleware knowledge loop of §3.2.2 as a
    periodic process.  ``source`` is a stack, an iterable of stacks, or
    a zero-arg callable returning the stacks to (re)plan — a callable
    lets a session manager hand over "whatever sessions are live right
    now" each tick.

    The timer is a plain env process: bound it with ``rounds`` or call
    :meth:`stop` (e.g. at the end of a workload) so ``env.run()`` can
    drain.  Each tick snapshots, plans, and (unless ``apply=False``)
    enacts the plans live; per-tick observations accumulate in
    :attr:`history` for reports.
    """

    def __init__(self, env, source, interval: float,
                 rounds: Optional[int] = None, apply: bool = True,
                 **planner_kwargs):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.env = env
        self.source = source
        self.interval = interval
        self.rounds = rounds
        self.apply = apply
        self.planner_kwargs = planner_kwargs
        self.history: List[Dict] = []
        self._process = None

    def _stacks(self) -> List:
        source = self.source
        if callable(source):
            source = source()
        if hasattr(source, "stats_snapshot"):
            return [source]
        return list(source)

    def start(self):
        """Start the timer process (idempotent); returns the process."""
        if self._process is None or not self._process.is_alive:
            self._process = self.env.process(self._run(),
                                             name="periodic-sizer")
        return self._process

    def stop(self) -> None:
        """Cancel the timer so the event queue can drain."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("sizer stopped")
        self._process = None

    @property
    def ticks(self) -> int:
        return len(self.history)

    def _run(self):
        try:
            fired = 0
            while self.rounds is None or fired < self.rounds:
                yield self.env.timeout(self.interval)
                fired += 1
                self._tick()
        except Interrupt:
            pass

    def _tick(self) -> None:
        entry = {"at": self.env.now, "stacks": 0, "planned": 0,
                 "applied": 0, "actions": {}}
        for stack in self._stacks():
            snapshot = stack.stats_snapshot(deep=True)
            plans = plan_cascade_sizing(snapshot, **self.planner_kwargs)
            entry["stacks"] += 1
            for plan in plans:
                entry["actions"][plan.action] = (
                    entry["actions"].get(plan.action, 0) + 1)
            entry["planned"] += sum(1 for p in plans if p.action != "keep")
            if self.apply:
                results = apply_cascade_sizing(stack, plans)
                entry["applied"] += sum(1 for _, ok in results if ok)
        self.history.append(entry)


def format_sizing_report(plans: List[LevelSizing]) -> str:
    """Human-readable sizing table (for CLI output and docs)."""
    lines = ["adaptive cascade sizing"]
    for p in plans:
        lines.append(
            f"  L{p.level} {p.name:<18} {p.action:<6} "
            f"{p.current_frames:>6} -> {p.target_frames:>6} frames  "
            f"hit {p.hit_ratio:6.1%}  ws ~{p.working_set}  ({p.reason})")
    return "\n".join(lines)
