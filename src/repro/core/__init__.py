"""GVFS — the paper's contribution: user-level proxy extensions for VMs.

This package implements the three extensions of §3 on top of the NFS
substrate:

* :mod:`~repro.core.blockcache` — the proxy-managed, disk-based,
  set-associative block cache (file banks holding frames, hash-indexed
  by NFS file handle and offset, write-back capable, shareable
  read-only, cascadable into multi-level hierarchies);
* :mod:`~repro.core.metadata` + :mod:`~repro.core.filecache` +
  :mod:`~repro.core.channel` — application-tailored meta-data handling:
  zero-block maps that satisfy reads of zero-filled memory-state blocks
  locally, and action lists (compress → remote copy → uncompress →
  read locally) that establish an on-demand file-based data channel and
  file cache (heterogeneous caching);
* :mod:`~repro.core.layers` + :mod:`~repro.core.proxy` — the proxy
  itself: a :class:`~repro.core.layers.ProxyStack` of composable
  :class:`~repro.core.layers.ProxyLayer` extensions (attr patching,
  zero-map meta-data, file channel, block cache, readahead, degraded
  mode, upstream RPC).  It receives NFS RPC calls like a server, issues
  them like a client, can be chained, remaps identities, and obeys
  middleware-driven consistency signals
  (:mod:`~repro.core.consistency`).

:mod:`~repro.core.session` assembles per-scenario proxy chains
(Local / LAN / WAN / WAN+C of §4.2.1).
"""

from repro.core.config import CachePolicy, ProxyCacheConfig, ProxyConfig
from repro.core.blockcache import ProxyBlockCache
from repro.core.filecache import ProxyFileCache
from repro.core.metadata import (
    METADATA_SUFFIX,
    FileMetadata,
    MetadataAction,
    generate_memory_state_metadata,
    generate_metadata,
    metadata_path_for,
)
from repro.core.channel import FileChannel
from repro.core.layers import ProxyLayer, ProxyStack, ProxyStats, standard_layers
from repro.core.proxy import GvfsProxy
from repro.core.consistency import ConsistencySignal, MiddlewareConsistency
from repro.core.profiler import (
    AccessProfile,
    AccessProfiler,
    ApplicationKnowledgeBase,
    Prefetcher,
)
from repro.core.session import GvfsSession, Scenario

__all__ = [
    "AccessProfile",
    "AccessProfiler",
    "ApplicationKnowledgeBase",
    "CachePolicy",
    "ConsistencySignal",
    "FileChannel",
    "FileMetadata",
    "GvfsProxy",
    "GvfsSession",
    "METADATA_SUFFIX",
    "MetadataAction",
    "MiddlewareConsistency",
    "ProxyBlockCache",
    "ProxyCacheConfig",
    "ProxyConfig",
    "ProxyLayer",
    "ProxyStack",
    "ProxyStats",
    "Prefetcher",
    "ProxyFileCache",
    "standard_layers",
    "Scenario",
    "generate_memory_state_metadata",
    "generate_metadata",
    "metadata_path_for",
]
