"""Proxy file-based disk cache (§3.2.2).

Holds whole files fetched through the file-based data channel on the
proxy host's local disk; once a file is cached, "all the following
requests to the file will also be satisfied locally".  Complements the
block cache to form the paper's *heterogeneous disk caching* scheme.

Entries are keyed by the remote file handle.  Contents are real bytes
(kept sparse — zero regions of a memory image never materialize), and
reads/writes charge the proxy host's disk/page cache.  Write-back is
supported: a locally modified cached file can be uploaded (compress →
copy → uncompress on the server) by the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import Inode, SparseFile

__all__ = ["FileCacheEntry", "ProxyFileCache"]


@dataclass
class FileCacheEntry:
    """One whole-file cache entry."""

    fh: FileHandle
    inode: Inode         # local copy on the proxy host
    size: int
    dirty: bool = False
    last_use: int = 0    # LRU tick (monotonic, unique per touch)


class ProxyFileCache:
    """Whole-file cache on the proxy host's local disk.

    ``capacity_bytes`` bounds the cache by *payload bytes*, not entry
    count — a 2 GB memory-state file and a 4 KB config file are wildly
    different costs on the proxy disk.  When an install or local write
    pushes the total over budget, clean entries are evicted in LRU
    order until it fits; dirty entries are never evicted (their only
    copy of the modifications lives here), so a write burst can overrun
    the budget until the channel uploads — counted in
    ``budget_overruns``.  ``None`` (the default) keeps the historical
    unbounded behavior.
    """

    def __init__(self, env: Environment, storage: LocalFileSystem,
                 name: str = "filecache",
                 capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"non-positive capacity: {capacity_bytes}")
        self.env = env
        self.storage = storage
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[FileHandle, FileCacheEntry] = {}
        self._tick = 0
        if not storage.fs.exists(self._root()):
            storage.fs.mkdir(self._root(), parents=True)
        # Statistics
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.evictions = 0
        self.budget_overruns = 0

    def _touch(self, entry: FileCacheEntry) -> None:
        self._tick += 1
        entry.last_use = self._tick

    def _enforce_budget(self) -> None:
        """Evict clean LRU entries until the payload fits the budget."""
        if self.capacity_bytes is None:
            return
        while self.bytes_cached > self.capacity_bytes:
            victims = [e for e in self._entries.values() if not e.dirty]
            if not victims:
                self.budget_overruns += 1
                return
            victim = min(victims, key=lambda e: e.last_use)
            self.evict(victim.fh)
            self.evictions += 1

    def _root(self) -> str:
        return f"/{self.name}"

    def _local_path(self, fh: FileHandle) -> str:
        return f"{self._root()}/{fh.fsid}.{fh.fileid}"

    # -- queries ---------------------------------------------------------------
    def __contains__(self, fh: FileHandle) -> bool:
        return fh in self._entries

    def entry(self, fh: FileHandle) -> Optional[FileCacheEntry]:
        return self._entries.get(fh)

    @property
    def cached_files(self) -> int:
        return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        """Total payload bytes currently charged against the budget."""
        return sum(e.size for e in self._entries.values())

    # -- installation ------------------------------------------------------------
    def install(self, fh: FileHandle, content: SparseFile) -> Generator:
        """Process: place a fetched file into the cache.

        The content is copied logically (chunk sharing — cheap) and the
        *non-zero* payload is charged as a streaming disk write, which
        also warms the host page cache, so an immediately following
        whole-file read (the VM resume) runs at memory speed.
        """
        path = self._local_path(fh)
        if self.storage.fs.exists(path):
            self.storage.fs.unlink(path)
        inode = self.storage.fs.create(path)
        inode.data = content.copy()
        entry = FileCacheEntry(fh=fh, inode=inode, size=content.size)
        self._entries[fh] = entry
        self._touch(entry)
        # The uncompress step wrote the *whole* file (zeros included) on a
        # real host: charge the full size to the write-behind pool and
        # leave the fresh pages warm in the host page cache.
        yield from self.storage.stage_bulk_write(
            inode, content.size, warm_chunks=range(inode.data.n_chunks()))
        self.installs += 1
        self._enforce_budget()
        return entry

    # -- data access ------------------------------------------------------------
    def read(self, fh: FileHandle, offset: int, count: int) -> Generator:
        """Process: read from the cached copy (disk/page-cache timed)."""
        entry = self._entries.get(fh)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(entry)
        data = yield from self.storage.timed_read_inode(
            entry.inode, offset, count)
        return data

    def write(self, fh: FileHandle, offset: int, data: bytes) -> Generator:
        """Process: update the cached copy locally and mark it dirty."""
        entry = self._entries.get(fh)
        if entry is None:
            raise KeyError(f"{fh} not in file cache")
        yield from self.storage.timed_write_inode(
            entry.inode, data, offset)
        entry.size = entry.inode.data.size
        entry.dirty = True
        self._touch(entry)
        self._enforce_budget()

    def mark_clean(self, fh: FileHandle) -> None:
        entry = self._entries.get(fh)
        if entry is not None:
            entry.dirty = False

    def dirty_entries(self):
        """Entries with local modifications awaiting upload."""
        return [e for e in self._entries.values() if e.dirty]

    def evict(self, fh: FileHandle) -> None:
        """Drop a cached file (must be clean)."""
        entry = self._entries.pop(fh, None)
        if entry is None:
            return
        if entry.dirty:
            self._entries[fh] = entry
            raise RuntimeError(f"evicting dirty file-cache entry {fh}")
        path = self._local_path(fh)
        if self.storage.fs.exists(path):
            self.storage.fs.unlink(path)

    def clear(self) -> None:
        """Cold-cache setup; refuses if dirty data would be lost."""
        if self.dirty_entries():
            raise RuntimeError("clear() with dirty file-cache entries")
        for fh in list(self._entries):
            self.evict(fh)
