"""Proxy file-based disk cache (§3.2.2).

Holds whole files fetched through the file-based data channel on the
proxy host's local disk; once a file is cached, "all the following
requests to the file will also be satisfied locally".  Complements the
block cache to form the paper's *heterogeneous disk caching* scheme.

Entries are keyed by the remote file handle.  Contents are real bytes
(kept sparse — zero regions of a memory image never materialize), and
reads/writes charge the proxy host's disk/page cache.  Write-back is
supported: a locally modified cached file can be uploaded (compress →
copy → uncompress on the server) by the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import Inode, SparseFile

__all__ = ["FileCacheEntry", "ProxyFileCache"]


@dataclass
class FileCacheEntry:
    """One whole-file cache entry."""

    fh: FileHandle
    inode: Inode         # local copy on the proxy host
    size: int
    dirty: bool = False


class ProxyFileCache:
    """Whole-file cache on the proxy host's local disk."""

    def __init__(self, env: Environment, storage: LocalFileSystem,
                 name: str = "filecache"):
        self.env = env
        self.storage = storage
        self.name = name
        self._entries: Dict[FileHandle, FileCacheEntry] = {}
        if not storage.fs.exists(self._root()):
            storage.fs.mkdir(self._root(), parents=True)
        # Statistics
        self.hits = 0
        self.misses = 0
        self.installs = 0

    def _root(self) -> str:
        return f"/{self.name}"

    def _local_path(self, fh: FileHandle) -> str:
        return f"{self._root()}/{fh.fsid}.{fh.fileid}"

    # -- queries ---------------------------------------------------------------
    def __contains__(self, fh: FileHandle) -> bool:
        return fh in self._entries

    def entry(self, fh: FileHandle) -> Optional[FileCacheEntry]:
        return self._entries.get(fh)

    @property
    def cached_files(self) -> int:
        return len(self._entries)

    # -- installation ------------------------------------------------------------
    def install(self, fh: FileHandle, content: SparseFile) -> Generator:
        """Process: place a fetched file into the cache.

        The content is copied logically (chunk sharing — cheap) and the
        *non-zero* payload is charged as a streaming disk write, which
        also warms the host page cache, so an immediately following
        whole-file read (the VM resume) runs at memory speed.
        """
        path = self._local_path(fh)
        if self.storage.fs.exists(path):
            self.storage.fs.unlink(path)
        inode = self.storage.fs.create(path)
        inode.data = content.copy()
        entry = FileCacheEntry(fh=fh, inode=inode, size=content.size)
        self._entries[fh] = entry
        # The uncompress step wrote the *whole* file (zeros included) on a
        # real host: charge the full size to the write-behind pool and
        # leave the fresh pages warm in the host page cache.
        yield from self.storage.stage_bulk_write(
            inode, content.size, warm_chunks=range(inode.data.n_chunks()))
        self.installs += 1
        return entry

    # -- data access ------------------------------------------------------------
    def read(self, fh: FileHandle, offset: int, count: int) -> Generator:
        """Process: read from the cached copy (disk/page-cache timed)."""
        entry = self._entries.get(fh)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        data = yield from self.storage.timed_read_inode(
            entry.inode, offset, count)
        return data

    def write(self, fh: FileHandle, offset: int, data: bytes) -> Generator:
        """Process: update the cached copy locally and mark it dirty."""
        entry = self._entries.get(fh)
        if entry is None:
            raise KeyError(f"{fh} not in file cache")
        yield from self.storage.timed_write_inode(
            entry.inode, data, offset)
        entry.size = entry.inode.data.size
        entry.dirty = True

    def mark_clean(self, fh: FileHandle) -> None:
        entry = self._entries.get(fh)
        if entry is not None:
            entry.dirty = False

    def dirty_entries(self):
        """Entries with local modifications awaiting upload."""
        return [e for e in self._entries.values() if e.dirty]

    def evict(self, fh: FileHandle) -> None:
        """Drop a cached file (must be clean)."""
        entry = self._entries.pop(fh, None)
        if entry is None:
            return
        if entry.dirty:
            self._entries[fh] = entry
            raise RuntimeError(f"evicting dirty file-cache entry {fh}")
        path = self._local_path(fh)
        if self.storage.fs.exists(path):
            self.storage.fs.unlink(path)

    def clear(self) -> None:
        """Cold-cache setup; refuses if dirty data would be lost."""
        if self.dirty_entries():
            raise RuntimeError("clear() with dirty file-cache entries")
        for fh in list(self._entries):
            self.evict(fh)
