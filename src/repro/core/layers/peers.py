"""Peer-cache layer: cooperative LAN caching across same-site proxies.

The paper's proxies share read-only golden-image state *vertically*
(cascade levels); AliEnFS-style cooperative caching shares it
*horizontally*: before a block miss escalates to the (WAN) upstream,
ask the site's peer-cache directory whether another proxy on the same
site already holds the block, and borrow it over the cheap rack/site
links.  The directory (see ``PeerCacheDirectory`` in
:mod:`repro.net.topology`) is kept current by push updates from each
member's block cache — only *clean* blocks are ever published, dirty
frames stay session-private until written back — so a lookup is one
small query round trip, and a hit moves the block peer-to-peer without
touching the upstream at all.

Placement: the layer sits *below* the fault guard and directly above
the upstream RPC terminal.  Both demand misses (the fault guard's
``guarded_fetch`` re-enters the stack below the cache) and readahead
window fetches flow through it, so prefetches borrow from peers too —
and peer hits keep serving while the WAN upstream is down, shrinking
degraded mode's blast radius.  With no directory hit the layer is a
pure fall-through and adds zero simulation events.

The member handle is duck-typed (``borrow(key)`` process returning
``(data | None, owner_found)``): layers never import the network
package, mirroring how the upstream RPC client is injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.layers.base import ProxyLayer
from repro.nfs.protocol import NfsProc, NfsReply, NfsStatus

__all__ = ["PeerCacheLayer"]


@dataclass
class PeerCacheStats:
    peer_hits: int = 0         # misses answered by a same-site peer
    peer_misses: int = 0       # lookups with no owner; went upstream
    peer_stale: int = 0        # owner listed but block gone on arrival
    peer_bytes: int = 0        # payload bytes served peer-to-peer
    peer_suppressed: int = 0   # borrows skipped during checksum repair
    procs_blackholed: int = 0  # borrows parked by a blackhole fault
    procs_delayed: int = 0     # borrows slowed by a delay fault
    procs_duplicated: int = 0  # (unused; duplication targets RPC layers)


class PeerCacheLayer(ProxyLayer):
    """Answer block misses from same-site peer proxies before the WAN."""

    ROLE = "peer-cache"
    Stats = PeerCacheStats
    FAULT_PROCS = True

    def __init__(self, member):
        super().__init__()
        #: This proxy's membership handle in the site's peer-cache
        #: directory (opaque; created by ``PeerCacheDirectory.join``).
        self.member = member
        #: Keys the checksum layer is re-fetching after a corruption
        #: catch: a peer's copy is the prime suspect, so borrowing is
        #: suppressed and the refetch goes to the upstream of record.
        self.suppressed = set()

    def handle(self, request) -> Generator:
        if request.proc is not NfsProc.READ:
            return (yield from self.next.handle(request))
        if self.proc_faults is not None:
            # Delay / blackhole the peer-borrow path (a READ reaching
            # this layer is exactly a borrow candidate).
            yield from self.apply_proc_faults(request)
        # Only whole-block fetches are candidates — exactly what the
        # block-cache and readahead layers above emit on a miss.  A
        # peer's cache stores whole frames, so nothing else can hit.
        bs = self.stack.block_size()
        fh, offset, count = request.fh, request.offset, request.count
        idx, within = divmod(offset, bs)
        if within or count != bs:
            return (yield from self.next.handle(request))
        if (fh, idx) in self.suppressed:
            self.stats.peer_suppressed += 1
            return (yield from self.next.handle(request))
        data, owner_found = yield from self.member.borrow((fh, idx))
        if data is None:
            if owner_found:
                self.stats.peer_stale += 1
            else:
                self.stats.peer_misses += 1
            return (yield from self.next.handle(request))
        self.stats.peer_hits += 1
        self.stats.peer_bytes += len(data)
        # Like a local cache hit: a short block is the file's last
        # (lengths are frame-exact in every cache), and no post-op
        # attributes ride along.
        return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh, data=data,
                        count=len(data), eof=len(data) < bs)
