"""End-to-end block integrity: crc32 per block, verified at the client.

The cache hierarchy is deep — client frames, cascade levels, peer
copies, demoted blocks — and every copy is a place silent corruption
can hide behind a perfectly valid cache tag.  Following the end-to-end
argument (and AliEnFS's validate-every-path design), integrity is not
delegated to any cache: a :class:`ChecksumLayer` in **record** mode
sits in the origin-adjacent forwarding stack and checksums every block
as it leaves or reaches the server of record; a second instance in
**verify** mode sits at the top of the client stack and re-checks
every full-block READ reply that is about to cross back to the client
— wherever the bytes came from (local frame, cascade level, peer
borrow, demoted copy, or origin itself).

Both instances share one :class:`ChecksumRegistry` ((fh, block) ->
(crc32, length)), standing in for checksums that a real deployment
would persist beside the image or carry in the protocol.

On a mismatch the layer *repairs*: the block is discarded from every
cascade level below (sideways, via ``discard_block``), peer borrowing
of that key is suppressed so the refetch cannot be served the same bad
copy from a neighbour, and the READ is re-issued to the upstream of
record — at most :attr:`~ChecksumLayer.MAX_REPAIRS` times before the
client gets a clean I/O error instead of garbled data.

Cost discipline: recording and verifying are synchronous crc32 calls —
the clean path through this layer adds **zero** simulation events, so
happy-path timings are bit-identical with and without it.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.core.layers.base import ProxyLayer
from repro.nfs.protocol import FileHandle, NfsProc, NfsReply, NfsStatus

__all__ = ["ChecksumLayer", "ChecksumRegistry"]


class ChecksumRegistry:
    """Shared (fh, block) -> (crc32, length) map of blocks of record."""

    #: Digest sidecar filename, persisted beside each image directory.
    PERSIST_NAME = ".gvfs-digests.json"

    def __init__(self):
        self._crcs: Dict[Tuple, Tuple[int, int]] = {}
        self.recorded = 0
        self.invalidated = 0

    def record(self, key, data: bytes) -> None:
        self._crcs[key] = (zlib.crc32(data), len(data))
        self.recorded += 1

    def get(self, key) -> Optional[Tuple[int, int]]:
        return self._crcs.get(key)

    def matches(self, key, data: bytes) -> Optional[bool]:
        """True/False against the recorded checksum, None if unrecorded."""
        rec = self._crcs.get(key)
        if rec is None:
            return None
        crc, length = rec
        return len(data) == length and zlib.crc32(data) == crc

    def invalidate(self, key) -> None:
        if self._crcs.pop(key, None) is not None:
            self.invalidated += 1

    def __len__(self) -> int:
        return len(self._crcs)

    # ------------------------------------------------------------- persistence
    def save(self, fs, path: str, fileids=None) -> int:
        """Persist digests as a JSON sidecar file inside ``fs``.

        Rows are ``[fsid, fileid, block, crc32, length]``; only keys of
        the ``(FileHandle, block)`` shape are persistable (chaosbench
        uses opaque keys for negative controls — those stay in-memory).
        ``fileids`` restricts the slice to one image's files so sidecars
        beside different images don't carry each other's digests.
        """
        rows = []
        for key, (crc, length) in self._crcs.items():
            fh, idx = key
            if not isinstance(fh, FileHandle):
                continue
            if fileids is not None and fh.fileid not in fileids:
                continue
            rows.append([fh.fsid, fh.fileid, idx, crc, length])
        rows.sort()
        payload = json.dumps(rows, separators=(",", ":")).encode()
        if fs.exists(path):
            inode = fs.lookup(path)
            inode.data.truncate(0)
        else:
            inode = fs.create(path)
        inode.data.write(0, payload)
        inode.touch()
        return len(rows)

    def load(self, fs, path: str) -> int:
        """Merge a persisted sidecar back into this registry."""
        inode = fs.lookup(path)
        raw = inode.data.read(0, inode.data.size)
        rows = json.loads(raw.decode())
        for fsid, fileid, idx, crc, length in rows:
            self._crcs[(FileHandle(fsid, fileid), idx)] = (crc, length)
        return len(rows)


@dataclass
class ChecksumStats:
    crcs_recorded: int = 0       # blocks checksummed at the origin boundary
    crcs_verified: int = 0       # client reads checked against the registry
    corruptions_caught: int = 0  # mismatches detected before reaching a reader
    corruptions_repaired: int = 0  # caught reads healed by a clean refetch
    verify_skipped: int = 0      # reads not checkable (partial / unrecorded)
    verify_unrepaired: int = 0   # repairs exhausted; clean IO error returned


class ChecksumLayer(ProxyLayer):
    """Record or verify per-block crc32s at a stack boundary."""

    ROLE = "checksum"
    Stats = ChecksumStats
    #: Refetch attempts before a caught corruption becomes an IO error.
    MAX_REPAIRS = 2

    def __init__(self, registry: ChecksumRegistry,
                 record: bool = False, verify: bool = False):
        super().__init__()
        self.registry = registry
        self.record = record
        self.verify = verify

    # ------------------------------------------------------------------ handle
    def handle(self, request) -> Generator:
        proc = request.proc
        if proc is NfsProc.WRITE:
            reply = yield from self.next.handle(request)
            if self.verify:
                # The write just diverged local state from the block of
                # record; coverage resumes when the write-back reaches
                # the record instance at the origin.
                self._invalidate_span(request)
            elif self.record and reply.ok:
                self._record_write(request)
            return reply
        if proc is not NfsProc.READ:
            return (yield from self.next.handle(request))
        reply = yield from self.next.handle(request)
        if not reply.ok or reply.data is None:
            return reply
        if self.record:
            self._record_read(request, reply)
            return reply
        if self.verify:
            return (yield from self._verify_read(request, reply))
        return reply

    # ---------------------------------------------------------------- recording
    def _block_span(self, request):
        bs = self.stack.block_size()
        idx, within = divmod(request.offset, bs)
        return bs, idx, within

    def _record_read(self, request, reply) -> None:
        # Full-block fetches only — exactly what cache misses emit.  A
        # short reply is the file's tail block (lengths are frame-exact
        # in every cache), so its actual length is part of the record.
        bs, idx, within = self._block_span(request)
        if within or request.count != bs:
            return
        self.registry.record((request.fh, idx), reply.data)
        self.stats.crcs_recorded += 1

    def _record_write(self, request) -> None:
        # Write-backs arrive as merged runs of whole blocks; re-record
        # each full chunk.  A trailing partial chunk may be either the
        # file's tail or a partial overwrite — indistinguishable here,
        # so its record is dropped rather than guessed.
        bs, idx, within = self._block_span(request)
        data = request.data
        if within:
            for i in range(idx, (request.offset + len(data) - 1) // bs + 1):
                self.registry.invalidate((request.fh, i))
            return
        for start in range(0, len(data), bs):
            chunk = data[start:start + bs]
            key = (request.fh, idx + start // bs)
            if len(chunk) == bs:
                self.registry.record(key, chunk)
                self.stats.crcs_recorded += 1
            else:
                self.registry.invalidate(key)

    def _invalidate_span(self, request) -> None:
        bs = self.stack.block_size()
        first = request.offset // bs
        last = (request.offset + max(len(request.data or b"") - 1, 0)) // bs
        for i in range(first, last + 1):
            self.registry.invalidate((request.fh, i))

    # -------------------------------------------------------------- verification
    def _verify_read(self, request, reply) -> Generator:
        bs, idx, within = self._block_span(request)
        if within or request.count != bs:
            self.stats.verify_skipped += 1
            return reply
        key = (request.fh, idx)
        ok = self.registry.matches(key, reply.data)
        if ok is None:
            self.stats.verify_skipped += 1
            return reply
        self.stats.crcs_verified += 1
        if ok:
            return reply
        self.stats.corruptions_caught += 1
        for _ in range(self.MAX_REPAIRS):
            reply = yield from self._refetch(request, key)
            if not reply.ok or reply.data is None:
                break
            self.stats.crcs_verified += 1
            if self.registry.matches(key, reply.data):
                self.stats.corruptions_repaired += 1
                return reply
        self.stats.verify_unrepaired += 1
        return NfsReply(NfsProc.READ, NfsStatus.IO, fh=request.fh)

    def _refetch(self, request, key) -> Generator:
        """Process: discard every cascade copy of ``key`` and re-read.

        Peer borrowing of the key is suppressed for the duration so the
        refetch is answered by the upstream of record, not by whichever
        neighbour may hold the same bad bytes.  (A corrupt copy still
        advertised by a peer is that peer's to catch: every client runs
        its own verify instance.)
        """
        peers = []
        for stack in self.stack.cascade_stacks():
            cache_layer = stack.layer("block-cache")
            if cache_layer is not None:
                cache_layer.discard_block(key)
            peer_layer = stack.layer("peer-cache")
            if peer_layer is not None and key not in peer_layer.suppressed:
                peer_layer.suppressed.add(key)
                peers.append(peer_layer)
        try:
            reply = yield from self.next.handle(request)
        finally:
            for peer_layer in peers:
                peer_layer.suppressed.discard(key)
        return reply
