"""Fault-guard layer: degraded-mode proxying in one place.

Centralises every upstream-down / loss-exposure decision that used to
be scattered across the monolithic proxy's read, write, readahead and
flush paths:

* **degraded reads** — a cache hit while the upstream circuit breaker
  is open is counted as a read served through the outage;
* **guarded fetches** — a demand miss whose upstream RPC times out is
  converted to a clean I/O error (the VM must not hang);
* **the dirty high-water mark** — a write-back write that would dirty
  a *new* frame past the limit first drains a dirty run synchronously,
  or is rejected outright when the upstream is down (the cache must
  not grow the at-risk set during an outage);
* **crash accounting** — the stack's crash counter lives here.

On the request path this layer is a pure pass-through (zero events):
the block-cache layer calls sideways into the guard API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from repro.core.layers.base import ProxyLayer
from repro.nfs.protocol import FileHandle, NfsProc, NfsReply, NfsStatus
from repro.nfs.rpc import RpcTimeout

__all__ = ["DegradedModeLayer"]


@dataclass
class DegradedModeStats:
    degraded_reads: int = 0         # cache hits served while upstream down
    degraded_read_errors: int = 0   # misses that failed while upstream down
    degraded_write_rejects: int = 0 # writes bounced at the dirty high water
    high_water_writebacks: int = 0  # synchronous drains forced by the limit
    proxy_crashes: int = 0


class DegradedModeLayer(ProxyLayer):
    """Degraded-mode guards for every path that can meet an outage."""

    ROLE = "fault-guard"
    Stats = DegradedModeStats

    # ------------------------------------------------------------- guard API
    def upstream_down(self) -> bool:
        """True when the upstream is known-unreachable (breaker open).

        Pure flag check: the proxy only *knows* the upstream is down
        when its RPC client carries a circuit breaker that has tripped.
        """
        breaker = getattr(self.stack.upstream, "breaker", None)
        return breaker is not None and breaker.currently_open(self.env.now)

    def note_cached_read(self) -> None:
        """A cache hit was served; count it if the upstream is down."""
        if self.upstream_down():
            self.stats.degraded_reads += 1

    def guarded_fetch(self, request) -> Generator:
        """Process: forward a demand fetch, converting an exhausted
        retransmission ladder into a clean I/O error reply."""
        try:
            reply = yield from self.handle(request)
        except RpcTimeout:
            self.stats.degraded_read_errors += 1
            reply = NfsReply(request.proc, NfsStatus.IO, fh=request.fh)
        return reply

    def reject_write(self, fh: FileHandle) -> NfsReply:
        self.stats.degraded_write_rejects += 1
        return NfsReply(NfsProc.WRITE, NfsStatus.IO, fh=fh)

    def ensure_write_capacity(self,
                              key: Tuple[FileHandle, int]) -> Generator:
        """Process: enforce the dirty high-water mark before a write-back
        absorb dirties a *new* frame.

        Returns a rejection reply the write must return, or None when
        the write may proceed.
        """
        block = self.stack.layer("block-cache")
        hw = self.config.dirty_high_water_blocks
        if not (hw > 0 and block is not None
                and block.block_cache.dirty_frames >= hw
                and not block.block_cache.is_dirty(key)):
            return None
        if self.upstream_down():
            return self.reject_write(key[0])
        try:
            runs = block.block_cache.dirty_runs(
                self.config.write_coalesce_bytes)
            if runs:
                yield from block.write_back_run(runs[0])
                self.stats.high_water_writebacks += 1
        except RpcTimeout:
            return self.reject_write(key[0])
        return None

    # -------------------------------------------------------------- lifecycle
    def crash(self) -> None:
        self.stats.proxy_crashes += 1
