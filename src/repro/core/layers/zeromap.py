"""Meta-data layer: locate ``.gvfs`` companions, answer zero reads.

Implements the paper's middleware-generated meta-data handling
(§3.2.2): on the first READ of a file the layer probes the server for
the file's meta-data companion (located via the name learned by the
attr layer), parses it, and caches the result — including negative
results — per handle.  Reads fully covered by the zero map are
reconstructed locally with nothing on the wire; everything else passes
down the stack, with the parsed meta-data left in ``self.cache`` for
the file-channel and block-cache layers to consult synchronously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.core.layers.base import ProxyLayer
from repro.core.metadata import FileMetadata, METADATA_SUFFIX, metadata_name_for
from repro.nfs.protocol import FileHandle, NfsProc, NfsReply, NfsRequest, NfsStatus

__all__ = ["ZeroMapLayer"]


@dataclass
class ZeroMapStats:
    zero_filtered_reads: int = 0    # reads answered locally from the zero map
    metadata_probes: int = 0        # upstream LOOKUPs for .gvfs companions


class ZeroMapLayer(ProxyLayer):
    """Fetch, parse and apply per-file middleware meta-data."""

    ROLE = "metadata"
    Stats = ZeroMapStats

    def __init__(self):
        super().__init__()
        # fh -> parsed metadata (None = known absent).
        self.cache: Dict[FileHandle, Optional[FileMetadata]] = {}

    # ---------------------------------------------------------------- resolve
    def resolve(self, fh: FileHandle) -> Generator:
        """Process: find (and cache) the meta-data associated with ``fh``.

        Issued against the upstream RPC client directly — meta-data
        traffic is middleware-internal and is not counted as forwarded
        client requests.
        """
        if not self.config.metadata:
            return None
        if fh in self.cache:
            return self.cache[fh]
        name_info = self.stack.names.get(fh)
        if name_info is None:
            # Never saw a LOOKUP for this handle; cannot locate meta-data.
            self.cache[fh] = None
            return None
        dir_fh, name = name_info
        if name.startswith(".") and name.endswith(METADATA_SUFFIX):
            self.cache[fh] = None
            return None
        self.stats.metadata_probes += 1
        look = yield from self.stack.upstream.call(NfsRequest(
            NfsProc.LOOKUP, fh=dir_fh, name=metadata_name_for(name)))
        if not look.ok:
            self.cache[fh] = None
            return None
        raw = bytearray()
        offset = 0
        while True:
            reply = yield from self.stack.upstream.call(NfsRequest(
                NfsProc.READ, fh=look.fh, offset=offset,
                count=self.stack.block_size()))
            if not reply.ok or not reply.data:
                break
            raw += reply.data
            offset += len(reply.data)
            if reply.eof:
                break
        try:
            meta = FileMetadata.from_bytes(bytes(raw))
        except (ValueError, KeyError):
            meta = None
        self.cache[fh] = meta
        return meta

    # ------------------------------------------------------------------ handle
    def handle(self, request) -> Generator:
        if request.proc is not NfsProc.READ:
            return (yield from self.next.handle(request))
        fh, offset, count = request.fh, request.offset, request.count
        meta = yield from self.resolve(fh)
        if meta is not None and meta.covers_read(offset, count):
            # Zero-filled blocks: reconstruct locally, nothing on the wire.
            end = min(offset + count, max(meta.file_size,
                                          self.stack.local_size(fh)))
            n = max(end - offset, 0)
            self.stats.zero_filtered_reads += 1
            return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh,
                            data=bytes(n), count=n,
                            eof=offset + n >= meta.file_size)
        return (yield from self.next.handle(request))

    # --------------------------------------------------------------- lifecycle
    def crash(self) -> None:
        self.cache.clear()

    def invalidate(self) -> None:
        self.cache.clear()
