"""Composable proxy layers — the paper's extensions as a stack.

See :mod:`repro.core.layers.base` for the layer contract and
:mod:`repro.core.layers.stack` for composition, per-layer stats
aggregation and the stack report registry.

This package sits *below* :mod:`repro.core.proxy` and
:mod:`repro.core.session` in the import graph: layers must never
import session/proxy assembly code (enforced by the import-hygiene
test).
"""

from repro.core.layers.attrs import AttrPatchLayer
from repro.core.layers.base import ProxyLayer
from repro.core.layers.blocks import BlockCacheLayer
from repro.core.layers.checksum import ChecksumLayer, ChecksumRegistry
from repro.core.layers.degraded import DegradedModeLayer
from repro.core.layers.filechannel import FileChannelLayer
from repro.core.layers.peers import PeerCacheLayer
from repro.core.layers.readahead import ReadaheadLayer
from repro.core.layers.stack import (
    LEGACY_COUNTERS,
    ProxyStack,
    ProxyStats,
    disable_stack_reports,
    enable_stack_reports,
    format_cascade_reports,
    format_stack_reports,
    registered_stacks,
    standard_layers,
)
from repro.core.layers.terminal import UpstreamRpcLayer
from repro.core.layers.zeromap import ZeroMapLayer

__all__ = [
    "AttrPatchLayer",
    "BlockCacheLayer",
    "ChecksumLayer",
    "ChecksumRegistry",
    "DegradedModeLayer",
    "FileChannelLayer",
    "LEGACY_COUNTERS",
    "PeerCacheLayer",
    "ProxyLayer",
    "ProxyStack",
    "ProxyStats",
    "ReadaheadLayer",
    "UpstreamRpcLayer",
    "ZeroMapLayer",
    "disable_stack_reports",
    "enable_stack_reports",
    "format_cascade_reports",
    "format_stack_reports",
    "registered_stacks",
    "standard_layers",
]
