"""Attribute-patching layer: name learning and local-size patching.

The top of the stack.  Learns ``fh -> (parent dir, leaf name)`` from
LOOKUP/CREATE traffic (the meta-data layer needs names to locate a
file's ``.gvfs`` companion) and patches server attributes whose size
lags behind growth held locally by the write-back layers below.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Generator, Optional, Tuple

from repro.core.layers.base import ProxyLayer
from repro.nfs.protocol import Fattr, FileHandle, NfsProc, NfsReply

__all__ = ["AttrPatchLayer"]


@dataclass
class AttrPatchStats:
    names_learned: int = 0      # fh -> name bindings picked off LOOKUP/CREATE
    attrs_patched: int = 0      # replies whose size was locally extended


class AttrPatchLayer(ProxyLayer):
    """Learn the namespace; patch attrs for locally-absorbed growth."""

    ROLE = "attr-patch"
    Stats = AttrPatchStats

    def __init__(self):
        super().__init__()
        # fh -> (parent dir fh, leaf name), learned from LOOKUP traffic;
        # needed to find a file's meta-data in its directory.
        self.names: Dict[FileHandle, Tuple[FileHandle, str]] = {}
        # fh -> size as locally extended by absorbed writes.
        self.local_size: Dict[FileHandle, int] = {}

    # ------------------------------------------------------------------ handle
    def handle(self, request) -> Generator:
        proc = request.proc

        if proc is NfsProc.LOOKUP:
            reply = yield from self.next.handle(request)
            if reply.ok:
                self.names[reply.fh] = (request.fh, request.name)
                self.stats.names_learned += 1
                reply = self.patch_reply_attrs(reply)
            return reply

        if proc is NfsProc.GETATTR:
            reply = yield from self.next.handle(request)
            return self.patch_reply_attrs(reply) if reply.ok else reply

        reply = yield from self.next.handle(request)
        if reply.ok and proc is NfsProc.CREATE:
            self.names[reply.fh] = (request.fh, request.name)
            self.stats.names_learned += 1
        return reply

    # ----------------------------------------------------------- shared state
    def patched_attrs(self, fh: FileHandle,
                      attrs: Optional[Fattr]) -> Optional[Fattr]:
        """Adjust server attrs for size growth held in the write-back cache."""
        if attrs is None:
            return None
        local = self.local_size.get(fh)
        if local is not None and local > attrs.size:
            self.stats.attrs_patched += 1
            return replace(attrs, size=local)
        return attrs

    def patch_reply_attrs(self, reply: NfsReply) -> NfsReply:
        patched = self.patched_attrs(reply.fh, reply.attrs)
        if patched is reply.attrs:
            return reply
        return replace(reply, attrs=patched)

    def bump_local_size(self, fh: FileHandle, end: int) -> None:
        if end > self.local_size.get(fh, 0):
            self.local_size[fh] = end

    # -------------------------------------------------------------- lifecycle
    def crash(self) -> None:
        self.names.clear()
        self.local_size.clear()

    def invalidate(self) -> None:
        # Learned names survive invalidation (the kernel client keeps
        # its handles across a cold-cache cycle); local sizes do not —
        # the growth they tracked was flushed before the invalidate.
        self.local_size.clear()
