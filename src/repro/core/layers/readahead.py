"""Readahead layer: sequential-run detection and prefetch windows.

Watches the demand-miss stream reported by the block-cache layer: K
adjacent misses of one file arm a fire-and-forget readahead window
that fetches up to ``readahead_depth`` blocks ahead of the reader,
installing them with merged bank-file writes.  Prefetch gates live in
the block layer's gate table, so demand READs coalesce onto in-flight
prefetches exactly as they coalesce onto each other.

On the request path this layer is a pure pass-through (zero events);
its work rides on the sideways API the block layer calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.layers.base import ProxyLayer
from repro.core.metadata import FileMetadata
from repro.nfs.protocol import FileHandle, NfsProc, NfsRequest
from repro.sim import AllOf

__all__ = ["ReadaheadLayer"]


@dataclass
class ReadaheadStats:
    prefetch_issued: int = 0        # blocks scheduled by readahead/profiles
    prefetch_used: int = 0          # prefetched blocks later hit by demand
    prefetch_failed: int = 0        # prefetches that returned no data
    readahead_windows: int = 0      # window launches by the run detector


class ReadaheadLayer(ProxyLayer):
    """Run detection plus background prefetch windows."""

    ROLE = "readahead"
    Stats = ReadaheadStats

    def __init__(self):
        super().__init__()
        # Blocks installed by readahead and not yet demanded (accuracy).
        self.prefetched: set = set()
        # Sequential-run detector state, per file handle.
        self.last_miss: Dict[FileHandle, int] = {}
        self.miss_run: Dict[FileHandle, int] = {}
        self.frontier: Dict[FileHandle, int] = {}

    @property
    def _block(self):
        return self.stack.layer("block-cache")

    # ----------------------------------------------------------- sideways API
    def note_demand_miss(self, fh: FileHandle, idx: int,
                         meta: Optional[FileMetadata]) -> None:
        """Run detection on the demand-miss stream: K adjacent misses of
        one file arm a readahead window ahead of the reader."""
        if self.config.readahead_depth <= 0 or self._block is None:
            return
        if self.last_miss.get(fh) == idx - 1:
            self.miss_run[fh] = self.miss_run.get(fh, 1) + 1
        else:
            self.miss_run[fh] = 1
            self.frontier.pop(fh, None)   # a new run, a new window
        self.last_miss[fh] = idx
        if self.miss_run[fh] >= self.config.readahead_min_run:
            self.extend_readahead(fh, idx, meta)

    def consume_prefetch(self, key: Tuple[FileHandle, int],
                         meta: Optional[FileMetadata]) -> None:
        """A demand READ hit a prefetched frame: account for it and keep
        the window ``readahead_depth`` blocks ahead of the reader."""
        if key not in self.prefetched:
            return
        self.prefetched.discard(key)
        self.stats.prefetch_used += 1
        self.extend_readahead(key[0], key[1], meta)

    def register_prefetch(self, key: Tuple[FileHandle, int]) -> None:
        """Count an externally issued prefetch (profile-driven
        :class:`~repro.core.profiler.Prefetcher`) toward accuracy."""
        self.stats.prefetch_issued += 1
        self.prefetched.add(key)

    # ---------------------------------------------------------------- windows
    def extend_readahead(self, fh: FileHandle, idx: int,
                         meta: Optional[FileMetadata]) -> None:
        """Schedule background fetches up to ``readahead_depth`` blocks
        past demand block ``idx`` (skipping cached, in-flight and
        zero-filled blocks, and stopping at the known file size)."""
        block = self._block
        bs = self.stack.block_size()
        lo = idx + 1
        frontier = self.frontier.get(fh)
        if frontier is not None and frontier >= lo:
            lo = frontier + 1
        size_limit = None
        if meta is not None:
            size_limit = max(meta.file_size, self.stack.local_size(fh))
        idxs = []
        for i in range(lo, idx + 1 + self.config.readahead_depth):
            if size_limit is not None and i * bs >= size_limit:
                break
            key = (fh, i)
            if key in block.gates or key in block.block_cache:
                continue
            if meta is not None and meta.covers_read(i * bs, bs):
                continue   # zero-filled: answered locally, nothing to fetch
            idxs.append(i)
        if not idxs:
            return
        self.frontier[fh] = idxs[-1]
        for i in idxs:
            block.gates[(fh, i)] = self.env.event()
        self.stats.prefetch_issued += len(idxs)
        self.stats.readahead_windows += 1
        self.env.process(self._window(fh, idxs),
                         name=f"{self.config.name}.readahead")

    def _window(self, fh: FileHandle, idxs: List[int]) -> Generator:
        """Background process: fetch a window of blocks concurrently and
        install it with one merged bank-file write per contiguous run.

        Fire-and-forget: every failure is contained (an unobserved
        failed process aborts the whole simulation) and every gate is
        released, so a failed prefetch never wedges later READs.
        """
        block = self._block
        bs = self.stack.block_size()
        # Snapshot our gates: a proxy crash mid-window releases and
        # clears them, and recovery may install fresh gates under the
        # same keys — cleanup must only touch the ones we own.
        gates = {i: block.gates[(fh, i)] for i in idxs}
        fetched: Dict[int, bytes] = {}

        def fetch_one(i: int) -> Generator:
            try:
                reply = yield from self.next.handle(NfsRequest(
                    NfsProc.READ, fh=fh, offset=i * bs, count=bs,
                    credentials=self.config.identity or (0, 0)))
            except Exception:
                return
            if reply.ok and reply.data:
                fetched[i] = reply.data

        victims: List = []
        try:
            yield AllOf(self.env, [self.env.process(fetch_one(i))
                                   for i in idxs])
            items = []
            for i in sorted(fetched):
                key = (fh, i)
                self.prefetched.add(key)
                items.append((key, fetched[i]))
            if items:
                victims = yield from block.block_cache.insert_many(items)
        except Exception:
            pass
        finally:
            self.stats.prefetch_failed += len(idxs) - len(fetched)
            for i in idxs:
                gate = gates[i]
                if block.gates.get((fh, i)) is gate:
                    del block.gates[(fh, i)]
                if not gate.triggered:
                    gate.succeed()
        for victim in victims:
            try:
                yield from block.dispose_victim(victim)
            except Exception:
                pass   # contained: a prefetch must not crash the session

    # --------------------------------------------------------------- lifecycle
    def crash(self) -> None:
        self.prefetched.clear()
        self.last_miss.clear()
        self.miss_run.clear()
        self.frontier.clear()

    def invalidate(self) -> None:
        self.prefetched.clear()
        self.last_miss.clear()
        self.miss_run.clear()
        self.frontier.clear()
