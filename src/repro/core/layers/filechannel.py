"""File-channel layer: whole-file heterogeneous caching (§3.2.2).

Files whose meta-data carries action lists (compress → remote copy →
uncompress) are fetched once through the file-based data channel and
then served from the proxy's file cache.  Writes to a file held in the
file cache stay local and upload on flush (write-back of e.g. a
checkpointed memory state).  Concurrent READs of one file coalesce on
a per-file fetch gate, symmetric to the block layer's miss gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.core.layers.base import ProxyLayer
from repro.nfs.protocol import FileHandle, NfsProc, NfsReply, NfsStatus

__all__ = ["FileChannelLayer"]


@dataclass
class FileChannelStats:
    file_cache_reads: int = 0   # reads served from the whole-file cache
    channel_fetches: int = 0    # action lists executed (one per file fetch)
    absorbed_writes: int = 0    # writes kept local in the file cache
    stalled_uploads: int = 0    # uploads parked on a stall fault
    dropped_uploads: int = 0    # uploads lost to a drop fault (entry stays
                                # dirty, so a later flush retries it)
    replicated_uploads: int = 0  # extra per-replica uploads via a selector


class FileChannelLayer(ProxyLayer):
    """Serve whole files through the file-based data channel.

    With a *channel selector* attached, each whole-file fetch is routed
    to a live origin replica (``fetch_channel(fh)``) and each flush
    upload is replicated to every live replica (``upload_channels(fh)``)
    — the farm's whole-file counterpart of the terminal layer's origin
    selector.  Without one, the single baked-in channel is used.
    """

    ROLE = "file-channel"
    Stats = FileChannelStats

    def __init__(self, channel, selector=None):
        super().__init__()
        self.channel = channel
        self.selector = selector
        # fh -> in-progress channel fetch gate (concurrent READs wait).
        self.fetching: Dict[FileHandle, object] = {}
        # Fault-injection state: a gate parking flush uploads, and a
        # count of upcoming uploads to lose on the floor.
        self._upload_gate = None
        self._drop_uploads = 0

    # ------------------------------------------------------------- fault port
    def inject_fault(self, kind: str, arg=None) -> None:
        if kind == "stall-uploads":
            if self._upload_gate is None:
                self._upload_gate = self.env.event()
        elif kind == "resume-uploads":
            gate, self._upload_gate = self._upload_gate, None
            if gate is not None and not gate.triggered:
                gate.succeed()
        elif kind == "drop-upload":
            self._drop_uploads += int(arg or 1)
        else:
            super().inject_fault(kind, arg)

    @property
    def file_cache(self):
        return self.channel.file_cache

    # ------------------------------------------------------------------ fetch
    def ensure_file_cached(self, fh: FileHandle) -> Generator:
        """Process: run the file channel for ``fh`` exactly once."""
        if fh in self.file_cache:
            return
        gate = self.fetching.get(fh)
        if gate is not None:
            yield gate  # someone else is already fetching
            return
        gate = self.env.event()
        self.fetching[fh] = gate
        try:
            channel = self.channel
            if self.selector is not None:
                channel = self.selector.fetch_channel(fh)
            yield from channel.fetch(fh)
            self.stats.channel_fetches += 1
        finally:
            if self.fetching.get(fh) is gate:
                del self.fetching[fh]
            if not gate.triggered:
                gate.succeed()

    # ------------------------------------------------------------------ handle
    def handle(self, request) -> Generator:
        proc = request.proc

        if proc is NfsProc.WRITE:
            fh, offset, data = request.fh, request.offset, request.data
            # Writes to a file held in the file cache stay local,
            # uploaded on flush.
            if fh in self.file_cache:
                yield from self.file_cache.write(fh, offset, data)
                self.stats.absorbed_writes += 1
                self.stack.bump_local_size(fh, offset + len(data))
                return NfsReply(NfsProc.WRITE, NfsStatus.OK, fh=fh,
                                count=len(data))
            return (yield from self.next.handle(request))

        if proc is not NfsProc.READ:
            return (yield from self.next.handle(request))

        fh, offset, count = request.fh, request.offset, request.count
        meta = self.stack.cached_meta(fh)
        if meta is not None and meta.wants_file_channel:
            # Whole-file channel: fetch once, then serve from file cache.
            yield from self.ensure_file_cached(fh)
            reply = yield from self._read_cached(fh, offset, count)
            if reply is not None:
                return reply
        # File already in the file cache (e.g. after write-back install)?
        if fh in self.file_cache:
            reply = yield from self._read_cached(fh, offset, count)
            if reply is not None:
                return reply
        return (yield from self.next.handle(request))

    def _read_cached(self, fh: FileHandle, offset: int,
                     count: int) -> Generator:
        data = yield from self.file_cache.read(fh, offset, count)
        if data is None:
            return None
        self.stats.file_cache_reads += 1
        size = self.file_cache.entry(fh).size
        return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh, data=data,
                        count=len(data), eof=offset + len(data) >= size)

    # --------------------------------------------------------------- lifecycle
    def flush(self) -> Generator:
        for entry in self.file_cache.dirty_entries():
            if self._upload_gate is not None:
                # Stalled by fault injection: park until resumed.  The
                # entry stays dirty the whole time, so a crash mid-stall
                # loses nothing that was ever acknowledged as flushed.
                self.stats.stalled_uploads += 1
                yield self._upload_gate
            if self._drop_uploads > 0:
                # Lost upload: skip the channel send but leave the entry
                # dirty — the next flush retries, so the write is late,
                # never lost.
                self._drop_uploads -= 1
                self.stats.dropped_uploads += 1
                continue
            if self.selector is not None:
                channels = self.selector.upload_channels(entry.fh)
                for channel in channels:
                    yield from channel.upload(entry.fh)
                self.stats.replicated_uploads += max(len(channels) - 1, 0)
            else:
                yield from self.channel.upload(entry.fh)

    def crash(self) -> None:
        for gate in self.fetching.values():
            if not gate.triggered:
                gate.succeed()
        self.fetching.clear()
        gate, self._upload_gate = self._upload_gate, None
        if gate is not None and not gate.triggered:
            gate.succeed()
        # Whole-file cache state (and any dirty entries) dies with the
        # process; the journal covers block-cache writes only.
        self.file_cache.clear()

    def quiesce(self) -> Generator:
        while self.fetching:
            fh = next(iter(self.fetching))
            yield self.fetching[fh]

    def invalidate_guard(self) -> Optional[str]:
        if self.fetching:
            return "invalidate with file fetches in flight; quiesce first"
        return None

    def invalidate(self) -> None:
        self.file_cache.clear()

    def dirty_files(self) -> int:
        return len(self.file_cache.dirty_entries())

    def reset(self) -> None:
        super().reset()
        self.channel.reset_stats()
