"""Block-cache layer: the proxy disk cache with write-back (§3.2.1).

Block-aligned READs are served from the set-associative disk cache;
misses fetch the whole enclosing block from upstream, coalescing
concurrent fetches of one block onto a single RPC via per-block gates.
Writes are absorbed (write-back) or mirrored through (write-through)
with read-modify-write merging into complete frames.  ``flush`` pushes
dirty blocks upstream in coalesced runs — adjacent blocks of one file
merged into single large WRITEs, several RPCs pipelined — then COMMITs
each touched file.

Degraded-mode decisions (clean error on a miss with the upstream down,
the dirty high-water mark, write rejects during an outage) are
delegated sideways to the fault-guard layer; readahead bookkeeping
(run detection, prefetch accounting) to the readahead layer.

Exclusive-cascade demotion (off by default): once :meth:`arm_demotion`
verifies the next level up also runs a block cache, clean eviction
victims are handed upstream as ``DEMOTE`` calls carrying the block
bytes — the receiver caches them without re-reading origin — instead
of being dropped, so stacked cascade levels stop holding duplicate
copies of the same golden-image blocks.  Adaptive sizing can also
``bypass`` a level whose cache stopped paying: a bypassed layer passes
every request straight down and absorbs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.core.config import CachePolicy
from repro.core.layers.base import ProxyLayer
from repro.nfs.protocol import (FileHandle, NfsError, NfsProc, NfsReply,
                                NfsRequest, NfsStatus)
from repro.nfs.rpc import RpcTimeout
from repro.sim import AllOf, AnyOf

__all__ = ["BlockCacheLayer"]

#: Sentinel distinguishing the demote deadline from a (None) failed send.
_DEMOTE_LOST = object()


@dataclass
class BlockCacheStats:
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    coalesced_misses: int = 0       # READs that waited on an in-flight fetch
    absorbed_writes: int = 0        # writes absorbed into the write-back cache
    absorbed_commits: int = 0       # client COMMITs answered locally
    writebacks: int = 0             # dirty blocks pushed upstream
    merged_write_rpcs: int = 0      # coalesced upstream WRITEs during flush
    merged_write_blocks: int = 0    # blocks those WRITEs carried
    recovered_dirty_blocks: int = 0 # dirty frames rebuilt from the journal
    demotions_out: int = 0          # clean victims DEMOTEd to the next level
    demotions_in: int = 0           # demoted blocks absorbed from below
    demotion_drops: int = 0         # demotes refused or failed (best-effort)
    demotion_timeouts: int = 0      # demotes abandoned at the send deadline
    bypassed_requests: int = 0      # requests passed through while bypassed
    frames_corrupted: int = 0       # cached frames garbled by fault injection
    procs_blackholed: int = 0       # incoming RPCs parked by a blackhole fault
    procs_delayed: int = 0          # incoming RPCs slowed by a delay fault
    procs_duplicated: int = 0       # incoming RPCs delivered twice by a fault


class BlockCacheLayer(ProxyLayer):
    """Serve block-aligned I/O from the proxy disk cache."""

    ROLE = "block-cache"
    Stats = BlockCacheStats
    FAULT_PROCS = True
    #: Seconds a demote send may spend before being abandoned (a clean
    #: victim is re-fetchable; an outage must not wedge the eviction).
    DEMOTE_DEADLINE = 2.0

    def __init__(self, block_cache):
        super().__init__()
        self.block_cache = block_cache
        # (fh, block) -> in-progress block fetch gate: N concurrent READs
        # of one uncached block coalesce onto a single upstream RPC.
        self.gates: dict = {}
        #: Exclusive-cascade demotion, armed via :meth:`arm_demotion`.
        self.demote_enabled = False
        #: Adaptive-sizing bypass: pass everything straight down.
        self.bypassed = False

    # --------------------------------------------------------------- sideways
    @property
    def _readahead(self):
        return self.stack.layer("readahead")

    @property
    def _guard(self):
        return self.stack.layer("fault-guard")

    @property
    def eviction_policy(self) -> str:
        """Name of the victim-selection policy this level's cache runs
        (per-level in a cascade; see :mod:`repro.core.eviction`)."""
        return self.block_cache.policy.name

    @property
    def hit_ratio(self) -> float:
        """hits / (hits + misses) so far (0.0 before any block traffic)."""
        seen = self.stats.block_cache_hits + self.stats.block_cache_misses
        return self.stats.block_cache_hits / seen if seen else 0.0

    @property
    def write_back(self) -> bool:
        return (self.config.cache is not None
                and self.config.cache.policy is CachePolicy.WRITE_BACK)

    # ------------------------------------------------------------- fault port
    def inject_fault(self, kind: str, arg=None) -> None:
        """Corrupt one cached frame in place, or arm per-proc faults.

        ``corrupt-frame`` garbles the ``arg``-th (mod population, so a
        seeded sweep never misses) clean cached frame on disk — the
        cache tag stays valid, exactly the silent-corruption case an
        end-to-end checksum must catch.  The per-proc kinds matter here
        because DEMOTE enters a stack through its front door and is
        routed to this layer, bypassing the sender's terminal.
        """
        if kind == "corrupt-frame":
            keys = self.block_cache.iter_clean_keys()
            if not keys:
                return
            key = keys[(arg or 0) % len(keys)]
            if self.block_cache.corrupt_frame(key):
                self.stats.frames_corrupted += 1
            return
        super().inject_fault(kind, arg)

    def discard_block(self, key) -> bool:
        """Drop one clean cached block (checksum-repair refetch path)."""
        return self.block_cache.discard(key)

    # ------------------------------------------------------------------ handle
    def handle(self, request) -> Generator:
        if self.proc_faults is not None:
            duplicate = yield from self.apply_proc_faults(request)
            if duplicate:
                # Deliver the duplicate first and drop its reply — the
                # caller sees only the second, like a retransmission
                # whose original also arrived.
                yield from self._route(request)
        return (yield from self._route(request))

    def _route(self, request) -> Generator:
        proc = request.proc
        if proc is NfsProc.DEMOTE:
            return (yield from self._handle_demote(request))
        if self.bypassed:
            self.stats.bypassed_requests += 1
            return (yield from self.next.handle(request))
        if proc is NfsProc.READ:
            return (yield from self._handle_read(request))
        if proc is NfsProc.WRITE:
            return (yield from self._handle_write(request))
        if proc is NfsProc.COMMIT and self.write_back \
                and self.config.absorb_commits:
            self.stats.absorbed_commits += 1
            return NfsReply(proc, NfsStatus.OK, fh=request.fh)
        return (yield from self.next.handle(request))

    # -------------------------------------------------------------------- READ
    def _handle_read(self, request) -> Generator:
        fh, offset, count = request.fh, request.offset, request.count
        meta = self.stack.cached_meta(fh)

        # The kernel client issues block-aligned reads of the mount's
        # rsize; requests that do not fit one frame pass down untouched.
        bs = self.stack.block_size()
        idx, within = divmod(offset, bs)
        if within + count > bs:
            return (yield from self.next.handle(request))
        key = (fh, idx)
        while True:
            hit = yield from self.block_cache.lookup(key)
            if hit is not None:
                self.stats.block_cache_hits += 1
                guard = self._guard
                if guard is not None:
                    # Read-only degraded mode: clean cached data keeps
                    # the VM running through the outage.
                    guard.note_cached_read()
                readahead = self._readahead
                if readahead is not None:
                    readahead.consume_prefetch(key, meta)
                data = hit.data[within:within + count]
                eof = len(hit.data) < bs and within + count >= len(hit.data)
                return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh, data=data,
                                count=len(data), eof=eof)
            gate = self.gates.get(key)
            if gate is None:
                break
            # Another READ (demand or readahead) already has this block
            # on the wire: wait for its frame instead of issuing a
            # second upstream RPC for the same bytes.
            self.stats.coalesced_misses += 1
            yield gate
        self.stats.block_cache_misses += 1
        readahead = self._readahead
        if readahead is not None:
            readahead.note_demand_miss(fh, idx, meta)
        gate = self.env.event()
        self.gates[key] = gate
        victim = None
        try:
            upstream_req = request.replace(offset=idx * bs, count=bs)
            guard = self._guard
            if guard is not None:
                # Upstream unreachable and the block is not cached: the
                # VM gets a clean I/O error, not a hang.
                reply = yield from guard.guarded_fetch(upstream_req)
            else:
                reply = yield from self.next.handle(upstream_req)
            if reply.ok:
                victim = yield from self.block_cache.insert(
                    key, reply.data, dirty=False)
        finally:
            # Always release the gate, even when the upstream RPC fails —
            # a failed fetch must never wedge later READs of this block.
            # (A proxy crash may have already succeeded and dropped it.)
            if self.gates.get(key) is gate:
                del self.gates[key]
            if not gate.triggered:
                gate.succeed()
        if not reply.ok:
            return reply
        if victim is not None:
            yield from self.dispose_victim(victim)
        data = reply.data[within:within + count]
        eof = reply.eof and within + count >= len(reply.data)
        return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh, data=data,
                        count=len(data), eof=eof,
                        attrs=self.stack.patched_attrs(fh, reply.attrs))

    # ------------------------------------------------------------------- WRITE
    def _handle_write(self, request) -> Generator:
        fh, offset, data = request.fh, request.offset, request.data

        if self.block_cache.read_only:
            # A shared read-only cache (golden-image data only, §3.2.1):
            # writes pass straight through.
            return (yield from self.next.handle(request))

        bs = self.stack.block_size()
        idx, within = divmod(offset, bs)
        if within + len(data) > bs:
            return (yield from self.next.handle(request))
        key = (fh, idx)

        if not self.write_back:
            # Write-through: server first, then refresh the cached copy.
            reply = yield from self.next.handle(request)
            if reply.ok:
                try:
                    yield from self.merge_into_cache(key, within, data)
                except RpcTimeout:
                    pass   # server has the data; only the cache refresh failed
                self.stack.bump_local_size(fh, offset + len(data))
            return reply

        # Write-back: absorb into the disk cache and acknowledge.  The
        # fault guard enforces the dirty high-water mark first: at the
        # limit, a write that would dirty a *new* frame drains a run
        # synchronously — or, with the upstream down, is rejected.
        guard = self._guard
        if guard is not None:
            rejected = yield from guard.ensure_write_capacity(key)
            if rejected is not None:
                return rejected
        try:
            yield from self.merge_into_cache(key, within, data, dirty=True)
        except RpcTimeout:
            # The read-modify-write base fetch failed; absorbing the
            # partial write over a zeroed base would corrupt the block
            # at flush time, so fail the write cleanly instead.
            if guard is not None:
                return guard.reject_write(fh)
            return NfsReply(NfsProc.WRITE, NfsStatus.IO, fh=fh)
        self.stats.absorbed_writes += 1
        self.stack.bump_local_size(fh, offset + len(data))
        return NfsReply(NfsProc.WRITE, NfsStatus.OK, fh=fh, count=len(data))

    def merge_into_cache(self, key, within: int, data: bytes,
                         dirty: bool = False) -> Generator:
        """Process: read-modify-write ``data`` into the cached block."""
        fh, idx = key
        bs = self.stack.block_size()
        existing = yield from self.block_cache.lookup(key)
        if existing is not None:
            base = bytearray(existing.data)
            dirty = dirty or existing.dirty
        elif 0 < within or len(data) < bs:
            # Partial block not yet cached: fetch it so the cache holds a
            # complete frame for later reads/write-back (read-modify-write).
            reply = yield from self.stack.upstream.call(NfsRequest(
                NfsProc.READ, fh=fh, offset=idx * bs, count=bs,
                credentials=self.config.identity or (0, 0)))
            base = bytearray(reply.data if reply.ok else b"")
        else:
            base = bytearray()
        if len(base) < within + len(data):
            base.extend(bytes(within + len(data) - len(base)))
        base[within:within + len(data)] = data
        victim = yield from self.block_cache.insert(key, bytes(base),
                                                    dirty=dirty)
        if victim is not None:
            yield from self.dispose_victim(victim)

    # --------------------------------------------------- exclusive demotion
    def arm_demotion(self) -> bool:
        """Arm exclusive-cascade demotion for this level.

        Only sensible — and only safe — when the next level up also
        runs a writable block cache of the same block size: the kernel
        NFS server does not speak ``DEMOTE``, and a demoted block must
        land in a frame it fits.  Returns whether demotion was armed;
        arming also turns on clean-victim capture in the cache (the
        only way clean victims surface at all).
        """
        up = self.stack.upstream_stack()
        if up is None:
            return False
        target = up.layer("block-cache")
        if target is None or target.block_cache.read_only:
            return False
        if up.block_size() != self.stack.block_size():
            return False
        self.demote_enabled = True
        self.block_cache.capture_clean_victims = True
        return True

    def dispose_victim(self, victim) -> Generator:
        """Process: route one eviction victim — dirty blocks write back
        upstream; clean ones (surfaced only while demotion is armed)
        demote one hop up."""
        if victim.dirty:
            yield from self.write_back_block(victim.key, victim.data)
        else:
            yield from self.demote_block(victim.key, victim.data)

    def demote_block(self, key, data: bytes) -> Generator:
        """Process: hand one clean eviction victim to the next level up.

        Best effort: a lost demote costs a future refetch, never
        correctness, so upstream failures are swallowed rather than
        propagated into whatever I/O triggered the eviction.  The send
        is bounded by ``DEMOTE_DEADLINE`` even when the upstream client
        has no timeout of its own (the session default): a demote stuck
        behind a dead link is abandoned — and counted, not absorbed —
        instead of wedging the eviction that triggered it.
        """
        if not self.demote_enabled:
            return
        fh, idx = key
        request = NfsRequest(
            NfsProc.DEMOTE, fh=fh,
            offset=idx * self.stack.block_size(), data=data,
            stable=False, credentials=self.config.identity or (0, 0))
        attempt = self.env.process(self._demote_call(request),
                                   name=f"demote-{idx}")
        timer = self.env.timeout(self.DEMOTE_DEADLINE, value=_DEMOTE_LOST)
        outcome = yield AnyOf(self.env, [attempt, timer])
        if outcome is _DEMOTE_LOST:
            if attempt.is_alive:
                attempt.interrupt("demote deadline")
            self.stats.demotion_timeouts += 1
            self.stats.demotion_drops += 1
            return
        if outcome is not None and outcome.ok:
            self.stats.demotions_out += 1
        else:
            self.stats.demotion_drops += 1

    def _demote_call(self, request) -> Generator:
        """Process: one demote send; upstream failure maps to None."""
        try:
            return (yield from self.stack.upstream.call(request))
        except (RpcTimeout, NfsError):
            return None

    def _handle_demote(self, request) -> Generator:
        """Process: absorb a block demoted by the cache one level down.

        The block is installed clean without re-reading origin — that
        is the whole point of the fast path.  A demote never travels
        further down the stack (one hop per demote; an insert here may
        of course evict a victim of its own, which is disposed the
        usual way), and never overwrites a resident copy: a raced
        demand fill is as fresh, and a dirty local copy is newer.
        """
        fh, data = request.fh, request.data
        bs = self.stack.block_size()
        idx, within = divmod(request.offset, bs)
        if (self.bypassed or self.block_cache.read_only or within
                or len(data) > bs):
            self.stats.demotion_drops += 1
            return NfsReply(NfsProc.DEMOTE, NfsStatus.OK, fh=fh)
        key = (fh, idx)
        if key in self.block_cache:
            self.stats.demotion_drops += 1
            return NfsReply(NfsProc.DEMOTE, NfsStatus.OK, fh=fh)
        victim = yield from self.block_cache.insert(key, data, dirty=False)
        self.stats.demotions_in += 1
        if victim is not None:
            yield from self.dispose_victim(victim)
        return NfsReply(NfsProc.DEMOTE, NfsStatus.OK, fh=fh, count=len(data))

    # -------------------------------------------------------------- write-back
    def write_back_block(self, key, data: bytes) -> Generator:
        """Process: push one dirty block upstream."""
        fh, idx = key
        reply = yield from self.stack.upstream.call(NfsRequest(
            NfsProc.WRITE, fh=fh, offset=idx * self.stack.block_size(),
            data=data, stable=False,
            credentials=self.config.identity or (0, 0)))
        reply.raise_for_status(f"write-back {fh} block {idx}")
        self.stats.writebacks += 1

    def write_back_run(self, run: List[Tuple[FileHandle, int]]) -> Generator:
        """Process: push one run of adjacent dirty blocks upstream as
        merged WRITE RPCs.

        Re-validated as it goes: a concurrent readahead insert can evict
        (and itself write back) parts of the run while we wait on RPCs,
        so each pass keeps only still-dirty keys and re-splits on the
        adjacency that is left.
        """
        fh = run[0][0]
        bs = self.stack.block_size()
        remaining = list(run)
        while remaining:
            live = [k for k in remaining if self.block_cache.is_dirty(k)]
            if not live:
                return
            end = 1
            while end < len(live) and live[end][1] == live[end - 1][1] + 1:
                end += 1
            sub, remaining = live[:end], live[end:]
            datas = yield from self.block_cache.read_many(sub)
            reply = yield from self.stack.upstream.call(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=sub[0][1] * bs,
                data=b"".join(datas), stable=False,
                credentials=self.config.identity or (0, 0)))
            reply.raise_for_status(
                f"write-back {fh} blocks {sub[0][1]}..{sub[-1][1]}")
            for key in sub:
                self.block_cache.mark_clean(key)
            self.stats.writebacks += len(sub)
            self.stats.merged_write_rpcs += 1
            self.stats.merged_write_blocks += len(sub)

    # --------------------------------------------------------------- lifecycle
    def flush(self) -> Generator:
        """Process: dirty blocks upstream in coalesced, pipelined runs,
        then one COMMIT per touched file."""
        runs = self.block_cache.dirty_runs(self.config.write_coalesce_bytes)
        touched = set()
        width = self.config.write_pipeline_depth
        for start in range(0, len(runs), width):
            batch = runs[start:start + width]
            for run in batch:
                touched.update(key[0] for key in run)
            if len(batch) == 1:
                yield from self.write_back_run(batch[0])
            else:
                yield AllOf(self.env, [
                    self.env.process(self.write_back_run(run))
                    for run in batch])
        for fh in sorted(touched, key=lambda f: (f.fsid, f.fileid)):
            reply = yield from self.stack.upstream.call(NfsRequest(
                NfsProc.COMMIT, fh=fh))
            reply.raise_for_status("flush commit")

    def crash(self) -> None:
        for gate in self.gates.values():
            if not gate.triggered:
                gate.succeed()
        self.gates.clear()
        self.block_cache.crash()

    def recover(self) -> Generator:
        recovered = yield from self.block_cache.recover_from_journal()
        self.stats.recovered_dirty_blocks += len(recovered)
        return recovered

    def quiesce(self) -> Generator:
        while self.gates:
            key = next(iter(self.gates))
            yield self.gates[key]

    def invalidate_guard(self) -> Optional[str]:
        if self.gates:
            return "invalidate with fetches in flight; quiesce first"
        return None

    def invalidate(self) -> None:
        self.block_cache.flush_tags()

    def dirty_blocks(self) -> int:
        return len(self.block_cache.dirty_blocks())

    def replace_cache(self, new_cache) -> None:
        """Swap the backing block cache (adaptive resizing).

        Refused while dirty frames exist — the caller flushes first, so
        a resize can never lose write-back data.  Cooperative state
        carries over: observers move to the new cache (which starts
        empty, so the old contents are retracted from any directory)
        and clean-victim capture keeps its setting.
        """
        if self.block_cache.dirty_frames:
            raise RuntimeError(f"{self.block_cache.name}: replace_cache "
                               "with dirty frames; flush first")
        if new_cache.config.block_size != self.block_cache.config.block_size:
            raise ValueError("replace_cache must keep the block size")
        old = self.block_cache
        new_cache.capture_clean_victims = old.capture_clean_victims
        new_cache.observers.extend(old.observers)
        for obs in old.observers:
            obs.cache_cleared()
        old.observers.clear()
        self.gates.clear()
        self.block_cache = new_cache

    def stats_snapshot(self) -> dict:
        # Beyond the request counters, expose the cache's own occupancy
        # and churn: the adaptive-sizing planner estimates each level's
        # working set from deep snapshots alone (repro.core.adaptive).
        snap = super().stats_snapshot()
        cache = self.block_cache
        snap["cache_insertions"] = cache.insertions
        snap["cache_evictions"] = cache.evictions
        snap["cached_blocks"] = cache.cached_blocks
        snap["capacity_frames"] = cache.config.total_frames
        snap["bypassed"] = int(self.bypassed)
        return snap

    def reset(self) -> None:
        super().reset()
        self.block_cache.reset_stats()
