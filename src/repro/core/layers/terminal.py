"""Terminal layer: the client face of the proxy.

The bottom of every stack: whatever reaches it goes out through the
stack's upstream RPC client (an SSH tunnel to the next proxy in the
cascade, or a loopback to the kernel server).  The upstream client is
looked up on the stack at call time, so middleware (and tests) can
swap or harden it live.

This is also the natural place to fault a single RPC procedure on the
upstream hop — blackhole every READ, delay COMMITs — so the terminal
opts into the per-proc fault port (``FAULT_PROCS``).  Note DEMOTE does
not pass through the *sender's* terminal (demotion calls the upstream
client directly); DEMOTE faults belong on the receiving block-cache
layer instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.layers.base import ProxyLayer

__all__ = ["UpstreamRpcLayer"]


@dataclass
class UpstreamRpcStats:
    forwarded: int = 0          # requests that went upstream on the wire
    procs_blackholed: int = 0   # requests parked by a blackhole fault
    procs_delayed: int = 0      # requests slowed by a delay fault
    procs_duplicated: int = 0   # requests sent twice by a dup fault
    origin_selected: int = 0    # requests resolved by an origin selector


class UpstreamRpcLayer(ProxyLayer):
    """Issue requests upstream like an NFS client.

    With an *origin selector* attached, each request is resolved to one
    (or, for replicated writes, several) origin replicas by the
    selector's ``dispatch`` instead of the single baked-in upstream —
    the seam the image-server farm plugs into.  Without one, the path
    is exactly the single-upstream call it has always been.
    """

    ROLE = "upstream-rpc"
    Stats = UpstreamRpcStats
    FAULT_PROCS = True

    def __init__(self, selector=None):
        super().__init__()
        #: Optional origin selector: anything with ``dispatch(request)``
        #: (a generator yielding sim events and returning an NfsReply).
        self.selector = selector

    def handle(self, request) -> Generator:
        if self.proc_faults is not None:
            duplicate = yield from self.apply_proc_faults(request)
            if duplicate:
                # The extra delivery goes first and its reply is
                # discarded — the caller sees only the second, like a
                # retransmitted RPC whose original also landed.
                self.stats.forwarded += 1
                yield from self._forward(request)
        self.stats.forwarded += 1
        reply = yield from self._forward(request)
        return reply

    def _forward(self, request) -> Generator:
        if self.selector is not None:
            self.stats.origin_selected += 1
            return (yield from self.selector.dispatch(request))
        return (yield from self.stack.upstream.call(request))
