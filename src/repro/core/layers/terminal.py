"""Terminal layer: the client face of the proxy.

The bottom of every stack: whatever reaches it goes out through the
stack's upstream RPC client (an SSH tunnel to the next proxy in the
cascade, or a loopback to the kernel server).  The upstream client is
looked up on the stack at call time, so middleware (and tests) can
swap or harden it live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.layers.base import ProxyLayer

__all__ = ["UpstreamRpcLayer"]


@dataclass
class UpstreamRpcStats:
    forwarded: int = 0      # requests that went upstream on the wire


class UpstreamRpcLayer(ProxyLayer):
    """Issue requests upstream like an NFS client."""

    ROLE = "upstream-rpc"
    Stats = UpstreamRpcStats

    def handle(self, request) -> Generator:
        self.stats.forwarded += 1
        reply = yield from self.stack.upstream.call(request)
        return reply
