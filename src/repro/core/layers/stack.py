"""The composable GVFS proxy stack.

A :class:`ProxyStack` is an NFS RPC handler assembled from
:class:`~repro.core.layers.base.ProxyLayer` instances.  The stack owns
the front door (request accounting, per-request CPU cost, credential
remapping, request observers) and fans lifecycle operations out to
every layer; everything else — meta-data, caches, readahead, degraded
mode, the upstream hop — lives in the layers.

Composition expresses the paper's deployment shapes directly:

* a **forwarding** proxy (the server-side identity mapper) is a stack
  with no cache layers;
* a **caching client** proxy adds the file-channel, block-cache and
  readahead layers;
* a **second-level LAN cache** is the same caching composition whose
  upstream RPC client points at another proxy — cascading is stacking;
* a **shared read-only cache** is a block-cache layer handed a cache
  object owned by another session.

``ProxyStats`` keeps the legacy flat counter surface alive as a
routing view over the per-layer stats bags, so middleware and analysis
code written against the monolithic proxy keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.config import ProxyConfig
from repro.core.layers.attrs import AttrPatchLayer
from repro.core.layers.base import ProxyLayer, counter_names
from repro.core.layers.blocks import BlockCacheLayer
from repro.core.layers.degraded import DegradedModeLayer
from repro.core.layers.filechannel import FileChannelLayer
from repro.core.layers.peers import PeerCacheLayer
from repro.core.layers.readahead import ReadaheadLayer
from repro.core.layers.terminal import UpstreamRpcLayer
from repro.core.layers.zeromap import ZeroMapLayer

__all__ = [
    "LEGACY_COUNTERS",
    "ProxyStack",
    "ProxyStats",
    "disable_stack_reports",
    "enable_stack_reports",
    "format_cascade_reports",
    "format_stack_reports",
    "registered_stacks",
    "standard_layers",
]

#: Every counter of the pre-refactor monolithic ``ProxyStats``.  The
#: aggregated view guarantees all of them stay readable (and writable)
#: whatever layers a stack composes; counters whose owning layer is
#: absent read as zero.
LEGACY_COUNTERS = (
    "requests", "forwarded", "zero_filtered_reads",
    "block_cache_hits", "block_cache_misses", "file_cache_reads",
    "absorbed_writes", "absorbed_commits", "writebacks", "channel_fetches",
    "coalesced_misses", "prefetch_issued", "prefetch_used",
    "prefetch_failed", "readahead_windows",
    "merged_write_rpcs", "merged_write_blocks",
    "degraded_reads", "degraded_read_errors", "degraded_write_rejects",
    "high_water_writebacks", "proxy_crashes", "recovered_dirty_blocks",
)


@dataclass
class FrontDoorStats:
    requests: int = 0       # RPC calls that entered the stack


class _DetachedCounters:
    """Zero-initialised holders for legacy counters whose owning layer
    is absent from this stack (e.g. prefetch counters on a cacheless
    forwarding proxy)."""

    def __init__(self, names):
        for name in names:
            setattr(self, name, 0)


class ProxyStats:
    """The legacy flat counter surface, aggregated over per-layer bags.

    Reads and writes route to the layer that owns the counter; a
    counter owned by several layers (``absorbed_writes`` belongs to
    both the file-channel and block-cache layers) reads as the sum and
    writes against the first owner.  ``reset()`` zeroes every bag.
    """

    def __init__(self, bags):
        object.__setattr__(self, "_bags", list(bags))
        routes: Dict[str, list] = {}
        for bag in bags:
            for name in counter_names(bag):
                routes.setdefault(name, []).append(bag)
        object.__setattr__(self, "_routes", routes)

    def __getattr__(self, name):
        routes = object.__getattribute__(self, "_routes")
        bags = routes.get(name)
        if bags is None:
            raise AttributeError(f"unknown proxy counter {name!r}")
        if len(bags) == 1:
            return getattr(bags[0], name)
        return sum(getattr(bag, name) for bag in bags)

    def __setattr__(self, name, value):
        bags = self._routes.get(name)
        if bags is None:
            raise AttributeError(f"unknown proxy counter {name!r}")
        if len(bags) > 1:
            value -= sum(getattr(bag, name) for bag in bags[1:])
        setattr(bags[0], name, value)

    def reset(self) -> None:
        """Zero every counter (mirrors :meth:`ProxyBlockCache.reset_stats`).

        Benchmarks separate a warm-up phase from the measured phase by
        resetting the counters instead of rebuilding the session."""
        for name, bags in self._routes.items():
            for bag in bags:
                setattr(bag, name, 0)

    @property
    def prefetch_wasted(self) -> int:
        """Prefetched blocks never consumed by a demand read (so far)."""
        return max(self.prefetch_issued - self.prefetch_used
                   - self.prefetch_failed, 0)

    @property
    def prefetch_accuracy(self) -> float:
        """used / issued — the fraction of readahead that paid off."""
        if self.prefetch_issued == 0:
            return 0.0
        return self.prefetch_used / self.prefetch_issued

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={getattr(self, name)}"
                         for name in LEGACY_COUNTERS)
        return f"ProxyStats({body})"


def standard_layers(block_cache=None, channel=None,
                    peer_member=None, checksum=None,
                    origin_selector=None,
                    channel_selector=None) -> List[ProxyLayer]:
    """The canonical GVFS composition: attr patching and meta-data on
    top, optional end-to-end checksum recording/verification, optional
    file-channel and block-cache/readahead caching in the middle, the
    fault guard, the optional peer-cache lookup, and the upstream hop
    at the bottom.

    The peer layer sits below the fault guard so both demand misses
    (``guarded_fetch`` re-enters below the cache) and readahead window
    fetches consult same-site peers before crossing the WAN.  The
    checksum layer (a pre-built
    :class:`~repro.core.layers.checksum.ChecksumLayer`) sits *above*
    every cache, so a verify instance checks blocks however they got
    here — local frame, cascade level, peer borrow, or demotion.
    """
    layers: List[ProxyLayer] = [AttrPatchLayer(), ZeroMapLayer()]
    if checksum is not None:
        layers.append(checksum)
    if channel is not None:
        layers.append(FileChannelLayer(channel, selector=channel_selector))
    if block_cache is not None:
        layers.append(BlockCacheLayer(block_cache))
        layers.append(ReadaheadLayer())
    layers.append(DegradedModeLayer())
    if peer_member is not None:
        layers.append(PeerCacheLayer(peer_member))
    layers.append(UpstreamRpcLayer(selector=origin_selector))
    return layers


class ProxyStack:
    """One user-level file system proxy, composed from layers."""

    #: CPU cost of proxy request processing (user-level RPC dispatch).
    OP_CPU = 30e-6

    def __init__(self, env, upstream, config: ProxyConfig = ProxyConfig(),
                 layers: Optional[List[ProxyLayer]] = None):
        self.env = env
        self.upstream = upstream
        self.config = config
        self.layers: List[ProxyLayer] = list(
            standard_layers() if layers is None else layers)
        if not self.layers:
            raise ValueError("a proxy stack needs at least one layer")
        # Observers of the incoming request stream (access profilers,
        # middleware telemetry).  Called synchronously per request.
        self.read_observers: List = []
        self.front_stats = FrontDoorStats()
        self._roles: Dict[str, ProxyLayer] = {}
        below: Optional[ProxyLayer] = None
        for layer in reversed(self.layers):
            layer.attach(self, below)
            self._roles.setdefault(layer.ROLE, layer)
            below = layer
        self.head: ProxyLayer = below
        bags = [self.front_stats] + [
            layer.stats for layer in self.layers if layer.stats is not None]
        covered = {name for bag in bags for name in counter_names(bag)}
        detached = [n for n in LEGACY_COUNTERS if n not in covered]
        if detached:
            bags.append(_DetachedCounters(detached))
        self.stats = ProxyStats(bags)
        _register_stack(self)

    # ----------------------------------------------------------- layer lookup
    def layer(self, role: str) -> Optional[ProxyLayer]:
        """The first layer with ``ROLE == role``, or None."""
        return self._roles.get(role)

    # ----------------------------------------------------------- the cascade
    def upstream_stack(self) -> Optional["ProxyStack"]:
        """The next proxy stack up the cascade, if this stack's upstream
        RPC client points at one (cascading is stack composition: a
        second-level cache, an N-th level, the server-side forwarding
        proxy).  None when the upstream is a kernel NFS server."""
        handler = getattr(self.upstream, "handler", None)
        return handler if isinstance(handler, ProxyStack) else None

    def cascade_stacks(self) -> List["ProxyStack"]:
        """Every stack from here to the origin, client-ward first
        (``[self]`` when nothing proxies above the upstream server)."""
        stacks: List[ProxyStack] = []
        stack: Optional[ProxyStack] = self
        while stack is not None and stack not in stacks:
            stacks.append(stack)
            stack = stack.upstream_stack()
        return stacks

    @property
    def block_cache(self):
        layer = self._roles.get("block-cache")
        return layer.block_cache if layer is not None else None

    @property
    def channel(self):
        layer = self._roles.get("file-channel")
        return layer.channel if layer is not None else None

    # ------------------------------------------------------ cross-layer state
    def block_size(self) -> int:
        return self.config.cache.block_size if self.config.cache else 8192

    @property
    def names(self) -> Dict:
        layer = self._roles.get("attr-patch")
        return layer.names if layer is not None else {}

    def local_size(self, fh) -> int:
        layer = self._roles.get("attr-patch")
        return layer.local_size.get(fh, 0) if layer is not None else 0

    def bump_local_size(self, fh, end: int) -> None:
        layer = self._roles.get("attr-patch")
        if layer is not None:
            layer.bump_local_size(fh, end)

    def patched_attrs(self, fh, attrs):
        layer = self._roles.get("attr-patch")
        return layer.patched_attrs(fh, attrs) if layer is not None else attrs

    def cached_meta(self, fh):
        """The meta-data the zero-map layer resolved for ``fh`` earlier
        in the current request (None when absent or unresolved)."""
        layer = self._roles.get("metadata")
        return layer.cache.get(fh) if layer is not None else None

    # ------------------------------------------------------------- front door
    def handle(self, request) -> Generator:
        """Process: service one RPC call (the server face of the proxy)."""
        self.front_stats.requests += 1
        yield self.env.timeout(self.OP_CPU)
        if self.config.identity is not None:
            request = request.replace(credentials=self.config.identity)
        for observer in self.read_observers:
            observer(request)
        return (yield from self.head.handle(request))

    # -------------------------------------------------- middleware operations
    #
    # Lifecycle operations walk the layers bottom-up (upstream-most
    # first): flush pushes dirty blocks (and their COMMITs) upstream
    # before dirty whole files upload; crash releases block-fetch gates
    # before file-fetch gates.  This matches the monolithic proxy's
    # event ordering exactly.

    def flush(self) -> Generator:
        """Process: middleware-signalled write-back of all dirty state.

        Dirty blocks go upstream in *coalesced runs*: adjacent blocks of
        one file merged into a single large WRITE RPC (up to
        ``write_coalesce_bytes``), with ``write_pipeline_depth`` RPCs in
        flight.  Each touched file is then COMMITted and dirty
        file-cache entries upload through the channel — the paper's
        session-end consistency point (O/S signal interface).
        """
        for layer in reversed(self.layers):
            yield from layer.flush()
        yield self.env.timeout(0)

    def crash(self) -> None:
        """Simulate proxy process death: all in-memory state is lost.

        Cached block *data* survives in the bank files on the host disk,
        but the tags mapping frames to blocks do not — without the
        dirty-frame journal, absorbed writes awaiting write-back are
        gone.  In-flight fetch gates are released so concurrent READs
        retry instead of wedging (their refetch simply misses).
        """
        for layer in reversed(self.layers):
            layer.crash()

    def recover(self) -> Generator:
        """Process: restart after :meth:`crash`, replaying the journal.

        Rebuilds the dirty-frame set from the persistent journal (when
        the cache was configured with one) so the pending write-back is
        not lost; a subsequent :meth:`flush` pushes it upstream.
        Returns the recovered block keys.
        """
        recovered: List[Tuple] = []
        for layer in reversed(self.layers):
            got = yield from layer.recover()
            if got:
                recovered.extend(got)
        yield self.env.timeout(0)
        return recovered

    def quiesce(self) -> Generator:
        """Process: wait out every in-flight fetch (demand readahead
        block fetches *and* file-channel fetches) — cold-cache setup
        must not race a late insert."""
        for layer in reversed(self.layers):
            yield from layer.quiesce()
        yield self.env.timeout(0)

    def dirty_state(self) -> Tuple[int, int]:
        """(dirty blocks, dirty whole files) awaiting write-back."""
        block = self._roles.get("block-cache")
        channel = self._roles.get("file-channel")
        return (block.dirty_blocks() if block is not None else 0,
                channel.dirty_files() if channel is not None else 0)

    def invalidate_caches(self) -> None:
        """Cold-cache setup: drop cached blocks/files and learned metadata.

        Dirty state must have been flushed first.  Every layer's guard
        runs before any layer mutates, so a refusal leaves the stack
        untouched.
        """
        blocks, files = self.dirty_state()
        if blocks or files:
            raise RuntimeError("invalidate with dirty cached data; flush first")
        for layer in self.layers:
            reason = layer.invalidate_guard()
            if reason:
                raise RuntimeError(reason)
        for layer in reversed(self.layers):
            layer.invalidate()

    # ------------------------------------------------------------------ stats
    def reset(self, deep: bool = True) -> None:
        """Zero the front door and every layer uniformly — including
        component counters layers own (block cache, file channel).

        ``deep`` (the default) resets *every level of the cascade* this
        stack heads — intermediate cache levels and the server-side
        forwarding proxy included — so a benchmark's warm-up/measure
        split never leaks warm-up counters through a deeper level.
        ``deep=False`` resets only this stack.
        """
        stacks = self.cascade_stacks() if deep else [self]
        for stack in stacks:
            stack.front_stats.requests = 0
            for layer in stack.layers:
                layer.reset()

    def stats_snapshot(self, deep: bool = False) -> Dict[str, Dict[str, int]]:
        """Per-layer counters, keyed by layer role, front door first.

        With ``deep=True`` the snapshot covers every level of the
        cascade: each upstream proxy stack's snapshot nests under an
        ``"upstream"`` key (name plus its own per-layer counters), so a
        cascade's full cache behaviour reads out of one call.
        """
        snap: Dict = {"front": {"requests": self.front_stats.requests}}
        for layer in self.layers:
            snap[layer.ROLE] = layer.stats_snapshot()
        if deep:
            up = self.upstream_stack()
            if up is not None:
                snap["upstream"] = {"name": up.config.name,
                                    "layers": up.stats_snapshot(deep=True)}
        return snap

    def hit_ratio(self) -> Optional[float]:
        """This stack's block-cache hit ratio (None without a cache or
        before any block traffic)."""
        layer = self._roles.get("block-cache")
        if layer is None:
            return None
        hits = layer.stats.block_cache_hits
        misses = layer.stats.block_cache_misses
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def format_stack_report(self) -> str:
        """Human-readable per-layer counter report."""
        lines = [f"proxy stack {self.config.name}"]
        for role, counters in self.stats_snapshot().items():
            shown = {k: v for k, v in counters.items() if v}
            if shown:
                body = "  ".join(f"{k}={v}" for k, v in shown.items())
            else:
                body = "(idle)"
            lines.append(f"  {role:<14} {body}")
        return "\n".join(lines)

    def format_cascade_report(self) -> str:
        """Aggregated per-level report for the cascade this stack heads:
        one line per level with its block-cache hit/miss/ratio and
        forwarded request count."""
        lines = [f"cascade from {self.config.name} "
                 f"(depth {len(self.cascade_stacks())})"]
        for i, stack in enumerate(self.cascade_stacks(), start=1):
            layer = stack._roles.get("block-cache")
            if layer is None:
                body = (f"requests={stack.front_stats.requests} "
                        "(no block cache)")
            else:
                hits = layer.stats.block_cache_hits
                misses = layer.stats.block_cache_misses
                ratio = hits / (hits + misses) if hits + misses else 0.0
                body = (f"requests={stack.front_stats.requests} "
                        f"hits={hits} misses={misses} "
                        f"hit_ratio={ratio:.3f} "
                        f"eviction={layer.block_cache.policy.name}")
            lines.append(f"  L{i} {stack.config.name:<20} {body}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Stack report registry (the CLI's --stack-report flag)
# --------------------------------------------------------------------------

_report_registry: Optional[List[ProxyStack]] = None


def enable_stack_reports() -> None:
    """Start recording every stack built from now on, so the CLI can
    print per-layer reports after a run.  Off by default: sessions are
    built in bulk by benchmarks and must not leak."""
    global _report_registry
    _report_registry = []


def disable_stack_reports() -> None:
    global _report_registry
    _report_registry = None


def _register_stack(stack: ProxyStack) -> None:
    if _report_registry is not None:
        _report_registry.append(stack)


def registered_stacks() -> List[ProxyStack]:
    return list(_report_registry or ())


def format_stack_reports() -> str:
    """Reports for every recorded stack that saw traffic."""
    reports = [stack.format_stack_report() for stack in registered_stacks()
               if stack.front_stats.requests]
    return "\n\n".join(reports)


def format_cascade_reports() -> str:
    """Aggregated cascade reports, one per recorded cascade head.

    A *head* is a stack that saw traffic, proxies through at least one
    further stack, and is not itself an upstream level of another
    recorded stack — i.e. the client proxy of each session chain.
    """
    stacks = [s for s in registered_stacks() if s.front_stats.requests]
    upstream_ids = {id(level) for s in stacks
                    for level in s.cascade_stacks()[1:]}
    heads = [s for s in stacks
             if id(s) not in upstream_ids and s.upstream_stack() is not None]
    return "\n\n".join(s.format_cascade_report() for s in heads)
