"""The uniform layer interface of the composable GVFS proxy stack.

Each of the paper's user-level extensions — attribute patching,
meta-data interpretation, the file-based data channel, the block-based
disk cache, readahead, degraded-mode fault handling — is one
:class:`ProxyLayer` in a :class:`~repro.core.layers.stack.ProxyStack`.
A layer sees the same NFS RPC protocol on both faces: ``handle`` takes
a request and returns a reply, either served locally or delegated to
``self.next`` (the layer below it, closer to the upstream server).

The layer contract:

* ``handle(request)`` is a simulation *process* (generator).  The
  default implementation is a pure pass-through — ``yield from
  self.next.handle(request)`` — which adds **zero** simulation events,
  so interposing a pass-through layer never perturbs timing.
* The lifecycle hooks mirror the middleware operations of the
  monolithic proxy: ``flush`` (write dirty state upstream), ``crash``
  (synchronous: lose in-memory state, release any gates), ``recover``
  (process: rebuild state from persistent journals), ``quiesce``
  (process: wait out in-flight fetches), and ``invalidate`` (drop
  clean cached state).  ``invalidate_guard`` lets a layer veto an
  invalidation that would race in-flight work.  Defaults are no-ops
  that add no events.
* Per-layer counters live in a small dataclass named by the class
  attribute ``Stats``; the stack aggregates them into the legacy flat
  :class:`~repro.core.layers.stack.ProxyStats` view and into
  ``stats_snapshot()`` / ``format_stack_report()``.
* ``inject_fault(kind, arg)`` is the **fault port**: the chaos
  machinery (:mod:`repro.sim.faults`, :mod:`repro.sim.chaos`) strikes
  a named layer through it.  Layers opt in per kind; the base class
  implements the per-RPC-procedure kinds (blackhole / delay /
  duplicate / restore) for subclasses that set ``FAULT_PROCS`` and
  call ``apply_proc_faults`` from their ``handle``.  A layer with no
  armed faults adds **zero** events — ``proc_faults`` stays ``None``
  until the first injection, so the happy path is one attribute test.

Layers are wired by :meth:`ProxyStack.__init__`, which calls
``attach(stack, next_layer)``; ``self.stack`` gives access to shared
session state (the upstream RPC client, the live ``ProxyConfig``, and
cross-layer helpers such as the cached meta-data map).
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Dict, Generator, Optional

__all__ = ["ProxyLayer", "counter_names"]


def counter_names(bag) -> list:
    """Counter field names of a stats bag (dataclass or plain object)."""
    if is_dataclass(bag):
        return [f.name for f in fields(bag)]
    return [name for name in vars(bag) if not name.startswith("_")]


class ProxyLayer:
    """One composable extension in a GVFS proxy stack."""

    #: Role name used for layer lookup and in stack reports.
    ROLE: str = "layer"
    #: Dataclass of this layer's counters (None = the layer keeps none).
    Stats: Optional[type] = None
    #: Subclasses that route RPCs through ``apply_proc_faults`` set this
    #: so the base fault port accepts the per-proc fault kinds.
    FAULT_PROCS: bool = False

    def __init__(self):
        self.stack = None
        self.next: Optional[ProxyLayer] = None
        self.stats = self.Stats() if self.Stats is not None else None
        # Per-proc fault state, armed lazily by inject_fault: proc name
        # -> {"gate": Event|None, "delay": float, "duplicate": bool}.
        self.proc_faults: Optional[Dict[str, dict]] = None

    def attach(self, stack, next_layer: Optional["ProxyLayer"]) -> None:
        """Wire this layer into ``stack`` above ``next_layer``."""
        self.stack = stack
        self.next = next_layer

    # ---------------------------------------------------------- conveniences
    @property
    def env(self):
        return self.stack.env

    @property
    def config(self):
        """The stack's live config (re-read on every access: middleware
        may replace it, e.g. to arm a dirty high-water mark)."""
        return self.stack.config

    # ------------------------------------------------------------ the handle
    def handle(self, request) -> Generator:
        """Process: service one RPC call or delegate it downward.

        The default pass-through adds no simulation events.
        """
        return (yield from self.next.handle(request))

    # ------------------------------------------------------------- fault port
    def inject_fault(self, kind: str, arg=None) -> None:
        """Synchronous: apply a layer-scoped fault (or its repair).

        The base class implements the per-proc kinds for layers that
        set ``FAULT_PROCS``; subclasses extend this for kinds that only
        make sense against their own state (e.g. ``corrupt-frame`` on a
        block cache) and delegate unknown kinds back here.
        """
        if not self.FAULT_PROCS:
            raise ValueError(
                f"layer {self.ROLE!r} accepts no fault kind {kind!r}")
        if kind == "blackhole-proc":
            fault = self._proc_fault(str(arg))
            if fault.get("gate") is None:
                fault["gate"] = self.env.event()
        elif kind == "restore-proc":
            self._clear_proc_fault(str(arg))
        elif kind == "delay-proc":
            proc, delay = arg
            self._proc_fault(str(proc))["delay"] = float(delay)
        elif kind == "duplicate-proc":
            self._proc_fault(str(arg))["duplicate"] = True
        else:
            raise ValueError(
                f"layer {self.ROLE!r} accepts no fault kind {kind!r}")

    def _proc_fault(self, proc: str) -> dict:
        if self.proc_faults is None:
            self.proc_faults = {}
        return self.proc_faults.setdefault(proc, {})

    def _clear_proc_fault(self, proc: str) -> None:
        if self.proc_faults is None:
            return
        fault = self.proc_faults.pop(proc, None)
        if fault:
            gate = fault.get("gate")
            if gate is not None and not gate.triggered:
                gate.succeed()
        if not self.proc_faults:
            self.proc_faults = None

    def apply_proc_faults(self, request) -> Generator:
        """Process: park, delay, or flag duplication for ``request``.

        Returns True when the caller should deliver the request twice
        (the duplicate flag is one-shot).  A blackholed proc parks here
        until ``restore-proc`` releases the gate — from the remote
        caller's perspective the RPC has vanished, and its own timeout
        ladder decides when to give up.  With no armed faults this is
        one dict probe and zero events.
        """
        fault = (self.proc_faults.get(request.proc.name)
                 if self.proc_faults else None)
        if fault is None:
            return False
        gate = fault.get("gate")
        if gate is not None:
            self._bump_fault("procs_blackholed")
            yield gate
        delay = fault.get("delay")
        if delay:
            self._bump_fault("procs_delayed")
            yield self.env.timeout(delay)
        if fault.get("duplicate"):
            fault["duplicate"] = False
            self._bump_fault("procs_duplicated")
            return True
        return False

    def _bump_fault(self, name: str) -> None:
        if self.stats is not None and hasattr(self.stats, name):
            setattr(self.stats, name, getattr(self.stats, name) + 1)

    # -------------------------------------------------------------- lifecycle
    def flush(self) -> Generator:
        """Process: push this layer's dirty state upstream."""
        return
        yield  # pragma: no cover - makes the no-op a generator

    def crash(self) -> None:
        """Synchronous: the proxy process died — drop in-memory state
        and release any gates so waiters retry instead of wedging."""

    def recover(self) -> Generator:
        """Process: restart after :meth:`crash`; may return recovered
        state (lists from several layers are concatenated by the stack)."""
        return None
        yield  # pragma: no cover - makes the no-op a generator

    def quiesce(self) -> Generator:
        """Process: wait out this layer's in-flight fetches."""
        return
        yield  # pragma: no cover - makes the no-op a generator

    def invalidate_guard(self) -> Optional[str]:
        """Reason this layer cannot be invalidated right now, or None.

        The stack collects every guard *before* mutating any layer, so a
        refused invalidation leaves the whole stack untouched.
        """
        return None

    def invalidate(self) -> None:
        """Synchronous: drop clean cached state (cold-cache setup)."""

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict[str, int]:
        if self.stats is None:
            return {}
        return {name: getattr(self.stats, name)
                for name in counter_names(self.stats)}

    def reset(self) -> None:
        """Zero this layer's counters (and any component counters a
        subclass owns, e.g. the block cache's hit/miss counts)."""
        if self.stats is not None:
            for name in counter_names(self.stats):
                setattr(self.stats, name, 0)
