"""Pluggable victim-selection policies for the proxy block cache.

The paper stresses that proxies are created *per user / per
application* and can therefore carry customized cache policies
(§3.2.1).  :class:`~repro.core.blockcache.ProxyBlockCache` pins the
geometry (banks, sets, associativity) but delegates *which frame of a
full set to reclaim* to an :class:`EvictionPolicy`, so every proxy in
a cascade — the client proxy, a rack-level cache, a site-level cache —
can run a different replacement policy without touching the cache or
the layer stack.

A policy sees one cache *set* at a time (victim selection is always
within the set a block hashes to) and keeps its per-frame state on the
bank itself:

* ``bank.lru[frame]`` — the recency tick every policy maintains (the
  cache also uses it for journal-recovery ordering);
* ``bank.aux[frame]`` — one extra integer per frame, allocated only
  when the policy asks for it (LFU reference counts, 2Q queue tags).

The contract mirrors exactly the three points the cache already
touches frame recency at:

* ``on_hit(bank, frame, tick)`` — a lookup served from ``frame``;
* ``on_fill(bank, frame, tick, new)`` — a placement into ``frame``
  (``new`` is False when the frame already held the same block);
* ``victim(bank, base, associativity)`` — pick the frame to reclaim
  among the *full* set ``[base, base + associativity)``; free frames
  are taken by the cache before the policy is ever consulted.

The default :class:`LruInSet` reproduces the pre-strategy inline
behaviour bit-for-bit (least recent tick, lowest frame index on ties),
so existing golden simulated timings are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

__all__ = ["POLICIES", "EvictionPolicy", "LfuInSet", "LruInSet",
           "TwoQInSet", "make_policy"]


class EvictionPolicy:
    """Strategy interface for within-set victim selection."""

    #: Registry key and the name shown in stack/cascade reports.
    name = "policy"
    #: Whether banks must carry the per-frame ``aux`` integer array.
    uses_aux = False

    def new_bank(self, n_frames: int) -> Optional[List[int]]:
        """Per-frame auxiliary state for a freshly created bank."""
        return [0] * n_frames if self.uses_aux else None

    def clear_bank(self, bank) -> None:
        """Reset auxiliary state when the bank's tags drop (cache
        invalidation or proxy crash).  ``bank.lru`` is reset by the
        cache itself."""
        if bank.aux is not None:
            bank.aux[:] = [0] * len(bank.aux)

    def on_hit(self, bank, frame: int, tick: int) -> None:
        bank.lru[frame] = tick

    def on_fill(self, bank, frame: int, tick: int, new: bool) -> None:
        bank.lru[frame] = tick

    def victim(self, bank, base: int, associativity: int) -> int:
        raise NotImplementedError


class LruInSet(EvictionPolicy):
    """Least-recently-used within the set — the paper's (and the
    pre-strategy cache's) default.  Ties break on the lowest frame
    index, matching ``min`` over the tick array."""

    name = "lru"

    def victim(self, bank, base: int, associativity: int) -> int:
        lru = bank.lru
        return min(range(base, base + associativity), key=lru.__getitem__)


class LfuInSet(EvictionPolicy):
    """Least-frequently-used within the set, LRU tie-break.

    ``aux`` counts references since the frame was last (re)filled with
    a new block; a refill with the same block keeps accumulating, so a
    hot block rewritten in place is not demoted.
    """

    name = "lfu"
    uses_aux = True

    def on_hit(self, bank, frame: int, tick: int) -> None:
        bank.lru[frame] = tick
        bank.aux[frame] += 1

    def on_fill(self, bank, frame: int, tick: int, new: bool) -> None:
        bank.lru[frame] = tick
        if new:
            bank.aux[frame] = 1
        else:
            bank.aux[frame] += 1

    def victim(self, bank, base: int, associativity: int) -> int:
        aux, lru = bank.aux, bank.lru
        return min(range(base, base + associativity),
                   key=lambda i: (aux[i], lru[i]))


class TwoQInSet(EvictionPolicy):
    """2Q adapted to a set-associative cache (scan resistance).

    The classic 2Q splits the cache into a probationary A1 queue for
    first-time references and a protected Am queue for re-referenced
    blocks.  Within one set, ``aux`` is the queue tag: a filled frame
    starts probationary (0) and is promoted (1) on its first hit.
    Victim selection reclaims the LRU *probationary* frame first, so a
    one-pass streaming scan recycles its own frames instead of evicting
    the re-referenced working set; only when the whole set is protected
    does plain LRU apply.
    """

    name = "2q"
    uses_aux = True

    def on_hit(self, bank, frame: int, tick: int) -> None:
        bank.lru[frame] = tick
        bank.aux[frame] = 1

    def on_fill(self, bank, frame: int, tick: int, new: bool) -> None:
        bank.lru[frame] = tick
        if new:
            bank.aux[frame] = 0

    def victim(self, bank, base: int, associativity: int) -> int:
        aux, lru = bank.aux, bank.lru
        frames = range(base, base + associativity)
        probation = [i for i in frames if not aux[i]]
        return min(probation or frames, key=lru.__getitem__)


POLICIES: Dict[str, Type[EvictionPolicy]] = {
    LruInSet.name: LruInSet,
    LfuInSet.name: LfuInSet,
    TwoQInSet.name: TwoQInSet,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a registered policy by name (``lru``/``lfu``/``2q``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown eviction policy {name!r}; "
                         f"choose from {sorted(POLICIES)}") from None
