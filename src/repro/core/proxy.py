"""The GVFS user-level proxy (§3.1–3.2).

A proxy *receives* NFS RPC calls (like a server) and *issues* them
(like a client), so proxies cascade into multi-level hierarchies.  This
implementation adds, per the paper's extensions:

* credential remapping (logical user accounts / short-lived identities),
* the block-based disk cache with write-back or write-through policy,
* meta-data handling: zero-filled blocks answered locally, whole-file
  fetches routed through the file-based data channel into the
  file-based cache (heterogeneous caching),
* middleware-driven consistency: client COMMITs can be absorbed; the
  middleware signals write-back/flush explicitly
  (:meth:`GvfsProxy.flush`), mirroring the O/S-signal interface.

Everything is transparent to the kernel client above and the server
below: requests and replies are ordinary protocol messages.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.blockcache import ProxyBlockCache
from repro.core.channel import FileChannel
from repro.core.config import CachePolicy, ProxyConfig
from repro.core.metadata import FileMetadata, METADATA_SUFFIX, metadata_name_for
from repro.nfs.protocol import (
    Fattr,
    FileHandle,
    NfsProc,
    NfsReply,
    NfsRequest,
    NfsStatus,
)
from repro.nfs.rpc import RpcClient, RpcTimeout
from repro.sim import AllOf, Environment

__all__ = ["GvfsProxy", "ProxyStats"]


@dataclass
class ProxyStats:
    """Counters a session reports to the middleware."""

    requests: int = 0
    forwarded: int = 0
    zero_filtered_reads: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    file_cache_reads: int = 0
    absorbed_writes: int = 0
    absorbed_commits: int = 0
    writebacks: int = 0
    channel_fetches: int = 0
    # Pipelined I/O: miss coalescing, readahead, coalesced write-back.
    coalesced_misses: int = 0       # READs that waited on an in-flight fetch
    prefetch_issued: int = 0        # blocks scheduled by readahead/profiles
    prefetch_used: int = 0          # prefetched blocks later hit by demand
    prefetch_failed: int = 0        # prefetches that returned no data
    readahead_windows: int = 0      # window launches by the run detector
    merged_write_rpcs: int = 0      # coalesced upstream WRITEs during flush
    merged_write_blocks: int = 0    # blocks those WRITEs carried
    # Robustness: degraded mode and crash recovery.
    degraded_reads: int = 0         # cache hits served while upstream down
    degraded_read_errors: int = 0   # misses that failed while upstream down
    degraded_write_rejects: int = 0 # writes bounced at the dirty high water
    high_water_writebacks: int = 0  # synchronous drains forced by the limit
    proxy_crashes: int = 0
    recovered_dirty_blocks: int = 0 # dirty frames rebuilt from the journal

    def reset(self) -> None:
        """Zero every counter (mirrors :meth:`ProxyBlockCache.reset_stats`).

        Benchmarks separate a warm-up phase from the measured phase by
        resetting the counters instead of rebuilding the session."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    @property
    def prefetch_wasted(self) -> int:
        """Prefetched blocks never consumed by a demand read (so far)."""
        return max(self.prefetch_issued - self.prefetch_used
                   - self.prefetch_failed, 0)

    @property
    def prefetch_accuracy(self) -> float:
        """used / issued — the fraction of readahead that paid off."""
        if self.prefetch_issued == 0:
            return 0.0
        return self.prefetch_used / self.prefetch_issued


class GvfsProxy:
    """One user-level file system proxy in a GVFS session chain."""

    #: CPU cost of proxy request processing (user-level RPC dispatch).
    OP_CPU = 30e-6

    def __init__(self, env: Environment, upstream: RpcClient,
                 config: ProxyConfig = ProxyConfig(),
                 block_cache: Optional[ProxyBlockCache] = None,
                 channel: Optional[FileChannel] = None):
        if config.cache is not None and block_cache is None:
            raise ValueError("config requests a cache but none was attached")
        self.env = env
        self.upstream = upstream
        self.config = config
        self.block_cache = block_cache
        self.channel = channel
        self.stats = ProxyStats()
        # fh -> (parent dir fh, leaf name), learned from LOOKUP traffic;
        # needed to find a file's meta-data in its directory.
        self._names: Dict[FileHandle, Tuple[FileHandle, str]] = {}
        # fh -> parsed metadata (None = known absent).
        self._metadata: Dict[FileHandle, Optional[FileMetadata]] = {}
        # fh -> in-progress channel fetch gate (concurrent READs wait).
        self._fetching: Dict[FileHandle, object] = {}
        # (fh, block) -> in-progress block fetch gate: N concurrent READs
        # of one uncached block coalesce onto a single upstream RPC.
        self._block_gates: Dict[Tuple[FileHandle, int], object] = {}
        # Blocks installed by readahead and not yet demanded (accuracy).
        self._prefetched: set = set()
        # Sequential-run detector state, per file handle.
        self._last_miss: Dict[FileHandle, int] = {}
        self._miss_run: Dict[FileHandle, int] = {}
        self._ra_frontier: Dict[FileHandle, int] = {}
        # fh -> size as locally extended by absorbed writes.
        self._local_size: Dict[FileHandle, int] = {}
        # Observers of the incoming request stream (access profilers,
        # middleware telemetry).  Called synchronously per request.
        self.read_observers: List = []

    # ------------------------------------------------------------------ utils
    @property
    def _write_back(self) -> bool:
        return (self.config.cache is not None
                and self.config.cache.policy is CachePolicy.WRITE_BACK)

    def _bs(self) -> int:
        return self.config.cache.block_size if self.config.cache else 8192

    def _rewrite(self, request: NfsRequest) -> NfsRequest:
        if self.config.identity is not None:
            return request.replace(credentials=self.config.identity)
        return request

    def _forward(self, request: NfsRequest) -> Generator:
        self.stats.forwarded += 1
        reply = yield from self.upstream.call(request)
        return reply

    def _upstream_down(self) -> bool:
        """True when the upstream is known-unreachable (breaker open).

        Pure flag check: the proxy only *knows* the upstream is down
        when its RPC client carries a circuit breaker that has tripped.
        """
        breaker = getattr(self.upstream, "breaker", None)
        return breaker is not None and breaker.currently_open(self.env.now)

    def _patched_attrs(self, fh: FileHandle,
                       attrs: Optional[Fattr]) -> Optional[Fattr]:
        """Adjust server attrs for size growth held in the write-back cache."""
        if attrs is None:
            return None
        local = self._local_size.get(fh)
        if local is not None and local > attrs.size:
            from dataclasses import replace
            return replace(attrs, size=local)
        return attrs

    # --------------------------------------------------------------- metadata
    def _metadata_for(self, fh: FileHandle) -> Generator:
        """Process: find (and cache) the meta-data associated with ``fh``."""
        if not self.config.metadata:
            return None
        if fh in self._metadata:
            return self._metadata[fh]
        name_info = self._names.get(fh)
        if name_info is None:
            # Never saw a LOOKUP for this handle; cannot locate meta-data.
            self._metadata[fh] = None
            return None
        dir_fh, name = name_info
        if name.startswith(".") and name.endswith(METADATA_SUFFIX):
            self._metadata[fh] = None
            return None
        look = yield from self.upstream.call(NfsRequest(
            NfsProc.LOOKUP, fh=dir_fh, name=metadata_name_for(name)))
        if not look.ok:
            self._metadata[fh] = None
            return None
        raw = bytearray()
        offset = 0
        while True:
            reply = yield from self.upstream.call(NfsRequest(
                NfsProc.READ, fh=look.fh, offset=offset, count=self._bs()))
            if not reply.ok or not reply.data:
                break
            raw += reply.data
            offset += len(reply.data)
            if reply.eof:
                break
        try:
            meta = FileMetadata.from_bytes(bytes(raw))
        except (ValueError, KeyError):
            meta = None
        self._metadata[fh] = meta
        return meta

    def _ensure_file_cached(self, fh: FileHandle) -> Generator:
        """Process: run the file channel for ``fh`` exactly once."""
        assert self.channel is not None
        if fh in self.channel.file_cache:
            return
        gate = self._fetching.get(fh)
        if gate is not None:
            yield gate  # someone else is already fetching
            return
        gate = self.env.event()
        self._fetching[fh] = gate
        try:
            yield from self.channel.fetch(fh)
            self.stats.channel_fetches += 1
        finally:
            if self._fetching.get(fh) is gate:
                del self._fetching[fh]
            if not gate.triggered:
                gate.succeed()

    # ----------------------------------------------------------------- handle
    def handle(self, request: NfsRequest) -> Generator:
        """Process: service one RPC call (the server face of the proxy)."""
        self.stats.requests += 1
        yield self.env.timeout(self.OP_CPU)
        request = self._rewrite(request)
        for observer in self.read_observers:
            observer(request)
        proc = request.proc

        if proc is NfsProc.LOOKUP:
            reply = yield from self._forward(request)
            if reply.ok:
                self._names[reply.fh] = (request.fh, request.name)
                reply = self._patch_reply_attrs(reply)
            return reply

        if proc is NfsProc.GETATTR:
            reply = yield from self._forward(request)
            return self._patch_reply_attrs(reply) if reply.ok else reply

        if proc is NfsProc.READ:
            return (yield from self._handle_read(request))

        if proc is NfsProc.WRITE:
            return (yield from self._handle_write(request))

        if proc is NfsProc.COMMIT:
            if self._write_back and self.config.absorb_commits:
                self.stats.absorbed_commits += 1
                return NfsReply(proc, NfsStatus.OK, fh=request.fh)
            reply = yield from self._forward(request)
            return reply

        # Namespace and everything else: pass through.
        reply = yield from self._forward(request)
        if reply.ok and proc is NfsProc.CREATE:
            self._names[reply.fh] = (request.fh, request.name)
        return reply

    def _patch_reply_attrs(self, reply: NfsReply) -> NfsReply:
        patched = self._patched_attrs(reply.fh, reply.attrs)
        if patched is reply.attrs:
            return reply
        from dataclasses import replace
        return replace(reply, attrs=patched)

    # ------------------------------------------------------------------- READ
    def _handle_read(self, request: NfsRequest) -> Generator:
        fh, offset, count = request.fh, request.offset, request.count

        meta = yield from self._metadata_for(fh)
        if meta is not None:
            # Zero-filled blocks: reconstruct locally, nothing on the wire.
            if meta.covers_read(offset, count):
                end = min(offset + count, max(meta.file_size,
                                              self._local_size.get(fh, 0)))
                n = max(end - offset, 0)
                self.stats.zero_filtered_reads += 1
                return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh,
                                data=bytes(n), count=n,
                                eof=offset + n >= meta.file_size)
            # Whole-file channel: fetch once, then serve from file cache.
            if meta.wants_file_channel and self.channel is not None:
                yield from self._ensure_file_cached(fh)
                data = yield from self.channel.file_cache.read(fh, offset, count)
                if data is not None:
                    self.stats.file_cache_reads += 1
                    size = self.channel.file_cache.entry(fh).size
                    return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh,
                                    data=data, count=len(data),
                                    eof=offset + len(data) >= size)

        # File already in the file cache (e.g. after write-back install)?
        if self.channel is not None and fh in self.channel.file_cache:
            data = yield from self.channel.file_cache.read(fh, offset, count)
            if data is not None:
                self.stats.file_cache_reads += 1
                size = self.channel.file_cache.entry(fh).size
                return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh,
                                data=data, count=len(data),
                                eof=offset + len(data) >= size)

        if self.block_cache is None:
            return (yield from self._forward(request))

        # Block-based disk cache path.  The kernel client issues
        # block-aligned reads of the mount's rsize; requests that do not
        # fit one frame are forwarded untouched.
        bs = self._bs()
        idx, within = divmod(offset, bs)
        if within + count > bs:
            return (yield from self._forward(request))
        key = (fh, idx)
        while True:
            hit = yield from self.block_cache.lookup(key)
            if hit is not None:
                self.stats.block_cache_hits += 1
                if self._upstream_down():
                    # Read-only degraded mode: clean cached data keeps
                    # the VM running through the outage.
                    self.stats.degraded_reads += 1
                self._consume_prefetch(key, meta)
                data = hit.data[within:within + count]
                eof = len(hit.data) < bs and within + count >= len(hit.data)
                return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh, data=data,
                                count=len(data), eof=eof)
            gate = self._block_gates.get(key)
            if gate is None:
                break
            # Another READ (demand or readahead) already has this block
            # on the wire: wait for its frame instead of issuing a
            # second upstream RPC for the same bytes.
            self.stats.coalesced_misses += 1
            yield gate
        self.stats.block_cache_misses += 1
        self._note_demand_miss(fh, idx, meta)
        gate = self.env.event()
        self._block_gates[key] = gate
        victim = None
        try:
            upstream_req = request.replace(offset=idx * bs, count=bs)
            try:
                reply = yield from self._forward(upstream_req)
            except RpcTimeout:
                # Upstream unreachable and the block is not cached: the
                # VM gets a clean I/O error, not a hang.
                self.stats.degraded_read_errors += 1
                reply = NfsReply(NfsProc.READ, NfsStatus.IO, fh=fh)
            if reply.ok:
                victim = yield from self.block_cache.insert(
                    key, reply.data, dirty=False)
        finally:
            # Always release the gate, even when the upstream RPC fails —
            # a failed fetch must never wedge later READs of this block.
            # (A proxy crash may have already succeeded and dropped it.)
            if self._block_gates.get(key) is gate:
                del self._block_gates[key]
            if not gate.triggered:
                gate.succeed()
        if not reply.ok:
            return reply
        if victim is not None:
            yield from self._write_back_block(victim.key, victim.data)
        data = reply.data[within:within + count]
        eof = reply.eof and within + count >= len(reply.data)
        return NfsReply(NfsProc.READ, NfsStatus.OK, fh=fh, data=data,
                        count=len(data), eof=eof,
                        attrs=self._patched_attrs(fh, reply.attrs))

    # --------------------------------------------------- sequential readahead
    def _note_demand_miss(self, fh: FileHandle, idx: int,
                          meta: Optional[FileMetadata]) -> None:
        """Run detection on the demand-miss stream: K adjacent misses of
        one file arm a readahead window ahead of the reader."""
        if self.config.readahead_depth <= 0 or self.block_cache is None:
            return
        if self._last_miss.get(fh) == idx - 1:
            self._miss_run[fh] = self._miss_run.get(fh, 1) + 1
        else:
            self._miss_run[fh] = 1
            self._ra_frontier.pop(fh, None)   # a new run, a new window
        self._last_miss[fh] = idx
        if self._miss_run[fh] >= self.config.readahead_min_run:
            self._extend_readahead(fh, idx, meta)

    def _consume_prefetch(self, key: Tuple[FileHandle, int],
                          meta: Optional[FileMetadata]) -> None:
        """A demand READ hit a prefetched frame: account for it and keep
        the window ``readahead_depth`` blocks ahead of the reader."""
        if key not in self._prefetched:
            return
        self._prefetched.discard(key)
        self.stats.prefetch_used += 1
        self._extend_readahead(key[0], key[1], meta)

    def _extend_readahead(self, fh: FileHandle, idx: int,
                          meta: Optional[FileMetadata]) -> None:
        """Schedule background fetches up to ``readahead_depth`` blocks
        past demand block ``idx`` (skipping cached, in-flight and
        zero-filled blocks, and stopping at the known file size)."""
        bs = self._bs()
        lo = idx + 1
        frontier = self._ra_frontier.get(fh)
        if frontier is not None and frontier >= lo:
            lo = frontier + 1
        size_limit = None
        if meta is not None:
            size_limit = max(meta.file_size, self._local_size.get(fh, 0))
        idxs = []
        for i in range(lo, idx + 1 + self.config.readahead_depth):
            if size_limit is not None and i * bs >= size_limit:
                break
            key = (fh, i)
            if key in self._block_gates or key in self.block_cache:
                continue
            if meta is not None and meta.covers_read(i * bs, bs):
                continue   # zero-filled: answered locally, nothing to fetch
            idxs.append(i)
        if not idxs:
            return
        self._ra_frontier[fh] = idxs[-1]
        for i in idxs:
            self._block_gates[(fh, i)] = self.env.event()
        self.stats.prefetch_issued += len(idxs)
        self.stats.readahead_windows += 1
        self.env.process(self._readahead_window(fh, idxs),
                         name=f"{self.config.name}.readahead")

    def _readahead_window(self, fh: FileHandle, idxs: List[int]) -> Generator:
        """Background process: fetch a window of blocks concurrently and
        install it with one merged bank-file write per contiguous run.

        Fire-and-forget: every failure is contained (an unobserved
        failed process aborts the whole simulation) and every gate is
        released, so a failed prefetch never wedges later READs.
        """
        bs = self._bs()
        # Snapshot our gates: a proxy crash mid-window releases and
        # clears them, and recovery may install fresh gates under the
        # same keys — cleanup must only touch the ones we own.
        gates = {i: self._block_gates[(fh, i)] for i in idxs}
        fetched: Dict[int, bytes] = {}

        def fetch_one(i: int) -> Generator:
            try:
                reply = yield from self._forward(NfsRequest(
                    NfsProc.READ, fh=fh, offset=i * bs, count=bs,
                    credentials=self.config.identity or (0, 0)))
            except Exception:
                return
            if reply.ok and reply.data:
                fetched[i] = reply.data

        victims: List = []
        try:
            yield AllOf(self.env, [self.env.process(fetch_one(i))
                                   for i in idxs])
            items = []
            for i in sorted(fetched):
                key = (fh, i)
                self._prefetched.add(key)
                items.append((key, fetched[i]))
            if items:
                victims = yield from self.block_cache.insert_many(items)
        except Exception:
            pass
        finally:
            self.stats.prefetch_failed += len(idxs) - len(fetched)
            for i in idxs:
                gate = gates[i]
                if self._block_gates.get((fh, i)) is gate:
                    del self._block_gates[(fh, i)]
                if not gate.triggered:
                    gate.succeed()
        for victim in victims:
            try:
                yield from self._write_back_block(victim.key, victim.data)
            except Exception:
                pass   # contained: a prefetch must not crash the session

    def register_prefetch(self, key: Tuple[FileHandle, int]) -> None:
        """Count an externally issued prefetch (profile-driven
        :class:`~repro.core.profiler.Prefetcher`) toward accuracy."""
        self.stats.prefetch_issued += 1
        self._prefetched.add(key)

    # ------------------------------------------------------------------ WRITE
    def _handle_write(self, request: NfsRequest) -> Generator:
        fh, offset, data = request.fh, request.offset, request.data

        # Writes to a file held in the file cache stay local (write-back
        # of e.g. a checkpointed memory state), uploaded on flush.
        if self.channel is not None and fh in self.channel.file_cache:
            yield from self.channel.file_cache.write(fh, offset, data)
            self.stats.absorbed_writes += 1
            self._bump_local_size(fh, offset + len(data))
            return NfsReply(NfsProc.WRITE, NfsStatus.OK, fh=fh, count=len(data))

        if self.block_cache is None or self.block_cache.read_only:
            # No cache, or a shared read-only cache (golden-image data
            # only, §3.2.1): writes pass straight through.
            return (yield from self._forward(request))

        bs = self._bs()
        idx, within = divmod(offset, bs)
        if within + len(data) > bs:
            return (yield from self._forward(request))
        key = (fh, idx)

        if not self._write_back:
            # Write-through: server first, then refresh the cached copy.
            reply = yield from self._forward(request)
            if reply.ok:
                try:
                    yield from self._merge_into_cache(key, within, data)
                except RpcTimeout:
                    pass   # server has the data; only the cache refresh failed
                self._bump_local_size(fh, offset + len(data))
            return reply

        # Write-back: absorb into the disk cache and acknowledge.  A
        # dirty high-water mark bounds loss exposure: at the limit, a
        # write that would dirty a *new* frame first drains a run
        # synchronously — or, with the upstream down, is rejected (the
        # cache can't grow the at-risk set during an outage).
        hw = self.config.dirty_high_water_blocks
        if (hw > 0 and self.block_cache.dirty_frames >= hw
                and not self.block_cache.is_dirty(key)):
            if self._upstream_down():
                self.stats.degraded_write_rejects += 1
                return NfsReply(NfsProc.WRITE, NfsStatus.IO, fh=fh)
            try:
                runs = self.block_cache.dirty_runs(
                    self.config.write_coalesce_bytes)
                if runs:
                    yield from self._write_back_run(runs[0])
                    self.stats.high_water_writebacks += 1
            except RpcTimeout:
                self.stats.degraded_write_rejects += 1
                return NfsReply(NfsProc.WRITE, NfsStatus.IO, fh=fh)
        try:
            yield from self._merge_into_cache(key, within, data, dirty=True)
        except RpcTimeout:
            # The read-modify-write base fetch failed; absorbing the
            # partial write over a zeroed base would corrupt the block
            # at flush time, so fail the write cleanly instead.
            self.stats.degraded_write_rejects += 1
            return NfsReply(NfsProc.WRITE, NfsStatus.IO, fh=fh)
        self.stats.absorbed_writes += 1
        self._bump_local_size(fh, offset + len(data))
        return NfsReply(NfsProc.WRITE, NfsStatus.OK, fh=fh, count=len(data))

    def _bump_local_size(self, fh: FileHandle, end: int) -> None:
        if end > self._local_size.get(fh, 0):
            self._local_size[fh] = end

    def _merge_into_cache(self, key, within: int, data: bytes,
                          dirty: bool = False) -> Generator:
        """Process: read-modify-write ``data`` into the cached block."""
        fh, idx = key
        bs = self._bs()
        existing = yield from self.block_cache.lookup(key)
        if existing is not None:
            base = bytearray(existing.data)
            dirty = dirty or existing.dirty
        elif 0 < within or len(data) < bs:
            # Partial block not yet cached: fetch it so the cache holds a
            # complete frame for later reads/write-back (read-modify-write).
            reply = yield from self.upstream.call(NfsRequest(
                NfsProc.READ, fh=fh, offset=idx * bs, count=bs,
                credentials=self.config.identity or (0, 0)))
            base = bytearray(reply.data if reply.ok else b"")
        else:
            base = bytearray()
        if len(base) < within + len(data):
            base.extend(bytes(within + len(data) - len(base)))
        base[within:within + len(data)] = data
        victim = yield from self.block_cache.insert(key, bytes(base), dirty=dirty)
        if victim is not None:
            yield from self._write_back_block(victim.key, victim.data)

    def _write_back_block(self, key, data: bytes) -> Generator:
        """Process: push one dirty block upstream."""
        fh, idx = key
        reply = yield from self.upstream.call(NfsRequest(
            NfsProc.WRITE, fh=fh, offset=idx * self._bs(), data=data,
            stable=False, credentials=self.config.identity or (0, 0)))
        reply.raise_for_status(f"write-back {fh} block {idx}")
        self.stats.writebacks += 1

    # -------------------------------------------------- middleware operations
    def flush(self) -> Generator:
        """Process: middleware-signalled write-back of all dirty state.

        Dirty blocks go upstream in *coalesced runs*: adjacent blocks of
        one file merged into a single large WRITE RPC (up to
        ``write_coalesce_bytes``), with ``write_pipeline_depth`` RPCs in
        flight.  Each touched file is then COMMITted and dirty
        file-cache entries upload through the channel — the paper's
        session-end consistency point (O/S signal interface).
        """
        if self.block_cache is not None:
            runs = self.block_cache.dirty_runs(
                self.config.write_coalesce_bytes)
            touched = set()
            width = self.config.write_pipeline_depth
            for start in range(0, len(runs), width):
                batch = runs[start:start + width]
                for run in batch:
                    touched.update(key[0] for key in run)
                if len(batch) == 1:
                    yield from self._write_back_run(batch[0])
                else:
                    yield AllOf(self.env, [
                        self.env.process(self._write_back_run(run))
                        for run in batch])
            for fh in sorted(touched, key=lambda f: (f.fsid, f.fileid)):
                reply = yield from self.upstream.call(NfsRequest(
                    NfsProc.COMMIT, fh=fh))
                reply.raise_for_status("flush commit")
        if self.channel is not None:
            for entry in self.channel.file_cache.dirty_entries():
                yield from self.channel.upload(entry.fh)
        yield self.env.timeout(0)

    def _write_back_run(self, run: List[Tuple[FileHandle, int]]) -> Generator:
        """Process: push one run of adjacent dirty blocks upstream as
        merged WRITE RPCs.

        Re-validated as it goes: a concurrent readahead insert can evict
        (and itself write back) parts of the run while we wait on RPCs,
        so each pass keeps only still-dirty keys and re-splits on the
        adjacency that is left.
        """
        fh = run[0][0]
        bs = self._bs()
        remaining = list(run)
        while remaining:
            live = [k for k in remaining if self.block_cache.is_dirty(k)]
            if not live:
                return
            end = 1
            while end < len(live) and live[end][1] == live[end - 1][1] + 1:
                end += 1
            sub, remaining = live[:end], live[end:]
            datas = yield from self.block_cache.read_many(sub)
            reply = yield from self.upstream.call(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=sub[0][1] * bs,
                data=b"".join(datas), stable=False,
                credentials=self.config.identity or (0, 0)))
            reply.raise_for_status(
                f"write-back {fh} blocks {sub[0][1]}..{sub[-1][1]}")
            for key in sub:
                self.block_cache.mark_clean(key)
            self.stats.writebacks += len(sub)
            self.stats.merged_write_rpcs += 1
            self.stats.merged_write_blocks += len(sub)

    def crash(self) -> None:
        """Simulate proxy process death: all in-memory state is lost.

        Cached block *data* survives in the bank files on the host disk,
        but the tags mapping frames to blocks do not — without the
        dirty-frame journal, absorbed writes awaiting write-back are
        gone.  In-flight fetch gates are released so concurrent READs
        retry instead of wedging (their refetch simply misses).
        """
        self.stats.proxy_crashes += 1
        for gate in self._block_gates.values():
            if not gate.triggered:
                gate.succeed()
        self._block_gates.clear()
        for gate in self._fetching.values():
            if not gate.triggered:
                gate.succeed()
        self._fetching.clear()
        self._names.clear()
        self._metadata.clear()
        self._local_size.clear()
        self._prefetched.clear()
        self._last_miss.clear()
        self._miss_run.clear()
        self._ra_frontier.clear()
        if self.block_cache is not None:
            self.block_cache.crash()
        if self.channel is not None:
            # Whole-file cache state (and any dirty entries) dies with
            # the process; the journal covers block-cache writes only.
            self.channel.file_cache.clear()

    def recover(self) -> Generator:
        """Process: restart after :meth:`crash`, replaying the journal.

        Rebuilds the dirty-frame set from the persistent journal (when
        the cache was configured with one) so the pending write-back is
        not lost; a subsequent :meth:`flush` pushes it upstream.
        Returns the recovered block keys.
        """
        recovered: List[Tuple[FileHandle, int]] = []
        if self.block_cache is not None:
            recovered = yield from self.block_cache.recover_from_journal()
            self.stats.recovered_dirty_blocks += len(recovered)
        yield self.env.timeout(0)
        return recovered

    def quiesce(self) -> Generator:
        """Process: wait out every in-flight block fetch (demand or
        readahead) — cold-cache setup must not race a late insert."""
        while self._block_gates:
            key = next(iter(self._block_gates))
            yield self._block_gates[key]
        yield self.env.timeout(0)

    def dirty_state(self) -> Tuple[int, int]:
        """(dirty blocks, dirty whole files) awaiting write-back."""
        blocks = len(self.block_cache.dirty_blocks()) if self.block_cache else 0
        files = len(self.channel.file_cache.dirty_entries()) if self.channel else 0
        return blocks, files

    def invalidate_caches(self) -> None:
        """Cold-cache setup: drop cached blocks/files and learned metadata.

        Dirty state must have been flushed first.
        """
        blocks, files = self.dirty_state()
        if blocks or files:
            raise RuntimeError("invalidate with dirty cached data; flush first")
        if self._block_gates:
            raise RuntimeError("invalidate with fetches in flight; "
                               "quiesce first")
        if self.block_cache is not None:
            self.block_cache.flush_tags()
        if self.channel is not None:
            self.channel.file_cache.clear()
        self._metadata.clear()
        self._local_size.clear()
        self._prefetched.clear()
        self._last_miss.clear()
        self._miss_run.clear()
        self._ra_frontier.clear()
