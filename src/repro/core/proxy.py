"""The GVFS user-level proxy (§3.1–3.2), as a composed layer stack.

A proxy *receives* NFS RPC calls (like a server) and *issues* them
(like a client), so proxies cascade into multi-level hierarchies.
:class:`GvfsProxy` is the canonical composition of the layers in
:mod:`repro.core.layers`:

    attr-patch → metadata/zero-map → [file-channel] →
    [block-cache → readahead] → fault-guard → upstream-rpc

covering, per the paper's extensions: credential remapping (logical
user accounts / short-lived identities), the block-based disk cache
with write-back or write-through policy, meta-data handling
(zero-filled blocks answered locally, whole-file fetches routed
through the file-based data channel into the file-based cache —
heterogeneous caching), and middleware-driven consistency (client
COMMITs can be absorbed; the middleware signals write-back/flush
explicitly via :meth:`GvfsProxy.flush`, mirroring the O/S-signal
interface).

Everything is transparent to the kernel client above and the server
below: requests and replies are ordinary protocol messages.  All
cache, readahead and degraded-mode logic lives in the layer modules;
this module only assembles the stack and keeps the legacy surface
(``stats``, ``_block_gates``, ``_metadata``, …) alive for middleware,
profilers and tests written against the monolithic proxy.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.core.blockcache import ProxyBlockCache
from repro.core.channel import FileChannel
from repro.core.config import ProxyConfig
from repro.core.layers import ProxyStack, ProxyStats, standard_layers
from repro.nfs.protocol import FileHandle
from repro.nfs.rpc import RpcClient
from repro.sim import Environment

__all__ = ["GvfsProxy", "ProxyStats"]


class GvfsProxy(ProxyStack):
    """One user-level file system proxy in a GVFS session chain.

    The standard layer composition over an upstream RPC client: pass a
    ``block_cache`` to enable the disk cache and readahead, a
    ``channel`` to enable whole-file heterogeneous caching.
    """

    def __init__(self, env: Environment, upstream: RpcClient,
                 config: ProxyConfig = ProxyConfig(),
                 block_cache: Optional[ProxyBlockCache] = None,
                 channel: Optional[FileChannel] = None,
                 peer_member=None, checksum=None,
                 origin_selector=None, channel_selector=None):
        if config.cache is not None and block_cache is None:
            raise ValueError("config requests a cache but none was attached")
        super().__init__(env, upstream, config,
                         standard_layers(block_cache=block_cache,
                                         channel=channel,
                                         peer_member=peer_member,
                                         checksum=checksum,
                                         origin_selector=origin_selector,
                                         channel_selector=channel_selector))

    # ----------------------------------------------------- legacy state views
    @property
    def _block_gates(self) -> Dict[Tuple[FileHandle, int], object]:
        layer = self.layer("block-cache")
        return layer.gates if layer is not None else {}

    @property
    def _fetching(self) -> Dict[FileHandle, object]:
        layer = self.layer("file-channel")
        return layer.fetching if layer is not None else {}

    @property
    def _metadata(self) -> Dict[FileHandle, object]:
        return self.layer("metadata").cache

    @property
    def _names(self) -> Dict[FileHandle, Tuple[FileHandle, str]]:
        return self.layer("attr-patch").names

    @property
    def _local_size(self) -> Dict[FileHandle, int]:
        return self.layer("attr-patch").local_size

    @property
    def _prefetched(self) -> set:
        return self.layer("readahead").prefetched

    def register_prefetch(self, key: Tuple[FileHandle, int]) -> None:
        self.layer("readahead").register_prefetch(key)

    def _write_back_block(self, key, data: bytes) -> Generator:
        return (yield from self.layer("block-cache")
                .write_back_block(key, data))
