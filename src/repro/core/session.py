"""Per-session GVFS assembly: proxy chains for the paper's scenarios.

§4.2.1 defines four execution scenarios, reproduced here:

* **LOCAL** — VM state on the compute server's local disk (no NFS);
* **LAN** — state NFS-mounted from the LAN image server, access
  forwarded by GVFS proxies via SSH tunnels;
* **WAN** — same across the WAN image server;
* **WAN_CACHED** — WAN plus client-side proxy disk caching (WAN+C).

A :class:`GvfsSession` is what middleware builds per user: kernel
client -> (loopback) -> client proxy [caches] -> (SSH tunnel) -> server
proxy [identity map] -> (loopback) -> kernel NFS server.  A
:class:`SecondLevelCache` inserts a LAN caching proxy into that chain
(the WAN-S3 cloning scenario).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Union

from repro.core.blockcache import ProxyBlockCache
from repro.core.channel import CascadedFileChannel, FileChannel, RemoteFileLocator
from repro.core.config import (
    ProxyCacheConfig,
    ProxyConfig,
    pipeline_overrides,
)
from repro.core.consistency import MiddlewareConsistency
from repro.core.filecache import ProxyFileCache
from repro.core.layers.checksum import ChecksumLayer
from repro.core.proxy import GvfsProxy
from repro.net.ssh import ScpTransfer, SshTunnel
from repro.net.topology import Host, NetworkConditions, Testbed, resolve_profile
from repro.nfs.client import MountOptions, NfsClient
from repro.nfs.protocol import FileHandle
from repro.nfs.rpc import LoopbackTransport, RpcCircuitBreaker, RpcClient
from repro.nfs.server import NfsServer
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import FsError, Inode

__all__ = ["CascadeLevel", "CascadeLevelSpec", "GvfsSession", "LocalFile",
           "LocalMount", "ProxyCascade", "Scenario", "SecondLevelCache",
           "ServerEndpoint", "build_cascade", "build_caching_proxy",
           "direct_file_channel"]

_session_counter = itertools.count(1)


class Scenario(enum.Enum):
    """The four execution scenarios of §4.2.1."""

    LOCAL = "Local"
    LAN = "LAN"
    WAN = "WAN"
    WAN_CACHED = "WAN+C"


# --------------------------------------------------------------------------
# Local (no-NFS) mount adapter
# --------------------------------------------------------------------------

class LocalFile:
    """Open file on a local filesystem, mirroring the NfsFile interface."""

    def __init__(self, lfs: LocalFileSystem, inode: Inode):
        self.env = lfs.env
        self._lfs = lfs
        self.inode = inode

    @property
    def size(self) -> int:
        return self.inode.data.size

    def read(self, offset: int, count: int) -> Generator:
        data = yield from self._lfs.timed_read_inode(self.inode, offset, count)
        return data

    def read_all(self, chunk: int = 65536) -> Generator:
        out = bytearray()
        pos = 0
        while pos < self.size:
            data = yield from self.read(pos, chunk)
            if not data:
                break
            out += data
            pos += len(data)
        return bytes(out)

    def write(self, offset: int, data: bytes) -> Generator:
        yield from self._lfs.timed_write_inode(self.inode, data, offset)

    def write_sync(self, offset: int, data: bytes) -> Generator:
        """Synchronous (O_SYNC) write: charged to the disk immediately."""
        yield from self._lfs.timed_write_inode(self.inode, data, offset,
                                               sync=True)

    def truncate(self, new_size: int) -> Generator:
        self.inode.data.truncate(new_size)
        self.inode.touch()
        yield self.env.timeout(0)

    def close(self) -> Generator:
        yield self.env.timeout(0)


class LocalMount:
    """Adapter exposing the MountedNfs surface over a local filesystem,
    so VM monitors and workloads run unchanged in the LOCAL scenario."""

    def __init__(self, lfs: LocalFileSystem):
        self.env = lfs.env
        self.lfs = lfs

    def open(self, path: str) -> Generator:
        inode = self.lfs.fs.lookup(path)
        yield self.env.timeout(0)
        return LocalFile(self.lfs, inode)

    def create(self, path: str, exclusive: bool = True) -> Generator:
        inode = self.lfs.fs.create(path, exclusive=exclusive)
        yield self.env.timeout(0)
        return LocalFile(self.lfs, inode)

    def stat(self, path: str) -> Generator:
        inode = self.lfs.fs.lookup(path)
        yield self.env.timeout(0)
        return inode

    def mkdir(self, path: str) -> Generator:
        self.lfs.fs.mkdir(path)
        yield self.env.timeout(0)

    def symlink(self, path: str, target: str) -> Generator:
        self.lfs.fs.symlink(path, target)
        yield self.env.timeout(0)

    def readlink(self, path: str) -> Generator:
        target = self.lfs.fs.readlink(path)
        yield self.env.timeout(0)
        return target

    def remove(self, path: str) -> Generator:
        self.lfs.fs.unlink(path)
        yield self.env.timeout(0)

    def rename(self, old: str, new: str) -> Generator:
        self.lfs.fs.rename(old, new)
        yield self.env.timeout(0)

    def readdir(self, path: str) -> Generator:
        names = self.lfs.fs.readdir(path)
        yield self.env.timeout(0)
        return names

    def flush_all(self) -> Generator:
        yield from self.lfs.sync()

    def drop_caches(self) -> None:
        self.lfs.drop_caches()


# --------------------------------------------------------------------------
# Server side
# --------------------------------------------------------------------------

class ServerEndpoint:
    """The image-server side: kernel NFS server + server-side proxy.

    The server-side proxy authenticates requests and maps identities to
    a short-lived logical account (§3.1); it carries no caches.
    """

    def __init__(self, env: Environment, host: Host, fsid: str = "images",
                 logical_identity=(1001, 1001), integrity=None):
        self.env = env
        self.host = host
        self.export = host.local
        self.server = NfsServer(env, self.export, fsid=fsid)
        loop = LoopbackTransport(env)
        # ``integrity`` (a ChecksumRegistry) adds a record-mode checksum
        # layer at this origin-adjacent boundary: every block leaving or
        # reaching the server of record is checksummed, so client-side
        # verify instances have a truth to check against.
        checksum = (ChecksumLayer(integrity, record=True)
                    if integrity is not None else None)
        self.proxy = GvfsProxy(
            env,
            RpcClient(env, self.server, loop, loop, name=f"{fsid}.srvproxy"),
            ProxyConfig(name=f"{host.name}.server-proxy", metadata=False,
                        identity=logical_identity),
            checksum=checksum)

    @property
    def root_fh(self) -> FileHandle:
        return self.server.root_fh

    def resolve(self, fh: FileHandle) -> Inode:
        """Out-of-band handle resolution for file channels (SCP source)."""
        if fh.fsid != self.server.fsid:
            raise FsError("ESTALE", f"foreign fsid {fh.fsid}")
        return self.export.fs.get_inode(fh.fileid)


# --------------------------------------------------------------------------
# Caching-proxy assembly (shared by client sessions and cache levels)
# --------------------------------------------------------------------------

def build_caching_proxy(env: Environment, upstream: RpcClient, *, name: str,
                        cache_config: ProxyCacheConfig, block_cache,
                        channel, metadata: bool = True,
                        peer_member=None, integrity=None,
                        origin_selector=None,
                        channel_selector=None) -> GvfsProxy:
    """One caching GVFS proxy: the standard layer stack (attr patching,
    zero-map meta-data, file channel, block cache + readahead, fault
    guard, upstream RPC) over ``upstream``.

    Every cache level in a cascade — the client proxy, a second-level
    LAN cache, an N-th level — is this same composition; only the
    upstream RPC client (the next hop) and the cache objects differ.
    ``peer_member`` (a ``PeerCacheDirectory.join`` handle) inserts the
    cooperative peer-cache lookup below the fault guard.  ``integrity``
    (a ``ChecksumRegistry`` shared with a record-mode endpoint) inserts
    a verify-mode checksum layer above the caches, so every full-block
    read is checked end to end before it reaches the client.
    """
    checksum = (ChecksumLayer(integrity, verify=True)
                if integrity is not None else None)
    return GvfsProxy(env, upstream,
                     ProxyConfig(name=name, cache=cache_config,
                                 metadata=metadata, **pipeline_overrides()),
                     block_cache=block_cache, channel=channel,
                     peer_member=peer_member, checksum=checksum,
                     origin_selector=origin_selector,
                     channel_selector=channel_selector)


def direct_file_channel(env: Environment, endpoint: ServerEndpoint,
                        client_host: Host, file_cache: ProxyFileCache,
                        scp: ScpTransfer,
                        upload_scp: Optional[ScpTransfer] = None
                        ) -> FileChannel:
    """A file channel fetching straight from the image server."""
    locator = RemoteFileLocator(resolve=endpoint.resolve,
                                server_host=endpoint.host,
                                server_fs=endpoint.export,
                                client_host=client_host)
    return FileChannel(env, locator, scp, file_cache, upload_scp=upload_scp)


# --------------------------------------------------------------------------
# Cache cascades: intermediate caching-proxy levels between client and origin
# --------------------------------------------------------------------------

class CascadeLevel:
    """One intermediate caching proxy in an N-level cache cascade.

    Cascading is stack composition: every level is the *same* layer
    stack as a client proxy (:func:`build_caching_proxy`), pointed
    either at the next level up the cascade (``above``) or straight at
    the image server's proxy.  Client sessions (or lower levels) stack
    on top by using :attr:`proxy` as their upstream handler.

    ``link`` names the network the upstream hop crosses (``"lan"`` or
    ``"wan"``); by default it is inferred from the upstream host (WAN
    for the WAN image server, campus Ethernet otherwise).
    """

    def __init__(self, testbed: Testbed, endpoint: ServerEndpoint,
                 host: Host,
                 cache_config: Optional[ProxyCacheConfig] = None,
                 name: str = "cache-level",
                 above: Optional["CascadeLevel"] = None,
                 link: Optional[str] = None):
        env = testbed.env
        self.env = env
        self.testbed = testbed
        self.endpoint = endpoint
        self.host = host
        self.above = above
        self.name = name
        cache_config = cache_config or ProxyCacheConfig()
        self.cache_config = cache_config
        upstream_host = above.host if above is not None else endpoint.host
        if link is None:
            link = "wan" if upstream_host is testbed.wan_server else "lan"
        if link not in ("lan", "wan"):
            raise ValueError(f"link must be 'lan' or 'wan', got {link!r}")
        self.link = link
        via_wan = link == "wan"
        tunnel_out = SshTunnel(env, testbed.route(host, upstream_host,
                                                  via_wan),
                               name=f"{name}.out")
        tunnel_back = SshTunnel(env, testbed.route(upstream_host, host,
                                                   via_wan),
                                name=f"{name}.back")
        upstream_handler = (above.proxy if above is not None
                            else endpoint.proxy)
        upstream = RpcClient(env, upstream_handler, tunnel_out, tunnel_back,
                             name=f"{name}.rpc")
        self.block_cache = ProxyBlockCache(env, self.host.local, cache_config,
                                           name=f"{name}.blocks")
        file_cache = ProxyFileCache(env, self.host.local,
                                    name=f"{name}.files")
        scp = ScpTransfer(env, testbed.route(upstream_host, host, via_wan),
                          name=f"{name}.scp")
        if above is not None:
            self.channel = CascadedFileChannel(env, above.channel,
                                               above.host, host, scp,
                                               file_cache)
        else:
            self.channel = direct_file_channel(env, endpoint, self.host,
                                               file_cache, scp)
        self.proxy = build_caching_proxy(env, upstream, name=name,
                                         cache_config=cache_config,
                                         block_cache=self.block_cache,
                                         channel=self.channel)


class SecondLevelCache(CascadeLevel):
    """A caching GVFS proxy on a LAN server, shared by compute nodes.

    "A second-level proxy cache can be setup on a LAN server ... to
    further exploit the locality and provide high speed access to the
    state of golden images" (§3.2.3).

    The two-level special case of a :class:`CascadeLevel` cascade: one
    intermediate level on the LAN image server, reaching the origin
    across the WAN.  ``build_cascade(testbed, endpoint, levels=[spec])``
    builds the identical wiring.
    """

    def __init__(self, testbed: Testbed, endpoint: ServerEndpoint,
                 cache_config: Optional[ProxyCacheConfig] = None,
                 name: str = "second-level"):
        super().__init__(testbed, endpoint, host=testbed.lan_server,
                         cache_config=cache_config, name=name, link="wan")


@dataclass(frozen=True)
class CascadeLevelSpec:
    """Declarative description of one cascade level for
    :func:`build_cascade`.

    ``cache_config`` carries the level's block-cache geometry *and*
    eviction policy (``ProxyCacheConfig.eviction``); ``link`` the
    network of the hop toward the next level (``"lan"``/``"wan"``,
    default inferred from the upstream host); ``host`` pins the level
    to an existing testbed host (default: the LAN image server for the
    origin-adjacent level, a freshly attached LAN host otherwise).

    ``profile`` calibrates the level's *access link* when the cascade
    provisions a fresh host for it: a :data:`repro.net.topology
    .LINK_PROFILES` name (``"rack"``/``"site"``/``"lan"``/``"wan"``)
    or explicit :class:`NetworkConditions` — so a rack-level cache one
    gigabit hop away and a site cache across the campus backbone stop
    sharing the single-switch LAN calibration.  Incompatible with
    ``host`` (a pinned host keeps the access link it already has).
    """

    cache_config: Optional[ProxyCacheConfig] = None
    link: Optional[str] = None
    host: Optional[Host] = None
    name: Optional[str] = None
    profile: Optional[Union[str, NetworkConditions]] = None


class ProxyCascade:
    """An assembled cascade: the intermediate levels between client
    sessions and the image server, ordered client-ward first.

    ``levels[0]`` (:attr:`top`) is what sessions attach to via
    ``GvfsSession.build(..., via=cascade)``; ``levels[-1]`` talks to
    the server endpoint.  The *cascade depth* counts the client proxy
    too: ``depth == len(levels) + 1`` (a depth-1 cascade has no
    intermediate levels and is a plain caching client proxy).
    """

    def __init__(self, levels: List[CascadeLevel]):
        self.levels = list(levels)

    @property
    def top(self) -> Optional[CascadeLevel]:
        return self.levels[0] if self.levels else None

    @property
    def depth(self) -> int:
        return len(self.levels) + 1

    def stacks(self) -> List[GvfsProxy]:
        """The levels' proxy stacks, client-ward first."""
        return [level.proxy for level in self.levels]

    def reset(self) -> None:
        """Zero every level's counters (the client proxy, built per
        session, resets itself via ``ProxyStack.reset``)."""
        for level in self.levels:
            level.proxy.reset(deep=False)

    def stats_snapshots(self) -> List[dict]:
        """Per-level counter snapshots, client-ward first."""
        return [level.proxy.stats_snapshot() for level in self.levels]

    def arm_exclusive(self) -> int:
        """Make the cascade exclusive: every level whose next level up
        also caches demotes clean eviction victims upstream instead of
        dropping them (see ``BlockCacheLayer.arm_demotion``).  The
        origin-adjacent level stays inclusive — its upstream is the
        server-side forwarding proxy, which has no cache to demote
        into.  Client proxies arm themselves via
        ``GvfsSession.build(..., exclusive=True)``.  Returns the number
        of levels armed.
        """
        armed = 0
        for level in self.levels:
            layer = level.proxy.layer("block-cache")
            if layer is not None and layer.arm_demotion():
                armed += 1
        return armed


def build_cascade(testbed: Testbed, endpoint: ServerEndpoint,
                  levels: Sequence[Union[CascadeLevelSpec, ProxyCacheConfig]],
                  name: str = "cascade") -> ProxyCascade:
    """Assemble an arbitrary-depth proxy-cache cascade (§3.2.3
    generalized): compute node → rack cache → … → site cache → origin.

    ``levels`` lists the *intermediate* cache levels, ordered
    client-ward → origin-ward; each entry is a :class:`CascadeLevelSpec`
    (or a bare :class:`ProxyCacheConfig` as shorthand).  An empty list
    yields a depth-1 cascade — sessions then run a plain caching client
    proxy.  The origin-adjacent level defaults to the LAN image server
    host reaching the origin across the WAN (exactly the classic
    :class:`SecondLevelCache` wiring); additional client-ward levels
    get their own LAN-attached hosts.
    """
    specs = [spec if isinstance(spec, CascadeLevelSpec)
             else CascadeLevelSpec(cache_config=spec) for spec in levels]
    built: List[CascadeLevel] = []
    above: Optional[CascadeLevel] = None
    for pos in range(len(specs) - 1, -1, -1):
        spec = specs[pos]
        level_no = pos + 2          # the client proxy is level 1
        host = spec.host
        if host is not None and spec.profile is not None:
            raise ValueError(
                f"cascade level {spec.name or level_no}: 'profile' only "
                "applies when the cascade provisions the host; a pinned "
                "host keeps its existing access link")
        if host is None:
            conditions = (resolve_profile(spec.profile)
                          if spec.profile is not None else None)
            if above is None and conditions is None:
                host = testbed.lan_server
            else:
                host = testbed.add_host(f"{name}-l{level_no}",
                                        conditions=conditions)
        above = CascadeLevel(testbed, endpoint, host=host,
                             cache_config=spec.cache_config,
                             name=spec.name or f"{name}-l{level_no}",
                             above=above, link=spec.link)
        built.append(above)
    built.reverse()
    return ProxyCascade(built)


# --------------------------------------------------------------------------
# The session
# --------------------------------------------------------------------------

@dataclass
class GvfsSession:
    """One user's GVFS session: the mount plus every interposed proxy."""

    env: Environment
    scenario: Scenario
    mount: object                       # MountedNfs or LocalMount
    compute_host: Host
    endpoint: Optional[ServerEndpoint] = None
    client_proxy: Optional[GvfsProxy] = None
    consistency: Optional[MiddlewareConsistency] = None
    nfs_client: Optional[NfsClient] = None

    # -- middleware operations ------------------------------------------------
    def flush(self) -> Generator:
        """Process: force all session dirty state to the image server."""
        yield self.env.process(self.mount.flush_all())
        if self.client_proxy is not None:
            yield self.env.process(self.client_proxy.flush())

    def harden_rpc(self, timeout: float = 1.0, max_retries: int = 5,
                   backoff: float = 2.0, max_timeout: float = 8.0,
                   breaker_threshold: Optional[int] = None,
                   breaker_reset: float = 5.0,
                   dirty_high_water_blocks: Optional[int] = None) -> RpcClient:
        """Enable failure handling on the session's WAN-facing RPC path.

        Sessions are built with ``timeout=None`` (no retransmission) —
        correct on a perfect network and free of timer cost.  Under
        fault injection the middleware calls this to switch the client
        proxy's upstream (or, with no proxy, the mount itself) to the
        retransmission ladder, optionally with a circuit breaker (which
        also arms the proxy's degraded mode) and a dirty high-water
        mark.  Returns the hardened :class:`RpcClient`.
        """
        client = (self.client_proxy.upstream if self.client_proxy is not None
                  else self.mount.rpc)
        client.timeout = timeout
        client.max_retries = max_retries
        client.backoff = backoff
        client.max_timeout = max_timeout
        if breaker_threshold is not None:
            client.breaker = RpcCircuitBreaker(
                self.env, failure_threshold=breaker_threshold,
                reset_after=breaker_reset)
        if (dirty_high_water_blocks is not None
                and self.client_proxy is not None):
            from dataclasses import replace
            self.client_proxy.config = replace(
                self.client_proxy.config,
                dirty_high_water_blocks=dirty_high_water_blocks)
        return client

    def cold_caches(self) -> Generator:
        """Process: the experiments' cold-cache setup — flush dirty
        state, then unmount/mount (drop kernel caches) and flush the
        proxy caches."""
        yield self.env.process(self.flush())
        self.mount.drop_caches()
        if self.client_proxy is not None:
            # Late readahead fetches must land (or fail) before the
            # tags drop, or they would repopulate a "cold" cache.
            yield self.env.process(self.client_proxy.quiesce())
            self.client_proxy.invalidate_caches()
        self.compute_host.local.drop_caches()

    # -- construction ------------------------------------------------------------
    @classmethod
    def build(cls, testbed: Testbed, scenario: Scenario,
              endpoint: Optional[ServerEndpoint] = None,
              compute_index: int = 0,
              cache_config: Optional[ProxyCacheConfig] = None,
              mount_options: Optional[MountOptions] = None,
              metadata: bool = True,
              via: Optional[Union[CascadeLevel, ProxyCascade]] = None,
              shared_block_cache: Optional[ProxyBlockCache] = None,
              peer_directory=None,
              exclusive: bool = False,
              file_cache_capacity: Optional[int] = None,
              integrity=None,
              origin=None
              ) -> "GvfsSession":
        """Wire a session for ``scenario`` on compute node ``compute_index``.

        ``endpoint`` names the image server side (defaults to the WAN
        server for WAN scenarios, the LAN server for LAN).  ``via``
        interposes a cache cascade: a :class:`SecondLevelCache`, any
        :class:`CascadeLevel`, or a whole :class:`ProxyCascade` (whose
        top level is used; an empty cascade means no intermediate
        levels).  ``cache_config`` overrides
        the client cache geometry for WAN_CACHED (defaults to §4.1's
        512 banks / 16-way / 8 GB).  ``shared_block_cache`` lets several
        sessions on one host share a read-only cache of golden-image
        blocks (§3.2.1); the proxy then forwards writes upstream.

        ``peer_directory`` (a :meth:`Testbed.peer_directory`) registers
        this session's block cache with the site's cooperative peer
        directory so LAN peers answer each other's misses before they
        escalate over the WAN.  ``exclusive=True`` arms exclusive-
        cascade demotion: the client proxy hands clean eviction victims
        to its upstream cache level (a no-op when the upstream is the
        cacheless server endpoint, so depth-1 behavior is unchanged).

        ``integrity`` (a ``ChecksumRegistry``, WAN_CACHED only) inserts
        a verify-mode checksum layer at the top of the client proxy;
        pair it with an endpoint built with the same registry so there
        are origin-recorded checksums to verify against.

        ``origin`` replaces the single upstream with a replicated
        origin provider (duck-typed; canonically
        ``repro.middleware.farm.ImageFarm``): anything exposing
        ``endpoint`` (root-handle source), ``integrity`` (shared
        checksum registry), ``upstream_client(name, compute_host)``
        (an RpcClient-compatible origin selector fanning requests
        across replicas) and ``session_channels(file_cache,
        compute_host, name)`` (a file-channel selector).  ``origin``
        and ``via`` are mutually exclusive — a farm is already its own
        data plane.  With ``origin=None`` the wiring below is
        bit-identical to the single-origin path.
        """
        env = testbed.env
        n = next(_session_counter)
        compute = testbed.compute[compute_index]
        if isinstance(via, ProxyCascade):
            via = via.top
        if origin is not None:
            if via is not None:
                raise ValueError("origin farm and cascade 'via' are "
                                 "mutually exclusive")
            endpoint = origin.endpoint
            if integrity is None:
                integrity = origin.integrity

        if scenario is Scenario.LOCAL:
            return cls(env=env, scenario=scenario,
                       mount=LocalMount(compute.local), compute_host=compute)

        if endpoint is None:
            host = (testbed.lan_server if scenario is Scenario.LAN
                    else testbed.wan_server)
            endpoint = ServerEndpoint(env, host)

        # Data channel routes for this session: follow the physical
        # location of the next hop (a cascade cache level or the image
        # server itself), so an endpoint on the LAN server is reached
        # over LAN links even in a WAN-named scenario (e.g. a user-data
        # server co-located on the LAN).
        route_out = route_back = None
        if origin is not None:
            # The farm client owns one tunnel pair per replica; there
            # is no single upstream route.
            upstream = origin.upstream_client(f"s{n}", compute)
        elif via is not None:
            route_out = testbed.route(compute, via.host)
            route_back = testbed.route(via.host, compute)
            upstream_handler = via.proxy
        elif endpoint.host is testbed.wan_server:
            route_out = testbed.wan_route(compute_index)
            route_back = testbed.wan_route_back(compute_index)
            upstream_handler = endpoint.proxy
        else:
            route_out = testbed.lan_route(compute_index)
            route_back = testbed.lan_route_back(compute_index)
            upstream_handler = endpoint.proxy

        if origin is None:
            tunnel_out = SshTunnel(env, route_out, name=f"s{n}.out")
            tunnel_back = SshTunnel(env, route_back, name=f"s{n}.back")
            upstream = RpcClient(env, upstream_handler, tunnel_out,
                                 tunnel_back, name=f"s{n}.rpc")

        client_proxy = None
        if scenario is Scenario.WAN_CACHED:
            if shared_block_cache is not None:
                cache_config = shared_block_cache.config
                block_cache = shared_block_cache
            else:
                cache_config = cache_config or ProxyCacheConfig()
                block_cache = ProxyBlockCache(env, compute.local,
                                              cache_config,
                                              name=f"s{n}.blocks")
            file_cache = ProxyFileCache(env, compute.local,
                                        name=f"s{n}.files",
                                        capacity_bytes=file_cache_capacity)
            channel_selector = None
            if origin is not None:
                channel_selector = origin.session_channels(
                    file_cache, compute, f"s{n}")
                channel = channel_selector.primary
            elif via is not None:
                scp = ScpTransfer(env, route_back, name=f"s{n}.scp")
                channel = CascadedFileChannel(
                    env, via.channel, via.host, compute, scp, file_cache)
            else:
                scp = ScpTransfer(env, route_back, name=f"s{n}.scp")
                upload_scp = ScpTransfer(env, route_out, name=f"s{n}.scp-up")
                channel = direct_file_channel(env, endpoint, compute,
                                              file_cache, scp,
                                              upload_scp=upload_scp)
            peer_member = None
            if peer_directory is not None:
                peer_member = peer_directory.join(f"s{n}", compute,
                                                  block_cache)
            client_proxy = build_caching_proxy(
                env, upstream, name=f"s{n}.client-proxy",
                cache_config=cache_config, block_cache=block_cache,
                channel=channel, metadata=metadata,
                peer_member=peer_member, integrity=integrity,
                origin_selector=(upstream if origin is not None else None),
                channel_selector=channel_selector)
            if exclusive:
                client_proxy.layer("block-cache").arm_demotion()
            loop = LoopbackTransport(env)
            mount_rpc = RpcClient(env, client_proxy, loop, loop,
                                  name=f"s{n}.mount")
        else:
            # LAN / WAN without client caching: the kernel client talks
            # through the tunnel straight to the server-side proxy.
            mount_rpc = upstream

        nfs_client = NfsClient(env, name=f"s{n}.client")
        mount = nfs_client.mount("/gvfs", mount_rpc, endpoint.root_fh,
                                 mount_options or MountOptions())
        return cls(env=env, scenario=scenario, mount=mount,
                   compute_host=compute, endpoint=endpoint,
                   client_proxy=client_proxy,
                   consistency=MiddlewareConsistency(env),
                   nfs_client=nfs_client)
