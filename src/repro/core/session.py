"""Per-session GVFS assembly: proxy chains for the paper's scenarios.

§4.2.1 defines four execution scenarios, reproduced here:

* **LOCAL** — VM state on the compute server's local disk (no NFS);
* **LAN** — state NFS-mounted from the LAN image server, access
  forwarded by GVFS proxies via SSH tunnels;
* **WAN** — same across the WAN image server;
* **WAN_CACHED** — WAN plus client-side proxy disk caching (WAN+C).

A :class:`GvfsSession` is what middleware builds per user: kernel
client -> (loopback) -> client proxy [caches] -> (SSH tunnel) -> server
proxy [identity map] -> (loopback) -> kernel NFS server.  A
:class:`SecondLevelCache` inserts a LAN caching proxy into that chain
(the WAN-S3 cloning scenario).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.blockcache import ProxyBlockCache
from repro.core.channel import CascadedFileChannel, FileChannel, RemoteFileLocator
from repro.core.config import (
    ProxyCacheConfig,
    ProxyConfig,
    pipeline_overrides,
)
from repro.core.consistency import MiddlewareConsistency
from repro.core.filecache import ProxyFileCache
from repro.core.proxy import GvfsProxy
from repro.net.ssh import ScpTransfer, SshTunnel
from repro.net.topology import Host, Testbed
from repro.nfs.client import MountOptions, NfsClient
from repro.nfs.protocol import FileHandle
from repro.nfs.rpc import LoopbackTransport, RpcCircuitBreaker, RpcClient
from repro.nfs.server import NfsServer
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import FsError, Inode

__all__ = ["GvfsSession", "LocalFile", "LocalMount", "Scenario",
           "SecondLevelCache", "ServerEndpoint", "build_caching_proxy",
           "direct_file_channel"]

_session_counter = itertools.count(1)


class Scenario(enum.Enum):
    """The four execution scenarios of §4.2.1."""

    LOCAL = "Local"
    LAN = "LAN"
    WAN = "WAN"
    WAN_CACHED = "WAN+C"


# --------------------------------------------------------------------------
# Local (no-NFS) mount adapter
# --------------------------------------------------------------------------

class LocalFile:
    """Open file on a local filesystem, mirroring the NfsFile interface."""

    def __init__(self, lfs: LocalFileSystem, inode: Inode):
        self.env = lfs.env
        self._lfs = lfs
        self.inode = inode

    @property
    def size(self) -> int:
        return self.inode.data.size

    def read(self, offset: int, count: int) -> Generator:
        data = yield from self._lfs.timed_read_inode(self.inode, offset, count)
        return data

    def read_all(self, chunk: int = 65536) -> Generator:
        out = bytearray()
        pos = 0
        while pos < self.size:
            data = yield from self.read(pos, chunk)
            if not data:
                break
            out += data
            pos += len(data)
        return bytes(out)

    def write(self, offset: int, data: bytes) -> Generator:
        yield from self._lfs.timed_write_inode(self.inode, data, offset)

    def write_sync(self, offset: int, data: bytes) -> Generator:
        """Synchronous (O_SYNC) write: charged to the disk immediately."""
        yield from self._lfs.timed_write_inode(self.inode, data, offset,
                                               sync=True)

    def truncate(self, new_size: int) -> Generator:
        self.inode.data.truncate(new_size)
        self.inode.touch()
        yield self.env.timeout(0)

    def close(self) -> Generator:
        yield self.env.timeout(0)


class LocalMount:
    """Adapter exposing the MountedNfs surface over a local filesystem,
    so VM monitors and workloads run unchanged in the LOCAL scenario."""

    def __init__(self, lfs: LocalFileSystem):
        self.env = lfs.env
        self.lfs = lfs

    def open(self, path: str) -> Generator:
        inode = self.lfs.fs.lookup(path)
        yield self.env.timeout(0)
        return LocalFile(self.lfs, inode)

    def create(self, path: str, exclusive: bool = True) -> Generator:
        inode = self.lfs.fs.create(path, exclusive=exclusive)
        yield self.env.timeout(0)
        return LocalFile(self.lfs, inode)

    def stat(self, path: str) -> Generator:
        inode = self.lfs.fs.lookup(path)
        yield self.env.timeout(0)
        return inode

    def mkdir(self, path: str) -> Generator:
        self.lfs.fs.mkdir(path)
        yield self.env.timeout(0)

    def symlink(self, path: str, target: str) -> Generator:
        self.lfs.fs.symlink(path, target)
        yield self.env.timeout(0)

    def readlink(self, path: str) -> Generator:
        target = self.lfs.fs.readlink(path)
        yield self.env.timeout(0)
        return target

    def remove(self, path: str) -> Generator:
        self.lfs.fs.unlink(path)
        yield self.env.timeout(0)

    def rename(self, old: str, new: str) -> Generator:
        self.lfs.fs.rename(old, new)
        yield self.env.timeout(0)

    def readdir(self, path: str) -> Generator:
        names = self.lfs.fs.readdir(path)
        yield self.env.timeout(0)
        return names

    def flush_all(self) -> Generator:
        yield from self.lfs.sync()

    def drop_caches(self) -> None:
        self.lfs.drop_caches()


# --------------------------------------------------------------------------
# Server side
# --------------------------------------------------------------------------

class ServerEndpoint:
    """The image-server side: kernel NFS server + server-side proxy.

    The server-side proxy authenticates requests and maps identities to
    a short-lived logical account (§3.1); it carries no caches.
    """

    def __init__(self, env: Environment, host: Host, fsid: str = "images",
                 logical_identity=(1001, 1001)):
        self.env = env
        self.host = host
        self.export = host.local
        self.server = NfsServer(env, self.export, fsid=fsid)
        loop = LoopbackTransport(env)
        self.proxy = GvfsProxy(
            env,
            RpcClient(env, self.server, loop, loop, name=f"{fsid}.srvproxy"),
            ProxyConfig(name=f"{host.name}.server-proxy", metadata=False,
                        identity=logical_identity))

    @property
    def root_fh(self) -> FileHandle:
        return self.server.root_fh

    def resolve(self, fh: FileHandle) -> Inode:
        """Out-of-band handle resolution for file channels (SCP source)."""
        if fh.fsid != self.server.fsid:
            raise FsError("ESTALE", f"foreign fsid {fh.fsid}")
        return self.export.fs.get_inode(fh.fileid)


# --------------------------------------------------------------------------
# Caching-proxy assembly (shared by client sessions and cache levels)
# --------------------------------------------------------------------------

def build_caching_proxy(env: Environment, upstream: RpcClient, *, name: str,
                        cache_config: ProxyCacheConfig, block_cache,
                        channel, metadata: bool = True) -> GvfsProxy:
    """One caching GVFS proxy: the standard layer stack (attr patching,
    zero-map meta-data, file channel, block cache + readahead, fault
    guard, upstream RPC) over ``upstream``.

    Every cache level in a cascade — the client proxy, a second-level
    LAN cache, an N-th level — is this same composition; only the
    upstream RPC client (the next hop) and the cache objects differ.
    """
    return GvfsProxy(env, upstream,
                     ProxyConfig(name=name, cache=cache_config,
                                 metadata=metadata, **pipeline_overrides()),
                     block_cache=block_cache, channel=channel)


def direct_file_channel(env: Environment, endpoint: ServerEndpoint,
                        client_host: Host, file_cache: ProxyFileCache,
                        scp: ScpTransfer,
                        upload_scp: Optional[ScpTransfer] = None
                        ) -> FileChannel:
    """A file channel fetching straight from the image server."""
    locator = RemoteFileLocator(resolve=endpoint.resolve,
                                server_host=endpoint.host,
                                server_fs=endpoint.export,
                                client_host=client_host)
    return FileChannel(env, locator, scp, file_cache, upload_scp=upload_scp)


# --------------------------------------------------------------------------
# Second-level (LAN) caching proxy
# --------------------------------------------------------------------------

class SecondLevelCache:
    """A caching GVFS proxy on a LAN server, shared by compute nodes.

    "A second-level proxy cache can be setup on a LAN server ... to
    further exploit the locality and provide high speed access to the
    state of golden images" (§3.2.3).

    Cascading is stack composition: this is the *same* layer stack as a
    client proxy (:func:`build_caching_proxy`), pointed at the image
    server's proxy over the LAN-server tunnels.  Client sessions then
    stack on top of it by using :attr:`proxy` as their upstream handler
    (``GvfsSession.build(..., via=second_level)``).
    """

    def __init__(self, testbed: Testbed, endpoint: ServerEndpoint,
                 cache_config: Optional[ProxyCacheConfig] = None,
                 name: str = "second-level"):
        env = testbed.env
        self.env = env
        self.testbed = testbed
        self.endpoint = endpoint
        self.host = testbed.lan_server
        cache_config = cache_config or ProxyCacheConfig()
        tunnel_out = SshTunnel(env, testbed.lan_server_route(),
                               name=f"{name}.out")
        tunnel_back = SshTunnel(env, testbed.lan_server_route_back(),
                                name=f"{name}.back")
        upstream = RpcClient(env, endpoint.proxy, tunnel_out, tunnel_back,
                             name=f"{name}.rpc")
        self.block_cache = ProxyBlockCache(env, self.host.local, cache_config,
                                           name=f"{name}.blocks")
        file_cache = ProxyFileCache(env, self.host.local,
                                    name=f"{name}.files")
        scp = ScpTransfer(env, testbed.lan_server_route_back(),
                          name=f"{name}.scp")
        self.channel = direct_file_channel(env, endpoint, self.host,
                                           file_cache, scp)
        self.proxy = build_caching_proxy(env, upstream, name=name,
                                         cache_config=cache_config,
                                         block_cache=self.block_cache,
                                         channel=self.channel)


# --------------------------------------------------------------------------
# The session
# --------------------------------------------------------------------------

@dataclass
class GvfsSession:
    """One user's GVFS session: the mount plus every interposed proxy."""

    env: Environment
    scenario: Scenario
    mount: object                       # MountedNfs or LocalMount
    compute_host: Host
    endpoint: Optional[ServerEndpoint] = None
    client_proxy: Optional[GvfsProxy] = None
    consistency: Optional[MiddlewareConsistency] = None
    nfs_client: Optional[NfsClient] = None

    # -- middleware operations ------------------------------------------------
    def flush(self) -> Generator:
        """Process: force all session dirty state to the image server."""
        yield self.env.process(self.mount.flush_all())
        if self.client_proxy is not None:
            yield self.env.process(self.client_proxy.flush())

    def harden_rpc(self, timeout: float = 1.0, max_retries: int = 5,
                   backoff: float = 2.0, max_timeout: float = 8.0,
                   breaker_threshold: Optional[int] = None,
                   breaker_reset: float = 5.0,
                   dirty_high_water_blocks: Optional[int] = None) -> RpcClient:
        """Enable failure handling on the session's WAN-facing RPC path.

        Sessions are built with ``timeout=None`` (no retransmission) —
        correct on a perfect network and free of timer cost.  Under
        fault injection the middleware calls this to switch the client
        proxy's upstream (or, with no proxy, the mount itself) to the
        retransmission ladder, optionally with a circuit breaker (which
        also arms the proxy's degraded mode) and a dirty high-water
        mark.  Returns the hardened :class:`RpcClient`.
        """
        client = (self.client_proxy.upstream if self.client_proxy is not None
                  else self.mount.rpc)
        client.timeout = timeout
        client.max_retries = max_retries
        client.backoff = backoff
        client.max_timeout = max_timeout
        if breaker_threshold is not None:
            client.breaker = RpcCircuitBreaker(
                self.env, failure_threshold=breaker_threshold,
                reset_after=breaker_reset)
        if (dirty_high_water_blocks is not None
                and self.client_proxy is not None):
            from dataclasses import replace
            self.client_proxy.config = replace(
                self.client_proxy.config,
                dirty_high_water_blocks=dirty_high_water_blocks)
        return client

    def cold_caches(self) -> Generator:
        """Process: the experiments' cold-cache setup — flush dirty
        state, then unmount/mount (drop kernel caches) and flush the
        proxy caches."""
        yield self.env.process(self.flush())
        self.mount.drop_caches()
        if self.client_proxy is not None:
            # Late readahead fetches must land (or fail) before the
            # tags drop, or they would repopulate a "cold" cache.
            yield self.env.process(self.client_proxy.quiesce())
            self.client_proxy.invalidate_caches()
        self.compute_host.local.drop_caches()

    # -- construction ------------------------------------------------------------
    @classmethod
    def build(cls, testbed: Testbed, scenario: Scenario,
              endpoint: Optional[ServerEndpoint] = None,
              compute_index: int = 0,
              cache_config: Optional[ProxyCacheConfig] = None,
              mount_options: Optional[MountOptions] = None,
              metadata: bool = True,
              via: Optional[SecondLevelCache] = None,
              shared_block_cache: Optional[ProxyBlockCache] = None
              ) -> "GvfsSession":
        """Wire a session for ``scenario`` on compute node ``compute_index``.

        ``endpoint`` names the image server side (defaults to the WAN
        server for WAN scenarios, the LAN server for LAN).  ``via``
        interposes a second-level LAN cache.  ``cache_config`` overrides
        the client cache geometry for WAN_CACHED (defaults to §4.1's
        512 banks / 16-way / 8 GB).  ``shared_block_cache`` lets several
        sessions on one host share a read-only cache of golden-image
        blocks (§3.2.1); the proxy then forwards writes upstream.
        """
        env = testbed.env
        n = next(_session_counter)
        compute = testbed.compute[compute_index]

        if scenario is Scenario.LOCAL:
            return cls(env=env, scenario=scenario,
                       mount=LocalMount(compute.local), compute_host=compute)

        if endpoint is None:
            host = (testbed.lan_server if scenario is Scenario.LAN
                    else testbed.wan_server)
            endpoint = ServerEndpoint(env, host)

        # Data channel routes for this session: follow the physical
        # location of the next hop (a second-level cache or the image
        # server itself), so an endpoint on the LAN server is reached
        # over LAN links even in a WAN-named scenario (e.g. a user-data
        # server co-located on the LAN).
        if via is not None:
            route_out = testbed.lan_route(compute_index)
            route_back = testbed.lan_route_back(compute_index)
            upstream_handler = via.proxy
        elif endpoint.host is testbed.wan_server:
            route_out = testbed.wan_route(compute_index)
            route_back = testbed.wan_route_back(compute_index)
            upstream_handler = endpoint.proxy
        else:
            route_out = testbed.lan_route(compute_index)
            route_back = testbed.lan_route_back(compute_index)
            upstream_handler = endpoint.proxy

        tunnel_out = SshTunnel(env, route_out, name=f"s{n}.out")
        tunnel_back = SshTunnel(env, route_back, name=f"s{n}.back")
        upstream = RpcClient(env, upstream_handler, tunnel_out, tunnel_back,
                             name=f"s{n}.rpc")

        client_proxy = None
        if scenario is Scenario.WAN_CACHED:
            if shared_block_cache is not None:
                cache_config = shared_block_cache.config
                block_cache = shared_block_cache
            else:
                cache_config = cache_config or ProxyCacheConfig()
                block_cache = ProxyBlockCache(env, compute.local,
                                              cache_config,
                                              name=f"s{n}.blocks")
            file_cache = ProxyFileCache(env, compute.local, name=f"s{n}.files")
            scp = ScpTransfer(env, route_back, name=f"s{n}.scp")
            upload_scp = ScpTransfer(env, route_out, name=f"s{n}.scp-up")
            if via is not None:
                channel = CascadedFileChannel(
                    env, via.channel, via.host, compute, scp, file_cache)
            else:
                channel = direct_file_channel(env, endpoint, compute,
                                              file_cache, scp,
                                              upload_scp=upload_scp)
            client_proxy = build_caching_proxy(
                env, upstream, name=f"s{n}.client-proxy",
                cache_config=cache_config, block_cache=block_cache,
                channel=channel, metadata=metadata)
            loop = LoopbackTransport(env)
            mount_rpc = RpcClient(env, client_proxy, loop, loop,
                                  name=f"s{n}.mount")
        else:
            # LAN / WAN without client caching: the kernel client talks
            # through the tunnel straight to the server-side proxy.
            mount_rpc = upstream

        nfs_client = NfsClient(env, name=f"s{n}.client")
        mount = nfs_client.mount("/gvfs", mount_rpc, endpoint.root_fh,
                                 mount_options or MountOptions())
        return cls(env=env, scenario=scenario, mount=mount,
                   compute_host=compute, endpoint=endpoint,
                   client_proxy=client_proxy,
                   consistency=MiddlewareConsistency(env),
                   nfs_client=nfs_client)
