"""Meta-data handling (§3.2.2): zero-block maps and action lists.

Middleware generates a meta-data file for certain files using its
application knowledge; the file lives *in the same directory as the
file it is associated with* under a special name, so a proxy can look
it up in-band through ordinary NFS calls.  Contents:

* a **zero map**: which blocks of the file are entirely zero-filled —
  for VM memory state, usually the large majority — letting the
  client-side proxy satisfy those reads locally;
* an **action list** describing how to fetch the file when accessed:
  ``compress`` (gzip on the server), ``remote-copy`` (SCP to the
  client), ``uncompress`` (into the proxy file cache), ``read-locally``
  (serve all requests from the cached copy).

The on-disk representation is a compact JSON document preceded by a
magic line; it round-trips through real bytes so proxies genuinely
fetch and parse it over NFS.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, List, Sequence, Tuple

from repro.nfs.protocol import NFS_BLOCK_SIZE
from repro.storage.vfs import CHUNK_SIZE, FileSystem, SparseFile

__all__ = [
    "METADATA_SUFFIX",
    "FileMetadata",
    "MetadataAction",
    "generate_memory_state_metadata",
    "generate_metadata",
    "metadata_path_for",
]

#: Special filename suffix: meta-data for ``X`` is stored as ``.X.gvfs``.
METADATA_SUFFIX = ".gvfs"

_MAGIC = "GVFS-META-1"


class MetadataAction(Enum):
    """Actions a proxy performs when the described file is accessed."""

    COMPRESS = "compress"
    REMOTE_COPY = "remote-copy"
    UNCOMPRESS = "uncompress"
    READ_LOCALLY = "read-locally"


#: The canonical whole-file transfer pipeline of §3.2.2.
FILE_CHANNEL_ACTIONS: Tuple[MetadataAction, ...] = (
    MetadataAction.COMPRESS,
    MetadataAction.REMOTE_COPY,
    MetadataAction.UNCOMPRESS,
    MetadataAction.READ_LOCALLY,
)


def metadata_path_for(path: str) -> str:
    """Meta-data file path for ``path`` (same directory, special name)."""
    head, _, name = path.rpartition("/")
    return f"{head}/.{name}{METADATA_SUFFIX}"


def metadata_name_for(name: str) -> str:
    """Meta-data leaf name for a file's leaf ``name``."""
    return f".{name}{METADATA_SUFFIX}"


@dataclass(frozen=True)
class FileMetadata:
    """Parsed meta-data of one file."""

    file_size: int
    block_size: int = NFS_BLOCK_SIZE
    zero_blocks: FrozenSet[int] = frozenset()
    actions: Tuple[MetadataAction, ...] = ()

    # -- queries -----------------------------------------------------------
    def is_zero_block(self, block_index: int) -> bool:
        return block_index in self.zero_blocks

    def covers_read(self, offset: int, count: int) -> bool:
        """True when every block of [offset, offset+count) is zero."""
        if count <= 0:
            return True
        first = offset // self.block_size
        last = (min(offset + count, self.file_size) - 1) // self.block_size
        return all(i in self.zero_blocks for i in range(first, last + 1))

    @property
    def wants_file_channel(self) -> bool:
        return MetadataAction.REMOTE_COPY in self.actions

    @property
    def n_blocks(self) -> int:
        return (self.file_size + self.block_size - 1) // self.block_size

    @property
    def n_zero_blocks(self) -> int:
        return len(self.zero_blocks)

    # -- serialization --------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Encode as the on-disk meta-data file content."""
        doc = {
            "file_size": self.file_size,
            "block_size": self.block_size,
            # Run-length encode the sorted zero-block list: [start, len] pairs.
            "zero_runs": _rle(sorted(self.zero_blocks)),
            "actions": [a.value for a in self.actions],
        }
        return (_MAGIC + "\n" + json.dumps(doc, separators=(",", ":"))).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "FileMetadata":
        """Parse an on-disk meta-data file."""
        text = raw.decode()
        magic, _, body = text.partition("\n")
        if magic != _MAGIC:
            raise ValueError(f"bad meta-data magic: {magic!r}")
        doc = json.loads(body)
        zero: List[int] = []
        for start, length in doc["zero_runs"]:
            zero.extend(range(start, start + length))
        return cls(file_size=doc["file_size"], block_size=doc["block_size"],
                   zero_blocks=frozenset(zero),
                   actions=tuple(MetadataAction(a) for a in doc["actions"]))


def _rle(sorted_indices: Sequence[int]) -> List[List[int]]:
    """Run-length encode a sorted index list into [start, length] pairs."""
    runs: List[List[int]] = []
    for idx in sorted_indices:
        if runs and idx == runs[-1][0] + runs[-1][1]:
            runs[-1][1] += 1
        else:
            runs.append([idx, 1])
    return runs


def scan_zero_blocks(data: SparseFile, block_size: int) -> FrozenSet[int]:
    """Indices of all-zero blocks of ``data`` at ``block_size`` granularity.

    Works at the sparse file's chunk granularity, so scanning a mostly
    sparse multi-hundred-MB memory image touches only real chunks.
    """
    if block_size % CHUNK_SIZE == 0:
        per = block_size // CHUNK_SIZE
        n_blocks = (data.size + block_size - 1) // block_size
        zero = set()
        for b in range(n_blocks):
            first = b * per
            last = min((b + 1) * per, data.n_chunks())
            if all(data.chunk_is_zero(i) for i in range(first, last)):
                zero.add(b)
        return frozenset(zero)
    # Fallback for block sizes not aligned to the chunk size.
    n_blocks = (data.size + block_size - 1) // block_size
    zero = set()
    for b in range(n_blocks):
        blob = data.read(b * block_size, block_size)
        if blob.count(0) == len(blob):
            zero.add(b)
    return frozenset(zero)


def generate_metadata(fs: FileSystem, path: str,
                      block_size: int = NFS_BLOCK_SIZE,
                      actions: Sequence[MetadataAction] = (),
                      include_zero_map: bool = True) -> FileMetadata:
    """Pre-process ``path`` on the server and write its meta-data file.

    This is the middleware step of §3.2.2: scan the file for zero
    blocks, record the prescribed actions, and store the result next to
    the file under the special lookup name.
    """
    node = fs.lookup(path)
    zero = scan_zero_blocks(node.data, block_size) if include_zero_map \
        else frozenset()
    meta = FileMetadata(file_size=node.data.size, block_size=block_size,
                        zero_blocks=zero, actions=tuple(actions))
    meta_path = metadata_path_for(path)
    if fs.exists(meta_path):
        fs.unlink(meta_path)
    fs.create(meta_path)
    fs.write(meta_path, meta.to_bytes())
    return meta


def generate_memory_state_metadata(fs: FileSystem, path: str,
                                   block_size: int = NFS_BLOCK_SIZE) -> FileMetadata:
    """Meta-data for a VM memory state file: zero map + file channel.

    "Since for VMware the entire memory state file is always required
    ... and since it is often highly compressible, the above technique
    can be applied very efficiently" (§3.2.2).
    """
    return generate_metadata(fs, path, block_size=block_size,
                             actions=FILE_CHANNEL_ACTIONS,
                             include_zero_map=True)
