"""Proxy-managed disk cache of NFS blocks (§3.2.1 and TR-ACIS-04-001).

Structure follows the paper: the cache lives in *file banks* created on
demand on the proxy host's local disk; each bank holds *frames* grouped
into sets.  Indexing hashes the NFS file handle and block offset; the
hash "exploits spatial locality by mapping consecutive blocks of a file
into consecutive sets of a cache bank", so a streaming fill writes a
bank sequentially.

Frames hold real block bytes (stored in the bank file), so hits return
exactly the bytes a previous fill or local write put there.  Disk time
is charged through the proxy host's :class:`~repro.storage.localfs.
LocalFileSystem`, whose page cache makes re-reads of recently touched
frames free — matching the behaviour that lets warm clones finish in
seconds on real hardware.

Write-back support: locally written frames are marked dirty and pinned;
eviction of a dirty frame hands it back to the caller for upstream
write-back before reuse.

Crash recovery: with ``config.journal`` enabled, every dirty placement
appends a record to a persistent journal file alongside the bank files
(``/{name}/journal``).  Frame *data* always survives a proxy crash (it
lives in the bank files on disk); what dies is the in-memory tag arrays
saying which frame holds which block.  The journal is exactly that tag
information for dirty frames, so a restarted proxy can rebuild its
dirty set and replay the flush instead of losing VM disk writes.

Journal format (text, one record per line):

* ``+ <fsid> <fileid> <block> <bank> <frame> <length> <crc32>`` —
  frame ``frame`` of bank ``bank`` holds dirty block ``block`` of file
  ``(fsid, fileid)``, payload ``length`` bytes with the given checksum.
* ``- <fsid> <fileid> <block>`` — that block was cleaned (flushed
  upstream) or its frame reclaimed; any earlier ``+`` is void.

Replay applies records in order; the checksum guards against a record
whose frame was reused after the record was written (stale records
fail verification and are skipped).  The file is truncated whenever
the dirty set empties, so it stays proportional to outstanding dirty
data, not history.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.config import ProxyCacheConfig
from repro.core.eviction import EvictionPolicy, make_policy
from repro.nfs.protocol import FileHandle
from repro.sim import Environment
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import Inode

__all__ = ["CachedBlock", "ProxyBlockCache"]

BlockKey = Tuple[FileHandle, int]


class _Bank:
    """One cache bank: the bank file's inode plus array-backed frame
    tags (struct-of-arrays — a bank touch reads one list slot instead
    of chasing a per-frame object).

    ``keys[i]``/``lengths[i]``/``dirty[i]``/``lru[i]`` describe frame
    ``i``; a free frame has ``keys[i] is None``.  ``aux`` is the
    eviction policy's optional per-frame state (LFU counts, 2Q queue
    tags) — None under plain LRU.
    """

    __slots__ = ("inode", "keys", "lengths", "dirty", "lru", "aux")

    def __init__(self, inode: Inode, n_frames: int,
                 aux: Optional[List[int]] = None):
        self.inode = inode
        self.keys: List[Optional[BlockKey]] = [None] * n_frames
        self.lengths: List[int] = [0] * n_frames
        self.dirty: List[bool] = [False] * n_frames
        self.lru: List[int] = [0] * n_frames
        self.aux = aux


@dataclass(frozen=True)
class CachedBlock:
    """A block handed back by the cache (hit result or eviction victim)."""

    key: BlockKey
    data: bytes
    dirty: bool


class ProxyBlockCache:
    """Set-associative, disk-backed block cache with pluggable
    within-set eviction (LRU by default; see
    :mod:`repro.core.eviction`)."""

    def __init__(self, env: Environment, storage: LocalFileSystem,
                 config: ProxyCacheConfig = ProxyCacheConfig(),
                 name: str = "proxycache", read_only: bool = False,
                 policy: Optional[EvictionPolicy] = None):
        self.env = env
        self.storage = storage
        self.config = config
        self.name = name
        self.read_only = read_only
        #: Victim-selection strategy; defaults to the config's named
        #: policy so per-level cascade policies need no extra plumbing.
        self.policy = policy if policy is not None \
            else make_policy(config.eviction)
        self._tick = 0
        # bank index -> _Bank (inode + frame tag arrays); created on demand.
        self._banks: Dict[int, _Bank] = {}
        # Reverse map for O(1) lookup: key -> (bank, frame index).
        self._where: Dict[BlockKey, Tuple[int, int]] = {}
        # (fsid, fileid, group) -> bank: the crc32-of-string placement
        # hash is stable but costly, and every block of a group maps to
        # the same bank, so the digest is computed once per group.
        self._bank_memo: Dict[Tuple[str, int, int], int] = {}
        if not storage.fs.exists(self._root()):
            storage.fs.mkdir(self._root(), parents=True)
        # Dirty-frame journal (see module docstring).  ``_journal_live``
        # mirrors the journal's net content: key -> (bank, frame,
        # length, crc32) for every currently dirty frame.
        self.journal_enabled = config.journal
        self._journal_inode: Optional[Inode] = None
        self._journal_offset = 0
        self._journal_live: Dict[BlockKey, Tuple[int, int, int, int]] = {}
        if self.journal_enabled:
            path = f"{self._root()}/journal"
            if storage.fs.exists(path):
                self._journal_inode = storage.fs.lookup(path)
                self._journal_offset = self._journal_inode.data.size
            else:
                self._journal_inode = storage.fs.create(path)
        # Cooperative-caching hooks (both default off, so the hot path
        # of a non-cooperative proxy is untouched).  ``observers`` get
        # told when a clean block becomes shareable or stops being so
        # (see PeerCacheDirectory in repro.net.topology, duck-typed:
        # block_published / block_retracted / cache_cleared, plus
        # cache_crashed for observers that distinguish a crash).  With
        # ``capture_clean_victims`` set, eviction reads *clean* victims
        # back and hands them to the caller like dirty ones, so a
        # cascade level can demote them upstream instead of dropping
        # them (exclusive caching).
        self.observers: List = []
        self.capture_clean_victims = False
        # Statistics
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.writebacks = 0
        self.peer_reads = 0
        self.journal_appends = 0
        self.recovered_blocks = 0
        #: Current number of dirty frames (kept incrementally so the
        #: proxy's dirty high-water check is O(1) per write).
        self.dirty_frames = 0

    def _root(self) -> str:
        return f"/{self.name}"

    # -- geometry ----------------------------------------------------------------
    def _index(self, key: BlockKey) -> Tuple[int, int]:
        """(bank, set) for a key; consecutive blocks -> consecutive sets."""
        fh, block = key
        sets = self.config.sets_per_bank
        group = block // sets                       # which run of blocks
        memo_key = (fh.fsid, fh.fileid, group)
        bank = self._bank_memo.get(memo_key)
        if bank is None:
            # Stable across processes (Python's str hash is randomized).
            digest = zlib.crc32(f"{fh.fsid}:{fh.fileid}:{group}".encode())
            bank = digest % self.config.n_banks
            self._bank_memo[memo_key] = bank
        return bank, block % sets

    def _bank(self, bank_index: int) -> _Bank:
        bank = self._banks.get(bank_index)
        if bank is None:
            # "Cache banks are created on the local disk by the proxy on
            # demand."
            inode = self.storage.fs.create(f"{self._root()}/bank{bank_index:04d}")
            n = self.config.frames_per_bank
            bank = _Bank(inode, n, self.policy.new_bank(n))
            self._banks[bank_index] = bank
        return bank

    def _frame_offset(self, frame_index: int) -> int:
        """Byte offset of a frame in its bank file.

        The layout is *way-major*: all of way 0's frames first (one per
        set, in set order), then way 1's, and so on.  Consecutive blocks
        of a file land in consecutive sets (see :meth:`_index`), and a
        streaming fill of an idle set picks way 0 first — so the fill
        really does write the bank file sequentially, as the paper's
        hash design intends, and multi-block helpers can merge a run
        into a single bank-file I/O.
        """
        a = self.config.associativity
        set_index, way = divmod(frame_index, a)
        return (way * self.config.sets_per_bank + set_index) \
            * self.config.block_size

    # -- operations ------------------------------------------------------------------
    def lookup(self, key: BlockKey) -> Generator:
        """Process: probe the cache; returns :class:`CachedBlock` or None.

        A hit is charged the bank-file read (usually free via the host
        page cache, a disk access when the frame is cold on disk).
        """
        where = self._where.get(key)
        if where is None:
            self.misses += 1
            return None
        bank_index, frame_index = where
        bank = self._banks[bank_index]
        self._tick += 1
        self.policy.on_hit(bank, frame_index, self._tick)
        data = yield from self.storage.timed_read_inode(
            bank.inode, self._frame_offset(frame_index),
            self.config.block_size)
        self.hits += 1
        length = bank.lengths[frame_index]
        if length != len(data):
            data = data[:length]
        return CachedBlock(key, data, bank.dirty[frame_index])

    def _place(self, key: BlockKey, data: bytes, dirty: bool) -> Generator:
        """Process: tag a frame for ``key`` without writing the bank file.

        Returns ``(inode, frame_offset, victim)`` — the caller performs
        (and is charged for) the actual bank-file write, so a run of
        placements can merge physically adjacent frames into one I/O.
        Evicting a dirty frame reads the old bytes back (charged here)
        and hands them out as ``victim``; with
        ``capture_clean_victims`` set, clean victims are read back and
        handed out the same way (``victim.dirty`` tells them apart).
        """
        if self.read_only and dirty:
            raise PermissionError(f"{self.name}: dirty insert into shared "
                                  "read-only cache")
        if len(data) > self.config.block_size:
            raise ValueError(f"block larger than frame: {len(data)}")
        bank_index, set_index = self._index(key)
        bank = self._bank(bank_index)
        keys = bank.keys
        victim: Optional[CachedBlock] = None

        existing = self._where.get(key)
        if existing is not None and existing[0] == bank_index:
            frame_index = existing[1]
        else:
            # Choose a frame in the set: free first, else ask the
            # eviction policy to pick a victim within the full set.
            a = self.config.associativity
            base = set_index * a
            frame_index = None
            for i in range(base, base + a):
                if keys[i] is None:
                    frame_index = i
                    break
            if frame_index is None:
                frame_index = self.policy.victim(bank, base, a)
                self.evictions += 1
                old_dirty = bank.dirty[frame_index]
                if old_dirty or self.capture_clean_victims:
                    old_data = yield from self.storage.timed_read_inode(
                        bank.inode, self._frame_offset(frame_index),
                        self.config.block_size)
                    if keys[frame_index] is not None:
                        victim = CachedBlock(
                            keys[frame_index],
                            old_data[:bank.lengths[frame_index]], old_dirty)
                # The tag may already be gone if the cache was flushed
                # while this placement waited on the victim read, so
                # re-read it rather than trusting a pre-wait snapshot.
                old_key = keys[frame_index]
                if old_key is not None:
                    self._where.pop(old_key, None)
                    if self.observers:
                        self._notify_retracted(old_key)

        self._tick += 1
        was_dirty = keys[frame_index] is not None and bank.dirty[frame_index]
        self.dirty_frames += (dirty - was_dirty)
        new_block = keys[frame_index] != key
        keys[frame_index] = key
        bank.lengths[frame_index] = len(data)
        bank.dirty[frame_index] = dirty
        self.policy.on_fill(bank, frame_index, self._tick, new_block)
        self._where[key] = (bank_index, frame_index)
        self.insertions += 1
        if self.journal_enabled:
            if victim is not None:
                # The victim's frame is being reused; its bytes survive
                # only in the caller's write-back, which a crash would
                # lose anyway — void the record so replay can't resurrect
                # the frame's new contents under the old key.
                self._journal_remove(victim.key)
            if dirty:
                crc = zlib.crc32(data)
                self._journal_live[key] = (bank_index, frame_index,
                                           len(data), crc)
                fh, block = key
                yield from self._journal_append(
                    f"+ {fh.fsid} {fh.fileid} {block} {bank_index} "
                    f"{frame_index} {len(data)} {crc}\n")
            elif key in self._journal_live:
                self._journal_remove(key)
        if self.observers and dirty:
            # A clean frame re-tagged dirty (local write over a cached
            # block) stops being shareable until written back.
            self._notify_retracted(key)
        return bank.inode, self._frame_offset(frame_index), victim

    def insert(self, key: BlockKey, data: bytes,
               dirty: bool = False) -> Generator:
        """Process: place a block; returns an evicted
        :class:`CachedBlock` victim or None.  Victims are dirty frames
        needing upstream write-back — plus, with
        ``capture_clean_victims``, clean frames eligible for demotion."""
        inode, offset, victim = yield from self._place(key, data, dirty)
        yield from self.storage.timed_write_inode(inode, data, offset)
        if self.observers and not dirty:
            # Publish only after the bank file holds the bytes: a peer
            # may read the frame the moment the directory learns of it.
            if key in self._where and not self.is_dirty(key):
                self._notify_published(key)
        return victim

    def insert_many(self, items: List[Tuple[BlockKey, bytes]],
                    dirty: bool = False) -> Generator:
        """Process: place several blocks, merging physically adjacent
        frame writes into single bank-file I/Os.

        A readahead window of consecutive blocks lands in consecutive
        sets of one bank with the way-major frame layout, so the whole
        window usually costs one disk write instead of one per block.
        Returns the list of evicted :class:`CachedBlock` victims
        (possibly empty; clean ones only with ``capture_clean_victims``).
        """
        victims: List[CachedBlock] = []
        writes: List[Tuple[int, object, int, bytes]] = []
        for key, data in items:
            inode, offset, victim = yield from self._place(key, data, dirty)
            if victim is not None:
                victims.append(victim)
            writes.append((id(inode), inode, offset, data))
        writes.sort(key=lambda w: (w[0], w[2]))
        bs = self.config.block_size
        n = len(writes)
        i = 0
        while i < n:
            _, inode, offset, data = writes[i]
            j = i + 1
            while (j < n and writes[j][1] is inode
                   and writes[j][2] == offset + (j - i) * bs
                   and len(writes[j - 1][3]) == bs):
                j += 1
            # A single-frame run writes its block without re-buffering;
            # longer runs join once (no incremental bytearray growth).
            if j > i + 1:
                data = b"".join(w[3] for w in writes[i:j])
            yield from self.storage.timed_write_inode(inode, data, offset)
            i = j
        if self.observers and not dirty:
            for key, _ in items:
                if key in self._where and not self.is_dirty(key):
                    self._notify_published(key)
        return victims

    # -- cooperative-caching feed ------------------------------------------------
    def _notify_published(self, key: BlockKey) -> None:
        for obs in self.observers:
            obs.block_published(key)

    def _notify_retracted(self, key: BlockKey) -> None:
        for obs in self.observers:
            obs.block_retracted(key)

    def _notify_cleared(self) -> None:
        for obs in self.observers:
            obs.cache_cleared()

    def _notify_crashed(self) -> None:
        # Crash is a distinct observer event from an orderly clear: a
        # peer directory must also release any in-flight borrow this
        # member was the designated fetcher for.  Observers predating
        # the distinction fall back to the clear notification.
        for obs in self.observers:
            crashed = getattr(obs, "cache_crashed", None)
            if crashed is not None:
                crashed()
            else:
                obs.cache_cleared()

    def read_cached(self, key: BlockKey) -> Generator:
        """Process: read a clean cached block on behalf of a peer proxy.

        Serving a peer must not distort this cache's own locality
        signals, so there is no hit/miss accounting and no recency
        update.  Returns the block's bytes, or None when the block is
        absent or dirty — dirty frames are session-private until they
        have been written back upstream.
        """
        where = self._where.get(key)
        if where is None:
            return None
        bank_index, frame_index = where
        bank = self._banks[bank_index]
        if bank.dirty[frame_index]:
            return None
        data = yield from self.storage.timed_read_inode(
            bank.inode, self._frame_offset(frame_index),
            self.config.block_size)
        # Re-validate after the disk wait: a concurrent placement may
        # have reused the frame, making the bytes just read stale.
        if bank.keys[frame_index] != key or bank.dirty[frame_index]:
            return None
        self.peer_reads += 1
        length = bank.lengths[frame_index]
        return data if length == len(data) else data[:length]

    def corrupt_frame(self, key: BlockKey) -> bool:
        """Garble a cached frame's on-disk bytes, leaving its tag valid.

        Fault injection only (untimed, mutates the bank file directly):
        this is the silent-corruption case — a later lookup serves the
        garbled bytes as a perfectly ordinary hit, which only an
        end-to-end check above the cache can catch.  Corrupting a
        *dirty* frame also makes its journal record's crc stale, so
        recovery will discard exactly that record.  Returns whether a
        frame was actually garbled.
        """
        where = self._where.get(key)
        if where is None:
            return False
        bank_index, frame_index = where
        bank = self._banks[bank_index]
        length = bank.lengths[frame_index]
        if length == 0:
            return False
        offset = self._frame_offset(frame_index)
        data = bank.inode.data.read(offset, length)
        head = bytes(b ^ 0xFF for b in data[:64])
        bank.inode.data.write(offset, head + data[64:])
        return True

    def discard(self, key: BlockKey) -> bool:
        """Drop one *clean* cached frame (checksum-repair refetch path).

        Untimed tag surgery: the frame becomes free, observers see a
        retraction so no peer is pointed at the dropped copy.  Dirty
        frames are refused — they hold the only copy of the data.
        Returns whether the frame was dropped.
        """
        where = self._where.get(key)
        if where is None:
            return False
        bank_index, frame_index = where
        bank = self._banks[bank_index]
        if bank.dirty[frame_index]:
            return False
        bank.keys[frame_index] = None
        bank.lengths[frame_index] = 0
        bank.lru[frame_index] = 0
        del self._where[key]
        if self.observers:
            self._notify_retracted(key)
        return True

    def iter_clean_keys(self) -> List[BlockKey]:
        """Snapshot of every clean cached key, in deterministic order —
        seeds a peer-cache directory when a warm cache joins."""
        banks = self._banks
        out = [key for key, (b, f) in self._where.items()
               if not banks[b].dirty[f]]
        out.sort(key=lambda k: (k[0].fsid, k[0].fileid, k[1]))
        return out

    def read_many(self, keys: List[BlockKey]) -> Generator:
        """Process: fetch several cached blocks for upstream write-back,
        one bank-file read per physically contiguous frame run.

        A short (partial) frame ends its run — the same rule as
        :meth:`dirty_runs` — and the merged read's extent is trimmed to
        the last frame's payload, so a span read never pulls bytes past
        the data it actually hands back.

        Returns the blocks' bytes in ``keys`` order.  Raises
        :class:`KeyError` if any key is not cached.
        """
        frames_at: List[Tuple[object, int, int]] = []   # (inode, offset, len)
        for key in keys:
            where = self._where.get(key)
            if where is None:
                raise KeyError(f"{key} not cached")
            bank_index, frame_index = where
            bank = self._banks[bank_index]
            frames_at.append((bank.inode, self._frame_offset(frame_index),
                              bank.lengths[frame_index]))
        bs = self.config.block_size
        n = len(frames_at)
        out: List[bytes] = []
        i = 0
        while i < n:
            inode, offset, _ = frames_at[i]
            j = i + 1
            while (j < n and frames_at[j][0] is inode
                   and frames_at[j][1] == offset + (j - i) * bs
                   and frames_at[j - 1][2] == bs):
                j += 1
            span_bytes = (j - 1 - i) * bs + frames_at[j - 1][2]
            span = yield from self.storage.timed_read_inode(
                inode, offset, span_bytes)
            if j == i + 1:
                # Single frame: the read is already exactly the payload.
                out.append(span if len(span) == frames_at[i][2]
                           else span[:frames_at[i][2]])
            else:
                view = memoryview(span)
                for k in range(i, j):
                    length = frames_at[k][2]
                    start = (k - i) * bs
                    out.append(bytes(view[start:start + length]))
            i = j
        self.writebacks += len(keys)
        return out

    # -- dirty-frame journal ---------------------------------------------------
    def _journal_append(self, record: str) -> Generator:
        """Process: synchronously append one record to the journal.

        Appends are sequential at a tracked offset, so the disk model
        charges them at streaming rates — this is the per-write cost of
        crash safety.
        """
        data = record.encode()
        # Reserve the append position before yielding: concurrent dirty
        # placements (pipelined WRITEs) must not capture the same offset.
        offset = self._journal_offset
        self._journal_offset += len(data)
        yield from self.storage.timed_write_inode(
            self._journal_inode, data, offset, sync=True)
        self.journal_appends += 1

    def _journal_remove(self, key: BlockKey) -> None:
        """Void a key's journal record (untimed).

        Removal records are a few dozen bytes riding the next sequential
        append; real proxies batch them with the flush's COMMIT, so they
        are not charged individually.  When the dirty set empties the
        journal is compacted to an empty file.
        """
        if self._journal_live.pop(key, None) is None:
            return
        if not self._journal_live:
            self._journal_inode.data.truncate(0)
            self._journal_offset = 0
            return
        fh, block = key
        record = f"- {fh.fsid} {fh.fileid} {block}\n".encode()
        self._journal_inode.data.write(self._journal_offset, record)
        self._journal_offset += len(record)

    def crash(self) -> None:
        """Simulate proxy process death: in-memory frame tags are lost.

        Bank files and the journal survive on disk (``inode.data`` is
        the media); :meth:`recover_from_journal` rebuilds the dirty set
        from them.  Clean cached frames are simply forgotten — losing
        them costs refetches, never data.
        """
        for bank in self._banks.values():
            n = len(bank.keys)
            bank.keys[:] = [None] * n
            bank.dirty[:] = [False] * n
            bank.lengths[:] = [0] * n
            bank.lru[:] = [0] * n
            self.policy.clear_bank(bank)
        self._where.clear()
        self.dirty_frames = 0
        self._journal_live.clear()
        if self.observers:
            self._notify_crashed()
        if self.journal_enabled:
            # Re-derive the append position from the surviving file.
            self._journal_offset = self._journal_inode.data.size

    def recover_from_journal(self) -> Generator:
        """Process: replay the journal, rebuilding dirty-frame tags.

        Reads the journal file, applies add/remove records in order,
        then verifies each surviving record's checksum against the
        frame's on-disk bytes (a mismatch means the frame was reused
        after the record — the record is stale and skipped).  Returns
        the sorted list of recovered dirty :data:`BlockKey`\\ s.
        """
        if not self.journal_enabled:
            return []
        inode = self._journal_inode
        raw = yield from self.storage.timed_read_inode(
            inode, 0, inode.data.size)
        live: Dict[BlockKey, Tuple[int, int, int, int]] = {}
        for line in raw.decode().splitlines():
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "+" and len(parts) == 8:
                key = (FileHandle(parts[1], int(parts[2])), int(parts[3]))
                live[key] = (int(parts[4]), int(parts[5]),
                             int(parts[6]), int(parts[7]))
            elif parts[0] == "-" and len(parts) == 4:
                live.pop((FileHandle(parts[1], int(parts[2])),
                          int(parts[3])), None)
        recovered: List[BlockKey] = []
        for key, (bank_index, frame_index, length, crc) in live.items():
            bank = self._bank(bank_index)
            data = yield from self.storage.timed_read_inode(
                bank.inode, self._frame_offset(frame_index),
                self.config.block_size)
            data = data[:length]
            if len(data) != length or zlib.crc32(data) != crc:
                continue
            self._tick += 1
            bank.keys[frame_index] = key
            bank.lengths[frame_index] = length
            bank.dirty[frame_index] = True
            self.policy.on_fill(bank, frame_index, self._tick, True)
            self._where[key] = (bank_index, frame_index)
            self._journal_live[key] = (bank_index, frame_index, length, crc)
            recovered.append(key)
        self.dirty_frames += len(recovered)
        self._journal_offset = inode.data.size
        self.recovered_blocks += len(recovered)
        recovered.sort(key=lambda k: (k[0].fsid, k[0].fileid, k[1]))
        return recovered

    def mark_clean(self, key: BlockKey) -> None:
        """Clear the dirty tag after a successful upstream write-back."""
        where = self._where.get(key)
        if where is None:
            return
        bank = self._banks[where[0]]
        if bank.dirty[where[1]]:
            bank.dirty[where[1]] = False
            self.dirty_frames -= 1
            if self.observers:
                self._notify_published(key)
        if self.journal_enabled:
            self._journal_remove(key)

    def dirty_blocks(self, fh: Optional[FileHandle] = None) -> List[BlockKey]:
        """Keys of dirty frames (optionally restricted to one file)."""
        out = []
        banks = self._banks
        for key, (bank_index, frame_index) in self._where.items():
            if fh is not None and key[0] != fh:
                continue
            if banks[bank_index].dirty[frame_index]:
                out.append(key)
        out.sort(key=lambda k: (k[0].fsid, k[0].fileid, k[1]))
        return out

    def dirty_runs(self, max_run_bytes: int = 0) -> List[List[BlockKey]]:
        """Dirty keys grouped into runs mergeable into one upstream WRITE.

        A run is a maximal sequence of dirty blocks of the same file with
        consecutive block indices, capped at ``max_run_bytes`` total
        (0 or a value at or below the block size means one block per
        run).  A short (partial) block can only end a run — merging past
        it would write stale padding — so runs also break after any
        frame whose payload is not a full block.
        """
        bs = self.config.block_size
        per_run = max(max_run_bytes // bs, 1)
        runs: List[List[BlockKey]] = []
        run: List[BlockKey] = []
        for key in self.dirty_blocks():
            if run:
                prev = run[-1]
                where = self._where[prev]
                prev_len = self._banks[where[0]].lengths[where[1]]
                if (key[0] != prev[0] or key[1] != prev[1] + 1
                        or prev_len != bs or len(run) >= per_run):
                    runs.append(run)
                    run = []
            run.append(key)
        if run:
            runs.append(run)
        return runs

    def is_dirty(self, key: BlockKey) -> bool:
        where = self._where.get(key)
        if where is None:
            return False
        return self._banks[where[0]].dirty[where[1]]

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._where

    def read_for_writeback(self, key: BlockKey) -> Generator:
        """Process: fetch a dirty block's bytes for upstream write-back."""
        where = self._where.get(key)
        if where is None:
            raise KeyError(f"{key} not cached")
        bank_index, frame_index = where
        bank = self._banks[bank_index]
        data = yield from self.storage.timed_read_inode(
            bank.inode, self._frame_offset(frame_index),
            self.config.block_size)
        self.writebacks += 1
        length = bank.lengths[frame_index]
        return data if length == len(data) else data[:length]

    def flush_tags(self) -> None:
        """Drop every frame (cold-cache setup).  Dirty data is lost —
        callers flush upstream first, as the experiments do."""
        for bank in self._banks.values():
            n = len(bank.keys)
            # Slice-assign so in-flight placements holding a reference
            # to these lists observe the cleared tags.
            bank.keys[:] = [None] * n
            bank.dirty[:] = [False] * n
            bank.lengths[:] = [0] * n
            self.policy.clear_bank(bank)
        self._where.clear()
        self.dirty_frames = 0
        if self.observers:
            self._notify_cleared()
        if self.journal_enabled and self._journal_live:
            self._journal_live.clear()
            self._journal_inode.data.truncate(0)
            self._journal_offset = 0

    def reset_stats(self) -> None:
        """Zero the counters without disturbing cache contents —
        benchmarks separate warm-up from the measured phase this way
        instead of rebuilding the cache."""
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.writebacks = 0
        self.peer_reads = 0

    @property
    def cached_blocks(self) -> int:
        return len(self._where)

    @property
    def banks_created(self) -> int:
        return len(self._banks)
