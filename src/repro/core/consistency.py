"""Middleware-driven consistency (§3.2.1).

Kernel NFS clients cannot safely keep long-term write-back state
because they know nothing about sharing.  GVFS moves the decision up a
layer: the proxy holds dirty data until the *middleware* — which knows
tasks are independent (Condor-style scheduling) or that a session has
ended — signals it.  The real implementation uses O/S signals; here the
signal delivery is a method call that starts the corresponding proxy
process, with a log the tests and experiments can inspect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, List

from repro.core.proxy import GvfsProxy
from repro.sim import Environment

__all__ = ["ConsistencySignal", "MiddlewareConsistency"]


class ConsistencySignal(enum.Enum):
    """Signals middleware can deliver to a proxy."""

    #: Write dirty cached data back to the server (keep caches warm).
    WRITE_BACK = "SIGUSR1"
    #: Write back, then invalidate all cached contents (session end /
    #: ownership handoff to another client).
    FLUSH = "SIGUSR2"


@dataclass(frozen=True)
class SignalRecord:
    """One delivered signal, for session accounting."""

    time: float
    signal: ConsistencySignal
    proxy_name: str
    duration: float


class MiddlewareConsistency:
    """The middleware's handle on a session's consistency points."""

    def __init__(self, env: Environment):
        self.env = env
        self.log: List[SignalRecord] = []

    def signal(self, proxy: GvfsProxy,
               sig: ConsistencySignal) -> Generator:
        """Process: deliver ``sig`` to ``proxy`` and wait for completion."""
        start = self.env.now
        yield self.env.process(proxy.flush())
        if sig is ConsistencySignal.FLUSH:
            proxy.invalidate_caches()
        self.log.append(SignalRecord(
            time=start, signal=sig, proxy_name=proxy.config.name,
            duration=self.env.now - start))

    def session_end(self, proxies: List[GvfsProxy]) -> Generator:
        """Process: flush every proxy of a session, client-side first."""
        for proxy in proxies:
            yield self.env.process(self.signal(proxy, ConsistencySignal.FLUSH))

    def checkpoint(self, proxies: List[GvfsProxy]) -> Generator:
        """Process: write back without invalidating (idle-time sync)."""
        for proxy in proxies:
            yield self.env.process(self.signal(proxy,
                                               ConsistencySignal.WRITE_BACK))
