"""NFS substrate: a userspace NFSv3-subset implementation.

GVFS works by interposing user-level proxies on the NFS RPC path
between unmodified kernel clients and servers.  This package provides
both ends of that path: typed RPC request/reply messages
(:mod:`~repro.nfs.protocol`), an RPC transport layer over simulated
links and SSH tunnels (:mod:`~repro.nfs.rpc`), a server exporting a
local filesystem (:mod:`~repro.nfs.server`), and a client with a
kernel-style memory buffer cache (:mod:`~repro.nfs.client`).

The proxy in :mod:`repro.core` speaks exactly this protocol, so the
interception path matches the paper's architecture one-to-one.
"""

from repro.nfs.protocol import (
    NFS_BLOCK_SIZE,
    NFS_MAX_BLOCK_SIZE,
    FileHandle,
    Fattr,
    NfsError,
    NfsProc,
    NfsReply,
    NfsRequest,
    NfsStatus,
)
from repro.nfs.rpc import (LoopbackTransport, RpcClient, RpcStats,
                           RpcTimeout, Transport)
from repro.nfs.server import NfsServer
from repro.nfs.mountd import Export, MountDaemon, MountError
from repro.nfs.buffercache import BufferCache
from repro.nfs.client import MountedNfs, NfsClient

__all__ = [
    "BufferCache",
    "Export",
    "Fattr",
    "FileHandle",
    "LoopbackTransport",
    "MountedNfs",
    "NFS_BLOCK_SIZE",
    "NFS_MAX_BLOCK_SIZE",
    "NfsClient",
    "NfsError",
    "NfsProc",
    "NfsReply",
    "NfsRequest",
    "NfsServer",
    "MountDaemon",
    "MountError",
    "NfsStatus",
    "RpcClient",
    "RpcTimeout",
    "RpcStats",
    "Transport",
]
