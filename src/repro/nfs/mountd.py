"""The MOUNT protocol: export tables and mount authorization.

Real NFS deployments gate file-handle bootstrap through ``mountd``: a
client asks to mount an exported subtree and receives its root handle
only if the export table authorizes it.  In GVFS this is the
*kernel-level* access-control layer underneath the middleware's logical
accounts (§3.1): exports on image servers are restricted to localhost
(the server-side proxy), so the only WAN-visible door is the
authenticated, identity-mapping proxy chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.nfs.server import NfsServer
from repro.sim import Environment
from repro.storage.vfs import FsError

__all__ = ["Export", "MountDaemon", "MountError"]


class MountError(Exception):
    """Mount request refused (unknown export or unauthorized client)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


@dataclass(frozen=True)
class Export:
    """One exported subtree with its authorization list.

    ``clients`` holds host names allowed to mount; ``"*"`` admits
    everyone (the paper-era equivalent of an open lab export).
    ``read_only`` refuses... nothing at mount time but is reported to
    the client, which mounts accordingly.
    """

    path: str
    clients: Tuple[str, ...] = ("localhost",)
    read_only: bool = False

    def admits(self, host: str) -> bool:
        return "*" in self.clients or host in self.clients


class MountDaemon:
    """mountd for one NFS server."""

    #: CPU cost of one mount transaction (portmap + auth + reply).
    MOUNT_CPU = 300e-6

    def __init__(self, env: Environment, server: NfsServer):
        self.env = env
        self.server = server
        self._exports: Dict[str, Export] = {}
        self._mounts: List[Tuple[str, str]] = []  # (host, export path)

    # -- export table ---------------------------------------------------------
    def add_export(self, path: str, clients: Sequence[str] = ("localhost",),
                   read_only: bool = False) -> Export:
        """Publish a subtree; the path must exist on the server."""
        if not self.server.export.fs.exists(path):
            raise MountError("ENOENT", f"no such directory: {path}")
        node = self.server.export.fs.lookup(path)
        if node.kind != "dir":
            raise MountError("ENOTDIR", path)
        export = Export(path=path, clients=tuple(clients),
                        read_only=read_only)
        self._exports[path] = export
        return export

    def remove_export(self, path: str) -> None:
        if path not in self._exports:
            raise MountError("ENOENT", f"not exported: {path}")
        del self._exports[path]

    def exports(self) -> List[Export]:
        """The export list (what ``showmount -e`` prints)."""
        return [self._exports[p] for p in sorted(self._exports)]

    # -- the MNT procedure --------------------------------------------------------
    def mount(self, host: str, path: str) -> Generator:
        """Process: authorize ``host`` and hand out the subtree's root
        file handle.  Raises :class:`MountError` on refusal."""
        yield self.env.timeout(self.MOUNT_CPU)
        export = self._best_export(path)
        if export is None:
            raise MountError("EACCES", f"not exported: {path}")
        if not export.admits(host):
            raise MountError("EACCES",
                             f"host {host!r} not in export list of "
                             f"{export.path}")
        try:
            node = self.server.export.fs.lookup(path)
        except FsError as exc:
            raise MountError("ENOENT", str(exc)) from None
        self._mounts.append((host, export.path))
        return self.server.fh_of(node)

    def unmount(self, host: str, path: str) -> Generator:
        """Process: record a UMNT."""
        yield self.env.timeout(self.MOUNT_CPU / 3)
        export = self._best_export(path)
        key = (host, export.path if export else path)
        if key in self._mounts:
            self._mounts.remove(key)

    def _best_export(self, path: str) -> Optional[Export]:
        """Longest-prefix export covering ``path`` (subtree mounts)."""
        best = None
        for export_path, export in self._exports.items():
            if path == export_path or path.startswith(export_path.rstrip("/")
                                                      + "/"):
                if best is None or len(export_path) > len(best.path):
                    best = export
        return best

    def active_mounts(self) -> List[Tuple[str, str]]:
        """(host, export) pairs currently mounted (``showmount -a``)."""
        return list(self._mounts)
