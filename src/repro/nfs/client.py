"""Kernel-style NFS client: mounts, path walking, cached block I/O.

Reproduces the behaviours that matter to the paper's evaluation:

* a **memory buffer cache** of limited capacity (hits are free, the
  working sets of VM workloads overflow it on WAN paths),
* **asynchronous staged writes** drained by a bounded-concurrency
  flusher (the "staging writes for a limited time in kernel memory
  buffers" of §3.2.1) with a dirty-pool limit that throttles writers
  to the server's write bandwidth on big bursts,
* **close-to-open consistency**: GETATTR revalidation on open (block
  cache invalidated when the server-side mtime moved), flush + COMMIT
  on close,
* dentry + attribute caching with a timeout, so name-heavy workloads
  (kernel compilation) show the right LOOKUP/GETATTR traffic.

All calls that touch the network are simulation processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.nfs.buffercache import BufferCache
from repro.nfs.protocol import (
    NFS_BLOCK_SIZE,
    Fattr,
    FileHandle,
    NfsError,
    NfsProc,
    NfsRequest,
    NfsStatus,
)
from repro.nfs.rpc import RpcClient
from repro.sim import AllOf, Environment

__all__ = ["MountOptions", "MountedNfs", "NfsClient", "NfsFile"]


@dataclass(frozen=True)
class MountOptions:
    """Tunables of one NFS mount (era-accurate defaults)."""

    block_size: int = NFS_BLOCK_SIZE       # rsize/wsize
    attr_timeout: float = 3.0              # attribute cache validity (s)
    cache_bytes: int = 64 * 1024 * 1024    # buffer cache capacity
    dirty_limit: int = 8 * 1024 * 1024     # staged-write pool limit
    write_concurrency: int = 4             # async WRITE RPCs in flight (biods)
    readahead: int = 0                     # extra blocks prefetched on
                                           # sequential misses (0 = serial)
    nfs_version: int = 3                   # 2 = all writes stable, no COMMIT
    write_gather_bytes: int = 0            # merge adjacent staged blocks
                                           # into one WRITE up to this size
                                           # (0 = one RPC per block)

    def __post_init__(self):
        if self.nfs_version not in (2, 3):
            raise ValueError(f"unsupported NFS version: {self.nfs_version}")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.write_gather_bytes < 0:
            raise ValueError("write_gather_bytes must be >= 0")


class NfsClient:
    """One host's NFS client holding any number of mounts."""

    def __init__(self, env: Environment, name: str = "nfsclient"):
        self.env = env
        self.name = name
        self.mounts: Dict[str, "MountedNfs"] = {}

    def mount(self, point: str, rpc: RpcClient, root_fh: FileHandle,
              options: Optional[MountOptions] = None) -> "MountedNfs":
        """Attach a served filesystem at ``point``."""
        if point in self.mounts:
            raise ValueError(f"mount point busy: {point}")
        m = MountedNfs(self.env, rpc, root_fh, options or MountOptions(),
                       name=f"{self.name}:{point}")
        self.mounts[point] = m
        return m

    def unmount(self, point: str) -> Generator:
        """Process: flush outstanding writes, then detach."""
        m = self.mounts.pop(point, None)
        if m is None:
            raise ValueError(f"not mounted: {point}")
        yield from m.flush_all()


class MountedNfs:
    """A mounted remote filesystem (the client half of one session)."""

    def __init__(self, env: Environment, rpc: RpcClient, root_fh: FileHandle,
                 options: MountOptions, name: str = "mount"):
        self.env = env
        self.rpc = rpc
        self.root_fh = root_fh
        self.options = options
        self.name = name
        self.cache = BufferCache(options.cache_bytes, options.block_size)
        # Dentry cache: path -> (fh, attrs, stamp); attr cache by handle.
        self._dentries: Dict[str, Tuple[FileHandle, Fattr, float]] = {}
        self._attrs_by_fh: Dict[FileHandle, Tuple[Fattr, float]] = {}
        self._known_mtime: Dict[FileHandle, float] = {}
        # Write-behind machinery.
        self._flusher_running = False
        self._dirty_waiters: List = []
        self._inflight: set = set()       # blocks with a WRITE on the wire
        self._inflight_waiters: List = []

    # -- path resolution ------------------------------------------------------
    @staticmethod
    def _components(path: str) -> List[str]:
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute within mount: {path!r}")
        return [p for p in path.split("/") if p]

    def _dentry_fresh(self, path: str) -> Optional[Tuple[FileHandle, Fattr]]:
        hit = self._dentries.get(path)
        if hit is None:
            return None
        fh, attrs, stamp = hit
        if self.env.now - stamp > self.options.attr_timeout:
            return None
        return fh, attrs

    def _remember(self, path: str, fh: FileHandle, attrs: Fattr) -> None:
        self._dentries[path] = (fh, attrs, self.env.now)
        self._attrs_by_fh[fh] = (attrs, self.env.now)

    def _attrs_fresh(self, fh: FileHandle) -> Optional[Fattr]:
        hit = self._attrs_by_fh.get(fh)
        if hit is None:
            return None
        attrs, stamp = hit
        if self.env.now - stamp > self.options.attr_timeout:
            return None
        return attrs

    def resolve(self, path: str, follow: bool = True,
                _depth: int = 0) -> Generator:
        """Process: walk ``path`` with LOOKUPs; returns ``(fh, attrs)``."""
        if _depth > 8:
            raise NfsError(NfsStatus.INVAL, f"symlink loop at {path}")
        fh, attrs = self.root_fh, None
        walked = ""
        parts = self._components(path)
        for i, part in enumerate(parts):
            walked += "/" + part
            cached = self._dentry_fresh(walked)
            if cached is not None:
                fh, attrs = cached
            else:
                reply = yield from self.rpc.call(NfsRequest(
                    NfsProc.LOOKUP, fh=fh, name=part))
                reply.raise_for_status(walked)
                fh, attrs = reply.fh, reply.attrs
                self._remember(walked, fh, attrs)
            is_leaf = i == len(parts) - 1
            if not is_leaf and attrs is not None and attrs.kind == "symlink":
                reply = yield from self.rpc.call(NfsRequest(
                    NfsProc.READLINK, fh=fh))
                reply.raise_for_status(walked)
                resolved = yield from self.resolve(
                    reply.target, follow=True, _depth=_depth + 1)
                fh, attrs = resolved
        if attrs is None:  # bare "/" — fetch root attrs
            reply = yield from self.rpc.call(NfsRequest(
                NfsProc.GETATTR, fh=fh))
            reply.raise_for_status(path)
            attrs = reply.attrs
        if follow and attrs.kind == "symlink":
            reply = yield from self.rpc.call(NfsRequest(
                NfsProc.READLINK, fh=fh))
            reply.raise_for_status(path)
            resolved = yield from self.resolve(
                reply.target, follow=True, _depth=_depth + 1)
            fh, attrs = resolved
        return fh, attrs

    # -- namespace wrappers -------------------------------------------------------
    def _parent(self, path: str) -> Tuple[str, str]:
        parts = self._components(path)
        if not parts:
            raise ValueError("operation on mount root")
        return "/" + "/".join(parts[:-1]), parts[-1]

    def stat(self, path: str) -> Generator:
        """Process: fresh attributes of ``path`` (GETATTR semantics)."""
        fh, _ = yield from self.resolve(path)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.GETATTR, fh=fh))
        reply.raise_for_status(path)
        self._remember(path, fh, reply.attrs)
        return reply.attrs

    def open(self, path: str) -> Generator:
        """Process: open with close-to-open revalidation; returns NfsFile."""
        fh, attrs = yield from self.resolve(path)
        # Revalidate: a fresh GETATTR unless this handle's attrs are young.
        fresh = self._attrs_fresh(fh)
        if fresh is None:
            reply = yield from self.rpc.call(NfsRequest(
                NfsProc.GETATTR, fh=fh))
            reply.raise_for_status(path)
            attrs = reply.attrs
            self._attrs_by_fh[fh] = (attrs, self.env.now)
        else:
            attrs = fresh
        last = self._known_mtime.get(fh)
        if last is not None and attrs.mtime != last:
            self.cache.invalidate_file(fh)
        self._known_mtime[fh] = attrs.mtime
        return NfsFile(self, fh, attrs)

    def create(self, path: str, exclusive: bool = True) -> Generator:
        """Process: create a regular file; returns an open NfsFile."""
        parent_path, name = self._parent(path)
        pfh, _ = yield from self.resolve(parent_path)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.CREATE, fh=pfh, name=name, exclusive=exclusive))
        reply.raise_for_status(path)
        self._remember(path, reply.fh, reply.attrs)
        self._known_mtime[reply.fh] = reply.attrs.mtime
        return NfsFile(self, reply.fh, reply.attrs)

    def mkdir(self, path: str) -> Generator:
        parent_path, name = self._parent(path)
        pfh, _ = yield from self.resolve(parent_path)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.MKDIR, fh=pfh, name=name))
        reply.raise_for_status(path)
        self._remember(path, reply.fh, reply.attrs)

    def symlink(self, path: str, target: str) -> Generator:
        parent_path, name = self._parent(path)
        pfh, _ = yield from self.resolve(parent_path)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.SYMLINK, fh=pfh, name=name, target=target))
        reply.raise_for_status(path)

    def readlink(self, path: str) -> Generator:
        fh, _ = yield from self.resolve(path, follow=False)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.READLINK, fh=fh))
        reply.raise_for_status(path)
        return reply.target

    def remove(self, path: str) -> Generator:
        parent_path, name = self._parent(path)
        pfh, _ = yield from self.resolve(parent_path)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.REMOVE, fh=pfh, name=name))
        reply.raise_for_status(path)
        self._dentries.pop(path, None)

    def rename(self, old: str, new: str) -> Generator:
        old_parent, old_name = self._parent(old)
        new_parent, new_name = self._parent(new)
        ofh, _ = yield from self.resolve(old_parent)
        nfh, _ = yield from self.resolve(new_parent)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.RENAME, fh=ofh, name=old_name, to_fh=nfh, to_name=new_name))
        reply.raise_for_status(old)
        self._dentries.pop(old, None)
        self._dentries.pop(new, None)

    def readdir(self, path: str) -> Generator:
        fh, _ = yield from self.resolve(path)
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.READDIR, fh=fh))
        reply.raise_for_status(path)
        return list(reply.entries)

    # -- write-behind machinery ----------------------------------------------------
    def _kick_flusher(self) -> None:
        if not self._flusher_running and self.cache.dirty_blocks:
            self._flusher_running = True
            self.env.process(self._flusher(), name=f"{self.name}.flusher")

    def _flusher(self) -> Generator:
        """Drain dirty blocks with bounded WRITE concurrency."""
        width = self.options.write_concurrency
        while self.cache.dirty_blocks:
            if self.options.write_gather_bytes > self.options.block_size:
                runs = self._gather_runs(self.cache.dirty_keys(), width)
                if not runs:
                    break
                yield AllOf(self.env, [
                    self.env.process(self._write_run_rpc(keys, data))
                    for keys, data in runs])
                self._wake_dirty_waiters()
                continue
            batch: List[Tuple[FileHandle, int]] = []
            while len(batch) < width:
                key = self.cache.any_dirty_key()
                if key is None or key in batch:
                    break
                batch.append(key)
                # Reserve: mark clean now so a racing pick skips it; a
                # concurrent rewrite re-dirties and is flushed again.
                self.cache.mark_clean(key)
            if not batch:
                break
            writes = []
            for fh, idx in batch:
                data = self.cache.peek((fh, idx))
                if data is None:
                    continue
                # Register in-flight *before* the process is scheduled so
                # close/flush in the same instant cannot miss this write.
                self._inflight.add((fh, idx))
                writes.append(self.env.process(self._write_rpc(fh, idx, data)))
            if writes:
                yield AllOf(self.env, writes)
            self._wake_dirty_waiters()
        self._flusher_running = False
        self._wake_dirty_waiters()

    def _gather_runs(self, keys: List[Tuple[FileHandle, int]],
                     limit: int) -> List[Tuple[list, bytes]]:
        """Group adjacent dirty blocks into up to ``limit`` gathered runs.

        Each run is reserved synchronously (marked clean, registered
        in-flight) exactly like the per-block path, so racing picks and
        same-instant close/flush see consistent state.  A run breaks at
        file boundaries, index gaps, short (partial) blocks, and the
        ``write_gather_bytes`` cap.
        """
        bs = self.options.block_size
        per_run = max(self.options.write_gather_bytes // bs, 1)
        runs: List[Tuple[list, bytes]] = []
        current: List[Tuple[Tuple[FileHandle, int], bytes]] = []

        def close() -> None:
            if not current:
                return
            run_keys = [k for k, _ in current]
            for k in run_keys:
                self.cache.mark_clean(k)
                self._inflight.add(k)
            runs.append((run_keys, b"".join(d for _, d in current)))
            current.clear()

        for key in keys:
            if not self.cache.is_dirty(key):
                continue   # flushed by a racing pass since listed
            data = self.cache.peek(key)
            if data is None:
                continue
            if current and (key[0] != current[-1][0][0]
                            or key[1] != current[-1][0][1] + 1
                            or len(current[-1][1]) != bs
                            or len(current) >= per_run):
                close()
                if len(runs) >= limit:
                    return runs
            current.append((key, data))
        close()
        return runs

    def _write_run_rpc(self, run_keys: List[Tuple[FileHandle, int]],
                       data: bytes) -> Generator:
        """One gathered WRITE RPC covering several adjacent staged blocks."""
        fh, idx0 = run_keys[0]
        for key in run_keys:
            self._inflight.add(key)
        try:
            stable = self.options.nfs_version == 2
            reply = yield from self.rpc.call(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=idx0 * self.options.block_size,
                data=data, stable=stable))
            reply.raise_for_status(
                f"write {fh} blocks {idx0}..{run_keys[-1][1]}")
        finally:
            for key in run_keys:
                self._inflight.discard(key)
            waiters, self._inflight_waiters = self._inflight_waiters, []
            for gate in waiters:
                gate.succeed()

    def _write_rpc(self, fh: FileHandle, idx: int, data: bytes) -> Generator:
        key = (fh, idx)
        self._inflight.add(key)
        try:
            stable = self.options.nfs_version == 2  # v2 has no unstable writes
            reply = yield from self.rpc.call(NfsRequest(
                NfsProc.WRITE, fh=fh, offset=idx * self.options.block_size,
                data=data, stable=stable))
            reply.raise_for_status(f"write {fh} block {idx}")
        finally:
            self._inflight.discard(key)
            waiters, self._inflight_waiters = self._inflight_waiters, []
            for gate in waiters:
                gate.succeed()

    def _wait_inflight(self, fh: Optional[FileHandle] = None) -> Generator:
        """Process: wait until no WRITE is on the wire (for ``fh`` or any)."""
        def pending() -> bool:
            if fh is None:
                return bool(self._inflight)
            return any(k[0] == fh for k in self._inflight)
        while pending():
            gate = self.env.event()
            self._inflight_waiters.append(gate)
            yield gate

    def _wake_dirty_waiters(self) -> None:
        if self.cache.dirty_bytes <= self.options.dirty_limit:
            waiters, self._dirty_waiters = self._dirty_waiters, []
            for gate in waiters:
                gate.succeed()

    def throttle_dirty(self) -> Generator:
        """Process: block while the dirty pool exceeds its limit."""
        while self.cache.dirty_bytes > self.options.dirty_limit:
            gate = self.env.event()
            self._dirty_waiters.append(gate)
            yield gate

    def flush_file(self, fh: FileHandle) -> Generator:
        """Process: push a file's dirty blocks, then COMMIT."""
        keys = self.cache.dirty_keys_for(fh)
        width = max(self.options.write_concurrency, 1)
        if self.options.write_gather_bytes > self.options.block_size:
            while True:
                runs = self._gather_runs(keys, width)
                if not runs:
                    break
                yield AllOf(self.env, [
                    self.env.process(self._write_run_rpc(rk, data))
                    for rk, data in runs])
        else:
            for i in range(0, len(keys), width):
                writes = []
                for key in keys[i:i + width]:
                    data = self.cache.peek(key)
                    if data is None:
                        continue
                    self.cache.mark_clean(key)
                    self._inflight.add(key)
                    writes.append(self.env.process(
                        self._write_rpc(key[0], key[1], data)))
                if writes:
                    yield AllOf(self.env, writes)
        yield from self._wait_inflight(fh)
        if self.options.nfs_version == 2:
            return  # v2: writes were stable; there is no COMMIT
        reply = yield from self.rpc.call(NfsRequest(
            NfsProc.COMMIT, fh=fh))
        reply.raise_for_status("commit")
        if reply.attrs is not None:
            self._known_mtime[fh] = reply.attrs.mtime

    def flush_all(self) -> Generator:
        """Process: flush every dirty block on this mount."""
        seen = set()
        while True:
            key = self.cache.any_dirty_key()
            if key is None:
                break
            yield from self.flush_file(key[0])
            seen.add(key[0])
        # Wait for any background flusher batch still on the wire.
        yield from self._wait_inflight()
        while self._flusher_running:
            gate = self.env.event()
            self._dirty_waiters.append(gate)
            yield gate

    def drop_caches(self) -> None:
        """Cold-cache setup: forget blocks, dentries and attributes.

        Refuses to discard staged writes — flush first.
        """
        if self.cache.dirty_blocks or self._inflight:
            raise RuntimeError("drop_caches with writes staged or in flight")
        self.cache.clear()
        self._dentries.clear()
        self._attrs_by_fh.clear()
        self._known_mtime.clear()


class NfsFile:
    """An open file on a mount: block-cached read/write, flush-on-close."""

    def __init__(self, mount: MountedNfs, fh: FileHandle, attrs: Fattr):
        self.mount = mount
        self.fh = fh
        self.attrs = attrs
        self.size = attrs.size
        self.env = mount.env
        self._last_read_end: Optional[int] = None

    @property
    def _bs(self) -> int:
        return self.mount.options.block_size

    # -- reading -----------------------------------------------------------------
    def _fetch_block(self, idx: int) -> Generator:
        bs = self.mount.options.block_size
        reply = yield from self.mount.rpc.call(NfsRequest(
            NfsProc.READ, fh=self.fh, offset=idx * bs, count=bs))
        reply.raise_for_status(f"read block {idx}")
        self.mount.cache.put_clean((self.fh, idx), reply.data)
        return reply.data

    def read(self, offset: int, count: int) -> Generator:
        """Process: read up to ``count`` bytes at ``offset``."""
        if offset < 0 or count < 0:
            raise ValueError(f"bad read offset={offset} count={count}")
        end = min(offset + count, self.size)
        if offset >= end:
            return b""
        mount = self.mount
        bs = mount.options.block_size
        cache = mount.cache
        fh = self.fh
        sequential = self._last_read_end == offset
        out: Optional[bytearray] = None
        pos = offset
        while pos < end:
            idx = pos // bs
            base = idx * bs
            block = cache.get((fh, idx))
            if block is None:
                ra = mount.options.readahead
                if ra > 0 and sequential:
                    # Prefetch beyond the request, up to the file's last block.
                    file_last = max((self.size - 1) // bs, idx)
                    wanted = [i for i in range(idx, min(idx + 1 + ra,
                                                        file_last + 1))
                              if cache.peek((fh, i)) is None]
                    fetches = [self.env.process(self._fetch_block(i))
                               for i in wanted]
                    results = yield AllOf(self.env, fetches)
                    block = results[0] if wanted and wanted[0] == idx else \
                        cache.get((fh, idx)) or b""
                else:
                    block = yield from self._fetch_block(idx)
            within = pos - base
            take = end - pos
            if take > bs - within:
                take = bs - within
            # A cached block may be shorter than the file's logical
            # extent there (a hole left by sparse local writes): pad the
            # covered range with zeros, exactly like a real page cache.
            expected = self.size - base
            if expected > bs:
                expected = bs
            if len(block) < expected:
                block = block + bytes(expected - len(block))
            if pos == offset and pos + take == end:
                # The whole request sits inside this block — the
                # dominant shape of block-aligned VM I/O — so hand back
                # the cached bytes (or one slice) without assembling a
                # scratch buffer.
                self._last_read_end = end
                if within == 0 and take == len(block):
                    return block
                return block[within:within + take]
            if out is None:
                out = bytearray()
            out += block[within:within + take]
            pos += take
        self._last_read_end = pos
        return bytes(out)

    def read_all(self, chunk: Optional[int] = None) -> Generator:
        """Process: sequential read of the whole file; returns the bytes."""
        chunk = chunk or self._bs
        out = bytearray()
        pos = 0
        while pos < self.size:
            data = yield from self.read(pos, chunk)
            if not data:
                break
            out += data
            pos += len(data)
        return bytes(out)

    # -- writing -----------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> Generator:
        """Process: stage ``data`` at ``offset`` (write-behind)."""
        if offset < 0:
            raise ValueError(f"negative write offset: {offset}")
        bs = self.mount.options.block_size
        pos = offset
        view = memoryview(bytes(data))
        while len(view):
            idx, within = divmod(pos, bs)
            take = min(bs - within, len(view))
            key = (self.fh, idx)
            existing = self.mount.cache.peek(key)
            if existing is None and (within != 0 or take != bs) \
                    and idx * bs < self.size:
                # Partial update of an uncached block within the file:
                # read-modify-write, like a real page-cache fill.
                existing = yield from self._fetch_block(idx)
            base = bytearray(existing or b"")
            if len(base) < within + take:
                base.extend(bytes(within + take - len(base)))
            base[within:within + take] = view[:take]
            self.mount.cache.put_dirty(key, bytes(base))
            view = view[take:]
            pos += take
        self.size = max(self.size, pos)
        self.mount._kick_flusher()
        yield from self.mount.throttle_dirty()

    def write_sync(self, offset: int, data: bytes) -> Generator:
        """Process: synchronous write — each block goes to the server
        (stable) before returning, bypassing the staging pool.

        This is how a hosted VMM writes its virtual disk (O_SYNC to
        guarantee guest durability), and why WAN writes without a
        write-back proxy are so expensive in the paper.
        """
        if offset < 0:
            raise ValueError(f"negative write offset: {offset}")
        bs = self.mount.options.block_size
        pos = offset
        view = memoryview(bytes(data))
        while len(view):
            idx, within = divmod(pos, bs)
            take = min(bs - within, len(view))
            key = (self.fh, idx)
            existing = self.mount.cache.peek(key)
            if existing is None and (within != 0 or take != bs) \
                    and idx * bs < self.size:
                existing = yield from self._fetch_block(idx)
            base = bytearray(existing or b"")
            if len(base) < within + take:
                base.extend(bytes(within + take - len(base)))
            base[within:within + take] = view[:take]
            block = bytes(base)
            reply = yield from self.mount.rpc.call(NfsRequest(
                NfsProc.WRITE, fh=self.fh, offset=idx * bs,
                data=block, stable=True))
            reply.raise_for_status(f"sync write block {idx}")
            self.mount.cache.put_clean(key, block)
            view = view[take:]
            pos += take
        self.size = max(self.size, pos)

    def truncate(self, new_size: int) -> Generator:
        """Process: SETATTR truncate."""
        reply = yield from self.mount.rpc.call(NfsRequest(
            NfsProc.SETATTR, fh=self.fh, size=new_size))
        reply.raise_for_status("truncate")
        self.mount.cache.invalidate_file(self.fh)
        self.size = new_size

    def close(self) -> Generator:
        """Process: flush staged writes and COMMIT (close-to-open)."""
        pending = (self.mount.cache.dirty_keys_for(self.fh)
                   or any(k[0] == self.fh for k in self.mount._inflight))
        if pending:
            yield from self.mount.flush_file(self.fh)
        else:
            yield self.env.timeout(0)
