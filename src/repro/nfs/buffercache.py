"""Kernel-style NFS client memory buffer cache.

Models the file-system buffer the paper calls out as insufficient for
WAN VM workloads (§1: "buffer caches with limited storage capacity and
write-through policies"): an LRU of fixed-size blocks with bounded
capacity, plus a bounded pool of *dirty* blocks staged for write-back.
Dirty blocks are pinned (never evicted) until the client's flusher has
pushed them to the server.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.nfs.protocol import NFS_BLOCK_SIZE, FileHandle

__all__ = ["BufferCache"]

BlockKey = Tuple[FileHandle, int]


class BufferCache:
    """LRU block cache with dirty-block pinning.

    Keys are ``(FileHandle, block_index)``; values are the real block
    bytes, so cache hits return exactly what the server once sent (or
    what a local writer staged).
    """

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024,
                 block_size: int = NFS_BLOCK_SIZE):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.capacity_blocks = max(int(capacity_bytes) // block_size, 1)
        self._blocks: OrderedDict[BlockKey, bytes] = OrderedDict()
        self._dirty: Dict[BlockKey, bool] = {}
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def dirty_blocks(self) -> int:
        return len(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        return len(self._dirty) * self.block_size

    def is_dirty(self, key: BlockKey) -> bool:
        return key in self._dirty

    # -- core operations -------------------------------------------------------
    def get(self, key: BlockKey) -> Optional[bytes]:
        """Return cached block data, refreshing LRU; None on miss."""
        data = self._blocks.get(key)
        if data is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return data

    def peek(self, key: BlockKey) -> Optional[bytes]:
        """Like :meth:`get` without touching LRU state or counters."""
        return self._blocks.get(key)

    def put_clean(self, key: BlockKey, data: bytes) -> None:
        """Insert a block fetched from the server."""
        if key in self._dirty:
            # A racing fill must not clobber locally staged data.
            return
        self._blocks[key] = data
        self._blocks.move_to_end(key)
        self._evict_if_needed()

    def put_dirty(self, key: BlockKey, data: bytes) -> None:
        """Insert or update a locally written block (pinned until clean)."""
        self._blocks[key] = data
        self._blocks.move_to_end(key)
        self._dirty[key] = True
        self._evict_if_needed()

    def mark_clean(self, key: BlockKey) -> None:
        """Called by the flusher once a block is safely at the server."""
        self._dirty.pop(key, None)

    def _evict_if_needed(self) -> None:
        # Evict oldest clean blocks; dirty blocks are pinned.  Walk from
        # the LRU end only as far as needed (dirty prefixes are rare and
        # bounded by the dirty limit), so inserts stay O(1) amortized.
        while len(self._blocks) > self.capacity_blocks:
            victim = None
            for key in self._blocks:     # iteration order: oldest first
                if key not in self._dirty:
                    victim = key
                    break
            if victim is None:
                break                    # everything pinned
            del self._blocks[victim]
            self.evictions += 1

    # -- file-level operations ----------------------------------------------------
    def dirty_keys_for(self, fh: FileHandle) -> List[BlockKey]:
        """Dirty blocks of one file, in block order (flush on close)."""
        keys = [k for k in self._dirty if k[0] == fh]
        keys.sort(key=lambda k: k[1])
        return keys

    def dirty_keys(self) -> List[BlockKey]:
        """All dirty blocks, ordered by file then block index, so the
        flusher can gather adjacent blocks into one WRITE."""
        keys = list(self._dirty)
        keys.sort(key=lambda k: (k[0].fsid, k[0].fileid, k[1]))
        return keys

    def any_dirty_key(self) -> Optional[BlockKey]:
        """An arbitrary dirty block (background flusher pick)."""
        for key in self._dirty:
            return key
        return None

    def invalidate_file(self, fh: FileHandle) -> None:
        """Drop all blocks of a file (open-time consistency mismatch).

        Dirty blocks are dropped too — callers must flush first if the
        staged data is wanted.
        """
        doomed = [k for k in self._blocks if k[0] == fh]
        for key in doomed:
            del self._blocks[key]
        for key in [k for k in self._dirty if k[0] == fh]:
            del self._dirty[key]

    def clear(self) -> None:
        """Drop everything (cold-cache experiment setup)."""
        self._blocks.clear()
        self._dirty.clear()
