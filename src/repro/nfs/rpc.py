"""RPC transport layer: moves NFS calls over links, tunnels or loopback.

An :class:`RpcClient` binds a caller to any object implementing the
handler protocol (``handle(request)`` as a simulation process returning
a reply).  Both the kernel NFS server and every GVFS proxy are handlers,
which is what lets proxies cascade: a proxy's ``handle`` may invoke its
own upstream :class:`RpcClient`, exactly like the real user-level
proxies that "behave both as a server (receiving RPC calls) and a
client (issuing RPC calls)" (§3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Protocol, runtime_checkable

from repro.nfs.protocol import NfsReply, NfsRequest
from repro.sim import AnyOf, Environment

__all__ = ["LoopbackTransport", "RpcCircuitBreaker", "RpcCircuitOpen",
           "RpcClient", "RpcHandler", "RpcStats", "RpcTimeout", "Transport"]


class RpcTimeout(Exception):
    """All retransmissions of a call timed out (server unreachable)."""


class RpcCircuitOpen(RpcTimeout):
    """Call rejected without trying: the circuit breaker is open.

    Subclasses :class:`RpcTimeout` so existing "upstream unreachable"
    handling catches fast failures too.
    """


@runtime_checkable
class Transport(Protocol):
    """Anything that can carry a message of N bytes as a process."""

    def transmit(self, nbytes: int) -> Generator: ...  # pragma: no cover


@runtime_checkable
class RpcHandler(Protocol):
    """Anything that can service an NFS request as a process."""

    def handle(self, request: NfsRequest) -> Generator: ...  # pragma: no cover


class LoopbackTransport:
    """Same-host RPC hop (kernel client <-> co-located user proxy).

    Costs a constant per message: two context switches plus a copy.
    """

    def __init__(self, env: Environment, per_message: float = 30e-6,
                 per_byte: float = 1 / 400e6):
        self.env = env
        self.per_message = per_message
        self.per_byte = per_byte
        self.messages = 0

    def transmit(self, nbytes: int) -> Generator:
        yield self.env.timeout(self.per_message + nbytes * self.per_byte)
        self.messages += 1


@dataclass
class RpcStats:
    """Counters kept by an :class:`RpcClient`.

    ``bytes_sent`` and ``by_proc`` count every *attempt* (each
    retransmission puts the request on the wire again), so WAN traffic
    reports stay honest under retries.  ``calls`` counts logical calls
    that completed.
    """

    calls: int = 0
    attempts: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    time_waiting: float = 0.0
    retransmissions: int = 0
    fast_failures: int = 0
    by_proc: dict = field(default_factory=dict)

    def record_attempt(self, request: NfsRequest) -> None:
        """One transmission of the request hit the wire."""
        self.attempts += 1
        self.bytes_sent += request.wire_size()
        by_proc = self.by_proc
        name = request.proc.name
        by_proc[name] = by_proc.get(name, 0) + 1

    def record_completion(self, reply: NfsReply, elapsed: float) -> None:
        """The logical call finished with ``reply``."""
        self.calls += 1
        self.bytes_received += reply.wire_size()
        self.time_waiting += elapsed

    def record(self, request: NfsRequest, reply: NfsReply, elapsed: float) -> None:
        # Hot per-call bookkeeping for the single-attempt path:
        # wire_size() is memoized on the messages.
        self.record_attempt(request)
        self.record_completion(reply, elapsed)


class RpcCircuitBreaker:
    """Trips after consecutive timeouts so callers fail fast.

    Standard three-state breaker over simulated time: *closed* (normal),
    *open* (calls rejected immediately with :class:`RpcCircuitOpen`),
    *half-open* (after ``reset_after`` seconds one probe call is let
    through; success closes the breaker, failure re-opens it).  Failing
    fast matters when many dependent callers would otherwise each pay
    the full retransmission ladder against a dead upstream.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, env: Environment, failure_threshold: int = 3,
                 reset_after: float = 5.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after <= 0:
            raise ValueError("reset_after must be positive")
        self.env = env
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        # Statistics
        self.trips = 0
        self.fast_failures = 0
        self.probes = 0

    def currently_open(self, now: float) -> bool:
        """Non-mutating check: would a call right now be rejected?"""
        return (self.state == self.OPEN
                and now - self._opened_at < self.reset_after)

    def allow(self) -> bool:
        """Gate one call; may transition open -> half-open (probe)."""
        if self.state == self.OPEN:
            if self.env.now - self._opened_at < self.reset_after:
                self.fast_failures += 1
                return False
            self.state = self.HALF_OPEN
            self.probes += 1
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self._opened_at = self.env.now
            self.trips += 1


class RpcClient:
    """Issues NFS calls to a handler across a pair of transports.

    Parameters
    ----------
    out, back:
        Transports for the request and reply directions.  Pass the same
        :class:`LoopbackTransport` twice for a same-host hop, or the two
        directions of an SSH tunnel / route for a network hop.
    handler:
        The serving object (NFS server or proxy).
    """

    def __init__(self, env: Environment, handler: RpcHandler,
                 out: Transport, back: Transport, name: str = "rpc",
                 timeout: Optional[float] = None, max_retries: int = 3,
                 backoff: float = 2.0, max_timeout: float = 60.0,
                 breaker: Optional[RpcCircuitBreaker] = None,
                 call_deadline: Optional[float] = None):
        """``timeout``/``max_retries`` enable UDP-era retransmission: a
        call unanswered within ``timeout`` seconds is reissued (NFS ops
        are idempotent; real servers deduplicate via a request cache).
        With ``timeout=None`` (the default) calls wait indefinitely.

        The retransmission interval grows by ``backoff`` per retry,
        capped at ``max_timeout`` — the classic NFS minor-timeout ladder.
        ``call_deadline`` bounds a whole call (all attempts) in seconds;
        ``breaker``, if given, fail-fasts calls while the upstream is
        known-dead."""
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1: {backoff}")
        self.env = env
        self.handler = handler
        self.out = out
        self.back = back
        self.name = name
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.breaker = breaker
        self.call_deadline = call_deadline
        self.stats = RpcStats()

    def _attempt(self, request: NfsRequest) -> Generator:
        yield from self.out.transmit(request.wire_size())
        reply = yield from self.handler.handle(request)
        if not isinstance(reply, NfsReply):
            raise TypeError(
                f"handler {self.handler!r} returned {reply!r}, expected NfsReply")
        yield from self.back.transmit(reply.wire_size())
        return reply

    def call(self, request: NfsRequest,
             deadline: Optional[float] = None) -> Generator:
        """Process: send ``request``, wait for service, return the reply.

        With retransmission enabled, an unanswered attempt is cancelled
        (its server-side effects up to that point still stand —
        idempotence) and the call is reissued up to ``max_retries``
        times with exponential backoff.  ``deadline`` (seconds, from
        now) bounds the whole call, overriding the client default.
        """
        start = self.env.now
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            self.stats.fast_failures += 1
            raise RpcCircuitOpen(
                f"{self.name}: circuit open, {request.proc.name} rejected")
        if self.timeout is None:
            reply = yield from self._attempt(request)
            self.stats.record(request, reply, self.env.now - start)
            if breaker is not None:
                breaker.record_success()
            return reply
        budget = deadline if deadline is not None else self.call_deadline
        deadline_at = None if budget is None else start + budget
        interval = self.timeout
        attempts = 0
        while True:
            wait = interval
            if deadline_at is not None:
                wait = min(wait, deadline_at - self.env.now)
                if wait <= 0:
                    break
            attempts += 1
            self.stats.record_attempt(request)
            attempt = self.env.process(self._attempt(request),
                                       name=f"{self.name}.attempt")
            timer = self.env.timeout(wait, value=_TIMED_OUT)
            outcome = yield AnyOf(self.env, [attempt, timer])
            if outcome is not _TIMED_OUT:
                self.stats.record_completion(outcome, self.env.now - start)
                if breaker is not None:
                    breaker.record_success()
                return outcome
            self.stats.retransmissions += 1
            if attempt.is_alive:
                # Cancel the abandoned attempt so it stops scheduling
                # events (and releases any link/thread slot it queues
                # on); without this every timed-out call leaks a process
                # that runs forever.
                attempt.interrupt("rpc timeout")
            if attempts > self.max_retries:
                break
            if deadline_at is not None and self.env.now >= deadline_at:
                break
            interval = min(interval * self.backoff, self.max_timeout)
        if breaker is not None:
            breaker.record_failure()
        raise RpcTimeout(
            f"{self.name}: {request.proc.name} unanswered after "
            f"{attempts} attempt(s) over {self.env.now - start:.3f}s")


#: Sentinel distinguishing a timer firing from a (possibly None) reply.
_TIMED_OUT = object()
