"""RPC transport layer: moves NFS calls over links, tunnels or loopback.

An :class:`RpcClient` binds a caller to any object implementing the
handler protocol (``handle(request)`` as a simulation process returning
a reply).  Both the kernel NFS server and every GVFS proxy are handlers,
which is what lets proxies cascade: a proxy's ``handle`` may invoke its
own upstream :class:`RpcClient`, exactly like the real user-level
proxies that "behave both as a server (receiving RPC calls) and a
client (issuing RPC calls)" (§3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Protocol, runtime_checkable

from repro.nfs.protocol import NfsReply, NfsRequest
from repro.sim import AnyOf, Environment

__all__ = ["LoopbackTransport", "RpcClient", "RpcHandler", "RpcStats",
           "RpcTimeout", "Transport"]


class RpcTimeout(Exception):
    """All retransmissions of a call timed out (server unreachable)."""


@runtime_checkable
class Transport(Protocol):
    """Anything that can carry a message of N bytes as a process."""

    def transmit(self, nbytes: int) -> Generator: ...  # pragma: no cover


@runtime_checkable
class RpcHandler(Protocol):
    """Anything that can service an NFS request as a process."""

    def handle(self, request: NfsRequest) -> Generator: ...  # pragma: no cover


class LoopbackTransport:
    """Same-host RPC hop (kernel client <-> co-located user proxy).

    Costs a constant per message: two context switches plus a copy.
    """

    def __init__(self, env: Environment, per_message: float = 30e-6,
                 per_byte: float = 1 / 400e6):
        self.env = env
        self.per_message = per_message
        self.per_byte = per_byte
        self.messages = 0

    def transmit(self, nbytes: int) -> Generator:
        yield self.env.timeout(self.per_message + nbytes * self.per_byte)
        self.messages += 1


@dataclass
class RpcStats:
    """Counters kept by an :class:`RpcClient`."""

    calls: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    time_waiting: float = 0.0
    retransmissions: int = 0
    by_proc: dict = field(default_factory=dict)

    def record(self, request: NfsRequest, reply: NfsReply, elapsed: float) -> None:
        # Hot per-call bookkeeping: wire_size() is memoized on the
        # messages, and the proc name is resolved once.
        self.calls += 1
        self.bytes_sent += request.wire_size()
        self.bytes_received += reply.wire_size()
        self.time_waiting += elapsed
        by_proc = self.by_proc
        name = request.proc.name
        by_proc[name] = by_proc.get(name, 0) + 1


class RpcClient:
    """Issues NFS calls to a handler across a pair of transports.

    Parameters
    ----------
    out, back:
        Transports for the request and reply directions.  Pass the same
        :class:`LoopbackTransport` twice for a same-host hop, or the two
        directions of an SSH tunnel / route for a network hop.
    handler:
        The serving object (NFS server or proxy).
    """

    def __init__(self, env: Environment, handler: RpcHandler,
                 out: Transport, back: Transport, name: str = "rpc",
                 timeout: Optional[float] = None, max_retries: int = 3):
        """``timeout``/``max_retries`` enable UDP-era retransmission: a
        call unanswered within ``timeout`` seconds is reissued (NFS ops
        are idempotent; real servers deduplicate via a request cache).
        With ``timeout=None`` (the default) calls wait indefinitely."""
        self.env = env
        self.handler = handler
        self.out = out
        self.back = back
        self.name = name
        self.timeout = timeout
        self.max_retries = max_retries
        self.stats = RpcStats()

    def _attempt(self, request: NfsRequest) -> Generator:
        yield from self.out.transmit(request.wire_size())
        reply = yield from self.handler.handle(request)
        if not isinstance(reply, NfsReply):
            raise TypeError(
                f"handler {self.handler!r} returned {reply!r}, expected NfsReply")
        yield from self.back.transmit(reply.wire_size())
        return reply

    def call(self, request: NfsRequest) -> Generator:
        """Process: send ``request``, wait for service, return the reply.

        With retransmission enabled, an unanswered attempt is abandoned
        (its server-side effects still complete — idempotence) and the
        call is reissued up to ``max_retries`` times.
        """
        start = self.env.now
        if self.timeout is None:
            reply = yield from self._attempt(request)
            self.stats.record(request, reply, self.env.now - start)
            return reply
        attempts = 0
        while True:
            attempts += 1
            attempt = self.env.process(self._attempt(request),
                                       name=f"{self.name}.attempt")
            timer = self.env.timeout(self.timeout, value=_TIMED_OUT)
            outcome = yield AnyOf(self.env, [attempt, timer])
            if outcome is not _TIMED_OUT:
                self.stats.record(request, outcome, self.env.now - start)
                return outcome
            self.stats.retransmissions += 1
            if attempts > self.max_retries:
                raise RpcTimeout(
                    f"{self.name}: {request.proc.name} unanswered after "
                    f"{attempts} attempts x {self.timeout}s")


#: Sentinel distinguishing a timer firing from a (possibly None) reply.
_TIMED_OUT = object()
