"""Kernel NFS server over a local filesystem export.

Services the NFSv3 subset against a :class:`~repro.storage.localfs.
LocalFileSystem`; READ/WRITE are charged the export disk's time, every
call is charged a per-op CPU cost, and a fixed pool of nfsd threads
bounds concurrency (so a flood of requests queues like a real server).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.nfs.protocol import (
    FS_CODE_TO_STATUS,
    Fattr,
    FileHandle,
    NfsProc,
    NfsReply,
    NfsRequest,
    NfsStatus,
)
from repro.sim import Environment, FifoResource
from repro.storage.localfs import LocalFileSystem
from repro.storage.vfs import FsError, Inode

__all__ = ["NfsServer"]


class NfsServer:
    """An NFS server exporting one filesystem.

    Parameters
    ----------
    export:
        The timed local filesystem to serve.
    fsid:
        Identifier baked into the server's file handles.
    nfsd_threads:
        Concurrent service slots (Linux default was 8).
    op_cpu:
        Per-call CPU time in seconds (request decode + dispatch).
    """

    def __init__(self, env: Environment, export: LocalFileSystem,
                 fsid: str = "export", nfsd_threads: int = 8,
                 op_cpu: float = 100e-6):
        self.env = env
        self.export = export
        self.fsid = fsid
        self.op_cpu = op_cpu
        self._nfsd = FifoResource(env, capacity=nfsd_threads, name=f"{fsid}.nfsd")
        self.calls = 0
        # Fault state.  A crashed server answers nothing; in-progress
        # calls are abandoned mid-service (their completed disk effects
        # persist — the media survives, the process dies).  The epoch
        # counter lets a call detect that the server it started under is
        # not the one running now, so its reply is never delivered.
        self.crashed = False
        self.crashes = 0
        self._crash_epoch = 0

    # -- handle plumbing -----------------------------------------------------
    @property
    def root_fh(self) -> FileHandle:
        """Handle of the export root (what MOUNT would return)."""
        return FileHandle(self.fsid, self.export.fs.root.fileid)

    def fh_of(self, inode: Inode) -> FileHandle:
        return FileHandle(self.fsid, inode.fileid)

    def fh_for_path(self, path: str) -> FileHandle:
        """Resolve a path server-side (test/middleware convenience)."""
        return self.fh_of(self.export.fs.lookup(path, follow=False))

    def _resolve(self, fh: Optional[FileHandle]) -> Inode:
        if fh is None:
            raise FsError("ESTALE", "missing file handle")
        if fh.fsid != self.fsid:
            raise FsError("ESTALE", f"foreign fsid {fh.fsid!r}")
        return self.export.fs.get_inode(fh.fileid)

    @staticmethod
    def _attrs(inode: Inode) -> Fattr:
        return Fattr(kind=inode.kind, size=inode.size, fileid=inode.fileid,
                     mtime=inode.mtime, mode=inode.mode,
                     uid=inode.uid, gid=inode.gid)

    # -- fault injection ---------------------------------------------------------
    def crash(self) -> None:
        """Kill the server process: no replies until :meth:`restart`."""
        self.crashed = True
        self.crashes += 1
        self._crash_epoch += 1

    def restart(self) -> None:
        """Boot the server back up with a cold page cache.

        File data survives (it lives on the export disk); the kernel's
        in-memory page cache and write-behind pool do not.
        """
        self.export.drop_caches()
        self.crashed = False

    # -- dispatch ---------------------------------------------------------------
    def handle(self, request: NfsRequest) -> Generator:
        """Process: service one call; returns an :class:`NfsReply`."""
        if self.crashed:
            # Dead servers don't answer: park until interrupted (the
            # caller's retransmission timer is the recovery mechanism).
            yield self.env.event()
        epoch = self._crash_epoch
        slot = self._nfsd.request()
        try:
            yield slot
            if self.crashed or self._crash_epoch != epoch:
                # Crashed while we queued for a thread: nobody serves us.
                yield self.env.event()
            yield self.env.timeout(self.op_cpu)
            self.calls += 1
            try:
                reply = yield from self._dispatch(request)
            except FsError as exc:
                status = FS_CODE_TO_STATUS.get(exc.code, NfsStatus.IO)
                reply = NfsReply(request.proc, status)
        finally:
            self._nfsd.release(slot)
        if self._crash_epoch != epoch:
            # The server died while this call was in service: whatever
            # disk effects already happened stand, but the reply is lost.
            yield self.env.event()
        return reply

    def _dispatch(self, req: NfsRequest) -> Generator:
        proc = req.proc
        if proc is NfsProc.NULL:
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK)
        if proc is NfsProc.GETATTR:
            node = self._resolve(req.fh)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, fh=req.fh, attrs=self._attrs(node))
        if proc is NfsProc.SETATTR:
            node = self._resolve(req.fh)
            if node.kind != Inode.FILE:
                return NfsReply(proc, NfsStatus.ISDIR)
            if req.size is not None:
                node.data.truncate(req.size)
                node.touch()
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, fh=req.fh, attrs=self._attrs(node))
        if proc is NfsProc.LOOKUP:
            directory = self._resolve(req.fh)
            child = self.export.fs.lookup_in(directory, req.name)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, fh=self.fh_of(child),
                            attrs=self._attrs(child))
        if proc is NfsProc.READLINK:
            node = self._resolve(req.fh)
            if node.kind != Inode.SYMLINK:
                return NfsReply(proc, NfsStatus.INVAL)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, target=node.target)
        if proc is NfsProc.READ:
            node = self._resolve(req.fh)
            if node.kind != Inode.FILE:
                return NfsReply(proc, NfsStatus.ISDIR)
            data = yield from self.export.timed_read_inode(node, req.offset, req.count)
            eof = req.offset + len(data) >= node.data.size
            return NfsReply(proc, NfsStatus.OK, fh=req.fh, data=data,
                            count=len(data), eof=eof, attrs=self._attrs(node))
        if proc is NfsProc.WRITE:
            node = self._resolve(req.fh)
            if node.kind != Inode.FILE:
                return NfsReply(proc, NfsStatus.ISDIR)
            yield from self.export.timed_write_inode(
                node, req.data, req.offset, sync=req.stable)
            return NfsReply(proc, NfsStatus.OK, fh=req.fh,
                            count=len(req.data), attrs=self._attrs(node))
        if proc is NfsProc.CREATE:
            directory = self._resolve(req.fh)
            node = self.export.fs.create_in(directory, req.name,
                                            exclusive=req.exclusive)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, fh=self.fh_of(node),
                            attrs=self._attrs(node))
        if proc is NfsProc.MKDIR:
            directory = self._resolve(req.fh)
            node = self.export.fs.mkdir_in(directory, req.name)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, fh=self.fh_of(node),
                            attrs=self._attrs(node))
        if proc is NfsProc.SYMLINK:
            directory = self._resolve(req.fh)
            node = self.export.fs.symlink_in(directory, req.name, req.target)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK, fh=self.fh_of(node),
                            attrs=self._attrs(node))
        if proc is NfsProc.REMOVE:
            directory = self._resolve(req.fh)
            self.export.fs.remove_in(directory, req.name)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK)
        if proc is NfsProc.RMDIR:
            directory = self._resolve(req.fh)
            self.export.fs.rmdir_in(directory, req.name)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK)
        if proc is NfsProc.RENAME:
            from_dir = self._resolve(req.fh)
            to_dir = self._resolve(req.to_fh) if req.to_fh else from_dir
            self.export.fs.rename_in(from_dir, req.name, to_dir, req.to_name)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK)
        if proc is NfsProc.READDIR:
            directory = self._resolve(req.fh)
            if directory.kind != Inode.DIR:
                return NfsReply(proc, NfsStatus.NOTDIR)
            yield self.env.timeout(0)
            return NfsReply(proc, NfsStatus.OK,
                            entries=tuple(sorted(directory.entries)))
        if proc is NfsProc.COMMIT:
            # Flush the export's write-behind pool to stable storage.
            yield from self.export.sync()
            node = self._resolve(req.fh)
            return NfsReply(proc, NfsStatus.OK, fh=req.fh, attrs=self._attrs(node))
        raise ValueError(f"unimplemented NFS procedure: {proc}")
