"""NFSv3-subset wire protocol: handles, attributes, requests, replies.

The subset covers every procedure the GVFS data path exercises —
LOOKUP/GETATTR/READ/WRITE/CREATE/REMOVE/RENAME/READDIR/READLINK/
SYMLINK/MKDIR/RMDIR/COMMIT — with enough fidelity (status codes, wire
sizes, stable-write semantics) that proxies interposed on the RPC
stream behave like the real user-level proxies of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Fattr",
    "FileHandle",
    "NFS_BLOCK_SIZE",
    "NFS_MAX_BLOCK_SIZE",
    "NfsError",
    "NfsProc",
    "NfsReply",
    "NfsRequest",
    "NfsStatus",
]

#: Default rsize/wsize of era NFS mounts (and the paper's read counts:
#: a 512 MB memory state file is 65,536 reads of 8 KB).
NFS_BLOCK_SIZE = 8 * 1024

#: Protocol limit quoted in the paper (§3.2.1): block sizes up to 32 KB.
NFS_MAX_BLOCK_SIZE = 32 * 1024

#: Wire overhead of one RPC message beyond its payload (XDR + RPC + auth).
RPC_OVERHEAD_BYTES = 96


class NfsProc(enum.Enum):
    """Procedure numbers of the implemented NFSv3 subset."""

    NULL = 0
    GETATTR = 1
    SETATTR = 2
    LOOKUP = 3
    READLINK = 5
    READ = 6
    WRITE = 7
    CREATE = 8
    MKDIR = 9
    SYMLINK = 10
    REMOVE = 12
    RMDIR = 13
    RENAME = 14
    READDIR = 16
    COMMIT = 21
    #: GVFS extension (not in RFC 1813): a cache one cascade level down
    #: hands a clean eviction victim to the next level up, carrying the
    #: block bytes so the receiver caches them without re-reading origin.
    #: Only proxies that advertise a block cache ever see this call.
    DEMOTE = 22


class NfsStatus(enum.Enum):
    """NFSv3 status codes used by the subset."""

    OK = 0
    PERM = 1
    NOENT = 2
    IO = 5
    ACCES = 13
    EXIST = 17
    NOTDIR = 20
    ISDIR = 21
    INVAL = 22
    FBIG = 27
    NOSPC = 28
    ROFS = 30
    NAMETOOLONG = 63
    NOTEMPTY = 66
    STALE = 70


#: Mapping from VFS error codes to NFS status.
FS_CODE_TO_STATUS = {
    "ENOENT": NfsStatus.NOENT,
    "EEXIST": NfsStatus.EXIST,
    "ENOTDIR": NfsStatus.NOTDIR,
    "EISDIR": NfsStatus.ISDIR,
    "EINVAL": NfsStatus.INVAL,
    "ENOTEMPTY": NfsStatus.NOTEMPTY,
    "ESTALE": NfsStatus.STALE,
    "ELOOP": NfsStatus.INVAL,
}


class NfsError(Exception):
    """Raised by client-side helpers when a reply carries an error."""

    def __init__(self, status: NfsStatus, context: str = ""):
        super().__init__(f"NFS error {status.name}" + (f": {context}" if context else ""))
        self.status = status


class FileHandle:
    """An opaque, persistent reference to a file object on a server.

    ``fsid`` identifies the exported filesystem, ``fileid`` the inode.
    Handles hash/compare by value, so caches can index on them exactly
    as the GVFS proxy hashes NFS file handles.  The hash is precomputed:
    handles key every block-cache and buffer-cache dictionary on the
    data path, so hashing must be a field load, not a tuple build.
    """

    __slots__ = ("fsid", "fileid", "_hash")

    def __init__(self, fsid: str, fileid: int):
        object.__setattr__(self, "fsid", fsid)
        object.__setattr__(self, "fileid", fileid)
        object.__setattr__(self, "_hash", hash((fsid, fileid)))

    def __setattr__(self, name, value):  # immutable, like the dataclass was
        raise AttributeError("FileHandle is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (isinstance(other, FileHandle) and self.fileid == other.fileid
                and self.fsid == other.fsid)

    def __repr__(self) -> str:  # pragma: no cover
        return f"FileHandle(fsid={self.fsid!r}, fileid={self.fileid!r})"

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.fsid}:{self.fileid}"


@dataclass(frozen=True)
class Fattr:
    """File attributes returned by GETATTR and piggybacked on replies."""

    kind: str            # "file" | "dir" | "symlink"
    size: int
    fileid: int
    mtime: float
    mode: int = 0o644
    uid: int = 0
    gid: int = 0


@dataclass(frozen=True)
class NfsRequest:
    """One NFS call.  Field usage depends on ``proc``.

    * ``fh`` — target object (READ/WRITE/GETATTR/READLINK/READDIR/COMMIT)
      or the *directory* for name-based procs (LOOKUP/CREATE/REMOVE/...).
    * ``name`` — leaf name for name-based procs; new name source for RENAME.
    * ``offset``/``count`` — READ/WRITE extent.
    * ``data`` — WRITE payload (real bytes).
    * ``target`` — SYMLINK target path.
    * ``to_fh``/``to_name`` — RENAME destination directory and name.
    * ``stable`` — WRITE stability: True requests synchronous commit.
    * ``credentials`` — (uid, gid) of the caller; proxies remap these.
    """

    proc: NfsProc
    fh: Optional[FileHandle] = None
    name: Optional[str] = None
    offset: int = 0
    count: int = 0
    data: bytes = b""
    target: Optional[str] = None
    to_fh: Optional[FileHandle] = None
    to_name: Optional[str] = None
    stable: bool = True
    exclusive: bool = True              # CREATE mode (guarded vs unchecked)
    size: Optional[int] = None          # SETATTR truncate size
    credentials: Tuple[int, int] = (0, 0)

    def wire_size(self) -> int:
        """Bytes this call occupies on the wire.

        Memoized: one request object crosses every hop of a proxy
        cascade, and each hop sizes it for both the transport and its
        stats, so the sum is computed once and cached on the instance.
        """
        n = self.__dict__.get("_wire_size")
        if n is None:
            n = RPC_OVERHEAD_BYTES
            if self.proc is NfsProc.WRITE or self.proc is NfsProc.DEMOTE:
                n += len(self.data)
            for s in (self.name, self.target, self.to_name):
                if s:
                    n += len(s)
            object.__setattr__(self, "_wire_size", n)
        return n

    def replace(self, **kwargs) -> "NfsRequest":
        """A copy with some fields substituted (proxy rewriting)."""
        from dataclasses import replace as _replace
        return _replace(self, **kwargs)


@dataclass(frozen=True)
class NfsReply:
    """One NFS reply.

    ``attrs`` carries post-op attributes (NFSv3 piggybacking); ``data``
    carries READ payloads; ``fh``/``attrs`` carry LOOKUP/CREATE results;
    ``entries`` carries READDIR listings; ``target`` READLINK results.
    ``eof`` marks a READ that reached end of file.
    """

    proc: NfsProc
    status: NfsStatus
    fh: Optional[FileHandle] = None
    attrs: Optional[Fattr] = None
    data: bytes = b""
    count: int = 0
    eof: bool = False
    target: Optional[str] = None
    entries: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status is NfsStatus.OK

    def wire_size(self) -> int:
        """Bytes this reply occupies on the wire (memoized, see
        :meth:`NfsRequest.wire_size`)."""
        n = self.__dict__.get("_wire_size")
        if n is None:
            n = RPC_OVERHEAD_BYTES
            if self.proc is NfsProc.READ:
                n += len(self.data)
            if self.target:
                n += len(self.target)
            n += sum(len(e) + 8 for e in self.entries)
            object.__setattr__(self, "_wire_size", n)
        return n

    def raise_for_status(self, context: str = "") -> "NfsReply":
        """Return self when OK; raise :class:`NfsError` otherwise."""
        if not self.ok:
            raise NfsError(self.status, context)
        return self
