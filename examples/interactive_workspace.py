#!/usr/bin/env python
"""An In-VIGO-style interactive virtual workspace (§2).

A Grid user asks the middleware for an execution environment with LaTeX
installed.  The middleware leases a short-lived logical account,
matches a golden image from the catalog, clones it over GVFS to a
compute server, and the user runs a few interactive edit/compile
iterations inside the VM.  At logout, middleware-driven consistency
flushes the session's dirty state back to the image server.

Run:  python examples/interactive_workspace.py
"""

from repro.middleware.imageserver import ImageRequirements
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmConfig
from repro.workloads.latex import LatexBenchmark


def main() -> None:
    testbed = make_paper_testbed(n_compute=2)
    env = testbed.env
    middleware = VmSessionManager(testbed)

    # The image server archives application-tailored golden images.
    middleware.catalog.register(
        "latex-workspace",
        VmConfig(name="latex-workspace", memory_mb=32, disk_gb=0.1,
                 os_name="Red Hat Linux 7.3", seed=7),
        applications=("latex", "bibtex", "dvipdf"))
    middleware.catalog.register(
        "bare-linux",
        VmConfig(name="bare-linux", memory_mb=16, disk_gb=0.05,
                 os_name="Red Hat Linux 7.3", seed=8))

    def user_session(env):
        t0 = env.now
        session = yield env.process(middleware.create_session(
            "alice", ImageRequirements(applications=("latex",))))
        print(f"[{env.now:7.1f}s] workspace ready for alice on "
              f"compute{session.compute_index} "
              f"(image {session.image.config.name!r}, "
              f"instantiation {env.now - t0:.1f}s, "
              f"identity uid={session.account.uid})")

        # Interactive work: three edit/compile iterations in the VM.
        workload = LatexBenchmark(iterations=3)
        result = yield env.process(workload.run(session.vm))
        for phase in result.phases:
            print(f"[{env.now:7.1f}s]   {phase.name}: "
                  f"{phase.seconds:.1f}s response time")

        t1 = env.now
        yield env.process(middleware.end_session(session))
        print(f"[{env.now:7.1f}s] session closed; consistency flush took "
              f"{env.now - t1:.1f}s")

    env.process(user_session(env))
    env.run()

    record = middleware.consistency.log[-1]
    print(f"middleware log: {record.signal.value} delivered to "
          f"{record.proxy_name} at t={record.time:.1f}s "
          f"({record.duration:.1f}s)")


if __name__ == "__main__":
    main()
