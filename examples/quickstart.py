#!/usr/bin/env python
"""Quickstart: a GVFS session end to end in ~60 lines.

Builds the paper's testbed, publishes a golden VM image on the WAN
image server, wires a WAN+C session (kernel client -> caching proxy ->
SSH tunnel -> server proxy -> NFS server), and reads the VM's memory
state through the whole chain — demonstrating zero-block filtering, the
compressed file channel, and the proxy disk cache.

Run:  python examples/quickstart.py
"""

from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmConfig, VmImage


def main() -> None:
    # 1. The testbed of §4.1: compute server at UF, image server at
    #    Northwestern, ~38 ms RTT across Abilene.
    testbed = make_paper_testbed()
    env = testbed.env

    # 2. Middleware publishes a golden image and pre-processes its
    #    memory state: a zero-block map plus the
    #    compress/remote-copy/uncompress/read-locally action list.
    endpoint = ServerEndpoint(env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/golden",
                           VmConfig(name="golden", memory_mb=32,
                                    disk_gb=0.1, seed=1))
    meta = image.generate_metadata()
    print(f"golden image: {image.config.memory_mb} MB memory, "
          f"{meta.n_zero_blocks}/{meta.n_blocks} blocks zero-filled")

    # 3. Build the per-user session: this is what Grid middleware does
    #    when a user's computation is scheduled on the compute server.
    session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                endpoint=endpoint)

    # 4. Read the whole memory state through the chain, as a VM resume
    #    would, and verify every byte against the golden copy.
    def resume_like_read(env):
        f = yield env.process(session.mount.open("/images/golden/mem.vmss"))
        golden = image.memory_inode.data
        offset = 0
        t0 = env.now
        while offset < f.size:
            data = yield env.process(f.read(offset, 8192))
            assert data == golden.read(offset, len(data)), "corruption!"
            offset += len(data)
        print(f"read {offset >> 20} MB through the proxy chain "
              f"in {env.now - t0:.1f} simulated seconds")

    env.process(resume_like_read(env))
    env.run()

    # 5. What the extensions did for us.
    stats = session.client_proxy.stats
    channel = session.client_proxy.channel
    print(f"zero-filtered reads : {stats.zero_filtered_reads}")
    print(f"file-cache reads    : {stats.file_cache_reads}")
    print(f"channel fetches     : {stats.channel_fetches} "
          f"({channel.bytes_on_wire >> 10} KB on the wire for "
          f"{channel.bytes_logical >> 20} MB of state)")
    print(f"forwarded upstream  : {stats.forwarded} calls")


if __name__ == "__main__":
    main()
