#!/usr/bin/env python
"""High-throughput cloning farm (§3.2.3, §4.3).

A scheduler needs eight workers for a Condor-style independent-task
batch.  One golden image is cloned to eight compute servers *in
parallel* through GVFS — zero-filtered, compressed through the file
channel, virtual disks symlinked rather than copied — and the result is
compared against copying the full image with SCP.

Run:  python examples/cloning_farm.py
"""

from repro.baselines.scp import ScpCloneBaseline
from repro.core.session import GvfsSession, LocalMount, Scenario, ServerEndpoint
from repro.net.topology import make_paper_testbed
from repro.sim import AllOf
from repro.vm.cloning import CloneManager
from repro.vm.image import VmConfig, VmImage
from repro.vm.monitor import VmMonitor

N_WORKERS = 8


def main() -> None:
    testbed = make_paper_testbed(n_compute=N_WORKERS,
                                 compute_cpu_speed=2.2)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/worker",
                           VmConfig(name="worker", memory_mb=32,
                                    disk_gb=0.1, seed=3))
    image.generate_metadata()

    managers = []
    for i in range(N_WORKERS):
        session = GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                    endpoint=endpoint, compute_index=i)
        monitor = VmMonitor(env, testbed.compute[i])
        managers.append(CloneManager(env, monitor, session.mount,
                                     LocalMount(testbed.compute[i].local)))

    results = []

    def one_worker(env, i):
        result = yield env.process(managers[i].clone(
            "/images/worker", f"/clones/worker{i}",
            clone_name=f"worker{i}"))
        results.append((i, result))
        return result.total_seconds

    def farm(env):
        t0 = env.now
        jobs = [env.process(one_worker(env, i)) for i in range(N_WORKERS)]
        times = yield AllOf(env, jobs)
        print(f"{N_WORKERS} workers live after {env.now - t0:.1f}s "
              f"(per-clone {min(times):.1f}-{max(times):.1f}s)")
        # The comparator: what one SCP full copy of the same image costs.
        scp = ScpCloneBaseline(testbed)
        t1 = env.now
        yield env.process(scp.clone(image, "/clones/scp-worker",
                                    resume=False))
        print(f"one full-image SCP copy alone: {env.now - t1:.1f}s")

    env.process(farm(env))
    env.run()

    for i, result in sorted(results):
        phases = ", ".join(f"{k}={v:.1f}s" for k, v in result.phases.items())
        print(f"  worker{i}: total={result.total_seconds:.1f}s  ({phases})")


if __name__ == "__main__":
    main()
