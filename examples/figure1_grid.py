#!/usr/bin/env python
"""The paper's Figure 1, end to end.

Two image servers (I1 holds "O/S A + app X", I2 holds "O/S B + app Y"),
two data servers (D1 for user U, D2 for users V and W), two compute
servers — and three VM sessions instantiated across them:

    VM1 = O/S A + app X + V's data   on compute server C2
    VM2 = O/S B + app Y + W's data   on compute server C2
    VM3 = O/S A + app X + U's data   on compute server C1

Every session gets its own proxy chain to its image server and its own
user-data mount from its data server; middleware-driven consistency
flushes each at logout.

Run:  python examples/figure1_grid.py
"""

from repro.core.session import ServerEndpoint
from repro.middleware.imageserver import ImageRequirements
from repro.middleware.sessions import VmSessionManager
from repro.net.topology import make_paper_testbed
from repro.vm.image import VmConfig


def main() -> None:
    testbed = make_paper_testbed(n_compute=2)
    env = testbed.env

    # Figure 1's entities.  (The testbed has one WAN and one LAN server
    # host; each hosts an image server and a data server endpoint, which
    # is exactly how small Grid sites doubled roles.)
    image_server_1 = ServerEndpoint(env, testbed.wan_server, fsid="I1")
    image_server_2 = ServerEndpoint(env, testbed.lan_server, fsid="I2")
    data_server_1 = ServerEndpoint(env, testbed.lan_server, fsid="D1")
    data_server_2 = ServerEndpoint(env, testbed.wan_server, fsid="D2")

    # One middleware instance per (image server, data server) pairing:
    # VM1 (user V) and VM3 (user U) run O/S A from I1, but V's data
    # lives on D2 while U's lives on D1.
    grid_a = VmSessionManager(testbed, endpoint=image_server_1,
                              data_endpoint=data_server_2)
    grid_a_u = VmSessionManager(testbed, endpoint=image_server_1,
                                data_endpoint=data_server_1)
    grid_b = VmSessionManager(testbed, endpoint=image_server_2,
                              data_endpoint=data_server_2)

    grid_a.catalog.register("osA-appX", VmConfig(
        name="osA-appX", memory_mb=16, disk_gb=0.05,
        os_name="Red Hat Linux 7.3", seed=61), applications=("appX",))
    # The second middleware instance serves the *same* archived image.
    grid_a_u.catalog.register_existing("osA-appX", applications=("appX",))
    grid_b.catalog.register("osB-appY", VmConfig(
        name="osB-appY", memory_mb=16, disk_gb=0.05,
        os_name="Debian 3.0", seed=62), applications=("appY",))

    def lifecycle(env):
        vm1 = yield env.process(grid_a.create_session(
            "V", ImageRequirements(applications=("appX",)),
            compute_index=1))
        print(f"[{env.now:6.1f}s] VM1 ready: {vm1.image.config.name} + "
              f"V's data on compute{vm1.compute_index} "
              f"(home {vm1.vm.user_dir} from D2)")

        vm2 = yield env.process(grid_b.create_session(
            "W", ImageRequirements(applications=("appY",)),
            compute_index=1))
        print(f"[{env.now:6.1f}s] VM2 ready: {vm2.image.config.name} + "
              f"W's data on compute{vm2.compute_index}")

        vm3 = yield env.process(grid_a_u.create_session(
            "U", ImageRequirements(applications=("appX",)),
            compute_index=0))
        print(f"[{env.now:6.1f}s] VM3 ready: {vm3.image.config.name} + "
              f"U's data on compute{vm3.compute_index} "
              f"(home {vm3.vm.user_dir} from D1)")

        # Each user works against their own data server.
        yield env.process(vm1.vm.write_user_file("result-v.dat",
                                                 b"V" * 65536))
        yield env.process(vm3.vm.write_user_file("result-u.dat",
                                                 b"U" * 65536))
        for manager, session in [(grid_a, vm1), (grid_b, vm2),
                                 (grid_a_u, vm3)]:
            yield env.process(manager.end_session(session))
        print(f"[{env.now:6.1f}s] all sessions flushed and closed")

    env.process(lifecycle(env))
    env.run()

    assert data_server_2.export.fs.read("/home/V/result-v.dat") == b"V" * 65536
    assert data_server_1.export.fs.read("/home/U/result-u.dat") == b"U" * 65536
    print("user data landed on the right data servers; "
          "images were shared read-only from their image servers.")


if __name__ == "__main__":
    main()
