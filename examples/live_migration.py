#!/usr/bin/env python
"""Load balancing by VM migration over GVFS (§6 future work).

A VM is running a computation on an overloaded compute server.  The
middleware checkpoints it through the write-back proxy, ships the
compressed state via the file channel, and resumes it on an idle
server — while a profile of the guest's disk accesses, recorded on the
source, pre-warms the destination's proxy cache so the application
continues at full speed.

Run:  python examples/live_migration.py
"""

from repro.core.profiler import AccessProfiler, Prefetcher
from repro.core.session import GvfsSession, Scenario, ServerEndpoint
from repro.net.topology import make_paper_testbed
from repro.vm.image import GuestFile, VmConfig, VmImage
from repro.vm.migration import MigrationManager
from repro.vm.monitor import VmMonitor

MB = 1024 * 1024


def main() -> None:
    testbed = make_paper_testbed(n_compute=2)
    env = testbed.env
    endpoint = ServerEndpoint(env, testbed.wan_server)
    image = VmImage.create(endpoint.export.fs, "/images/worker",
                           VmConfig(name="worker", memory_mb=32,
                                    disk_gb=0.1, persistent=False, seed=17))
    image.generate_metadata()

    sessions = [GvfsSession.build(testbed, Scenario.WAN_CACHED,
                                  endpoint=endpoint, compute_index=i)
                for i in range(2)]
    monitors = [VmMonitor(env, testbed.compute[i]) for i in range(2)]
    manager = MigrationManager(env, monitors[0], sessions[0],
                               monitors[1], sessions[1])
    dataset = GuestFile("work/dataset", 8 * MB)

    def scenario(env):
        # Boot on compute0 and start working; profile the disk accesses.
        vm = yield from monitors[0].resume(sessions[0].mount,
                                           "/images/worker")
        profiler = AccessProfiler("worker")
        sessions[0].client_proxy.read_observers.append(profiler.observe)
        yield env.process(vm.read_guest_file(dataset))
        yield vm.compute(5.0)
        print(f"[{env.now:6.1f}s] worker busy on compute0 "
              f"({vm.disk_bytes_read >> 20} MB of dataset read)")

        # The scheduler decides to move it to compute1.
        t0 = env.now
        result = yield from manager.migrate(vm, "/images/worker",
                                            dest_dir="/migrated/worker")
        print(f"[{env.now:6.1f}s] migrated to compute1: downtime "
              f"{result.downtime_seconds:.1f}s "
              f"(suspend {result.phases['suspend']:.1f}s, "
              f"flush {result.phases['flush']:.1f}s, "
              f"instantiate {result.phases['instantiate']:.1f}s)")

        # Warm the destination cache from the recorded profile before
        # the guest touches its dataset again.
        profile = profiler.stop()
        prefetcher = Prefetcher(env, sessions[1].client_proxy,
                                concurrency=8)
        t1 = env.now
        yield env.process(prefetcher.prefetch(profile))
        print(f"[{env.now:6.1f}s] destination cache warmed: "
              f"{prefetcher.blocks_fetched} blocks in {env.now - t1:.1f}s")

        new_vm = result.vm
        t2 = env.now
        yield env.process(new_vm.read_guest_file(dataset))
        yield new_vm.compute(5.0)
        print(f"[{env.now:6.1f}s] worker resumed its dataset pass in "
              f"{env.now - t2:.1f}s on compute1")

    env.process(scenario(env))
    env.run()


if __name__ == "__main__":
    main()
