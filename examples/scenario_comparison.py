#!/usr/bin/env python
"""Compare run-time execution across the four scenarios of §4.2.1.

Runs a short interactive LaTeX session inside a VM whose state lives
(1) on the local disk, (2) on a LAN image server, (3) on a WAN image
server, and (4) on the WAN with client-side proxy disk caching — and
prints a Figure-4-style comparison.

Run:  python examples/scenario_comparison.py
"""

from repro.core.session import Scenario
from repro.experiments.appbench import run_application_benchmark
from repro.workloads.latex import LatexBenchmark

SCENARIOS = [Scenario.LOCAL, Scenario.LAN, Scenario.WAN,
             Scenario.WAN_CACHED]
ITERATIONS = 5


def main() -> None:
    print(f"LaTeX benchmark, {ITERATIONS} iterations, per scenario:\n")
    print(f"{'scenario':>8}  {'first iter':>10}  {'mean rest':>10}  "
          f"{'flush':>7}")
    baseline = None
    for scenario in SCENARIOS:
        result = run_application_benchmark(
            scenario, lambda: LatexBenchmark(iterations=ITERATIONS), runs=1)
        run = result.runs[0]
        first = run.phases[0].seconds
        rest = [p.seconds for p in run.phases[1:]]
        mean = sum(rest) / len(rest)
        if baseline is None:
            baseline = mean
        print(f"{scenario.value:>8}  {first:9.1f}s  {mean:9.1f}s  "
              f"{result.flush_seconds:6.1f}s"
              f"   (warm response {mean / baseline:.2f}x local)")
    print("\nThe proxy disk cache (WAN+C) brings warm interactive response"
          "\ntimes back to local-disk levels while the VM state stays on"
          "\nthe WAN image server.")


if __name__ == "__main__":
    main()
