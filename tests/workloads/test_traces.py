"""Tests for I/O trace recording and replay."""

import pytest

from repro.vm.image import GuestFile
from repro.workloads.base import ComputeStep, Phase, ReadStep, Workload, WriteStep
from repro.workloads.latex import LatexBenchmark
from repro.workloads.traces import (
    IoTrace,
    TraceEvent,
    TraceRecorder,
    trace_to_workload,
)
from tests.workloads.test_workloads import make_vm, run


def test_recorder_captures_operations_in_order():
    env, vm = make_vm()
    recorder = TraceRecorder(vm, "app")
    w = Workload("t", [Phase("p", [
        ReadStep(GuestFile("a", 16 * 1024)),
        ComputeStep(1.5),
        WriteStep(GuestFile("b", 8 * 1024), fraction=0.5),
    ])])
    run(env, w.run(recorder))
    kinds = [e.kind for e in recorder.trace.events]
    assert kinds == ["read", "compute", "write"]
    assert recorder.trace.events[0].name == "a"
    assert recorder.trace.events[1].seconds == 1.5
    assert recorder.trace.events[2].fraction == 0.5


def test_recorder_is_timing_transparent():
    """Recording adds no simulated time."""
    w_factory = lambda: LatexBenchmark(iterations=2)

    env1, vm1 = make_vm()
    bare = run(env1, w_factory().run(vm1))

    env2, vm2 = make_vm()
    recorded = run(env2, w_factory().run(TraceRecorder(vm2, "latex")))

    assert recorded.total_seconds == pytest.approx(bare.total_seconds)


def test_trace_aggregates():
    trace = IoTrace("app", [
        TraceEvent("read", "a", 100, 1.0),
        TraceEvent("read", "b", 200, 0.5),
        TraceEvent("write", "c", 50, 1.0),
        TraceEvent("compute", seconds=2.0),
    ])
    assert trace.n_events == 4
    assert trace.bytes_read() == 200
    assert trace.bytes_written() == 50
    assert trace.compute_seconds() == 2.0


def test_trace_serialization_roundtrip():
    trace = IoTrace("app", [TraceEvent("read", "x", 100, 0.25),
                            TraceEvent("compute", seconds=1.0)])
    again = IoTrace.from_bytes(trace.to_bytes())
    assert again.application == "app"
    assert again.events == trace.events
    with pytest.raises(ValueError):
        IoTrace.from_bytes(b"garbage\n{}")


def test_replay_reproduces_recorded_run():
    """Record a run, replay the trace in an identical fresh VM: same
    simulated duration (the trace is a faithful workload)."""
    env1, vm1 = make_vm()
    recorder = TraceRecorder(vm1, "latex")
    original = run(env1, LatexBenchmark(iterations=2).run(recorder))

    replay = trace_to_workload(recorder.trace)
    env2, vm2 = make_vm()
    replayed = run(env2, replay.run(vm2))
    assert replayed.total_seconds == pytest.approx(original.total_seconds)


def test_trace_to_workload_rejects_unknown_kind():
    trace = IoTrace("app", [TraceEvent("mystery")])
    with pytest.raises(ValueError):
        trace_to_workload(trace)
