"""Tests for the workload framework and the three benchmark models."""

import pytest

from repro.core.session import LocalMount
from repro.net.topology import Host
from repro.sim import Environment
from repro.vm.image import GuestFile, VmConfig, VmImage
from repro.vm.monitor import VirtualMachine, VmMonitor
from repro.workloads.base import (
    ComputeStep,
    Phase,
    ReadStep,
    Workload,
    WriteStep,
)
from repro.workloads.kernelcompile import KernelCompile
from repro.workloads.latex import LatexBenchmark
from repro.workloads.specseis import SpecSeis


def make_vm(config=None):
    env = Environment()
    host = Host(env, "c", cpus=2)
    cfg = config or VmConfig(name="w", memory_mb=4, disk_gb=0.01,
                             persistent=True, seed=5)
    image = VmImage.create(host.local.fs, "/vm", cfg)
    mount = LocalMount(host.local)
    box = {}

    def opener(env):
        f = yield env.process(mount.open("/vm/disk.vmdk"))
        box["file"] = f

    env.process(opener(env))
    env.run()
    vm = VirtualMachine(env, host, cfg, box["file"], redo=None)
    return env, vm


def run(env, gen):
    box = {}

    def wrapper(env):
        box["value"] = yield env.process(gen)

    env.process(wrapper(env))
    env.run()
    return box["value"]


def test_workload_runs_phases_in_order():
    env, vm = make_vm()
    w = Workload("test", [
        Phase("a", [ComputeStep(1.0)]),
        Phase("b", [ComputeStep(2.0), ReadStep(GuestFile("f", 16 * 1024))]),
    ])
    result = run(env, w.run(vm))
    assert [p.name for p in result.phases] == ["a", "b"]
    assert result.phases[0].seconds == pytest.approx(1.0)
    assert result.phases[1].seconds > 2.0
    assert result.total_seconds == sum(p.seconds for p in result.phases)


def test_workload_phase_seconds_lookup():
    env, vm = make_vm()
    w = Workload("test", [Phase("only", [ComputeStep(0.5)])])
    result = run(env, w.run(vm))
    assert result.phase_seconds("only") == pytest.approx(0.5)
    with pytest.raises(KeyError):
        result.phase_seconds("missing")


def test_write_step_writes_to_disk():
    env, vm = make_vm()
    w = Workload("test", [Phase("w", [WriteStep(GuestFile("o", 32 * 1024))])])
    run(env, w.run(vm))
    assert vm.disk_bytes_written == 32 * 1024


def test_unknown_step_type_rejected():
    env, vm = make_vm()
    w = Workload("test", [Phase("x", ["not-a-step"])])
    box = {}

    def wrapper(env):
        try:
            yield env.process(w.run(vm))
        except TypeError as exc:
            box["err"] = str(exc)

    env.process(wrapper(env))
    env.run()
    assert "unknown step" in box["err"]


def test_total_compute_seconds():
    w = Workload("t", [Phase("a", [ComputeStep(1.5), ComputeStep(2.5)]),
                       Phase("b", [ReadStep(GuestFile("f", 1024))])])
    assert w.total_compute_seconds == pytest.approx(4.0)


# -- the three paper benchmarks ------------------------------------------------

def test_specseis_structure():
    w = SpecSeis()
    assert [p.name for p in w.phases] == ["phase1", "phase2", "phase3",
                                          "phase4"]
    # Phase 4 is the compute-heavy one.
    def cpu(phase):
        return sum(s.seconds for s in phase.steps
                   if isinstance(s, ComputeStep))
    assert cpu(w.phases[3]) > 2 * cpu(w.phases[0])
    # Phase 1 writes the large trace file.
    writes = [s for s in w.phases[0].steps if isinstance(s, WriteStep)]
    assert writes and writes[0].gfile.size == SpecSeis.TRACE_BYTES


def test_latex_structure():
    w = LatexBenchmark()
    assert len(w.phases) == LatexBenchmark.ITERATIONS
    # Every iteration re-reads the same binaries (re-use across iters).
    first_reads = {s.gfile.name for s in w.phases[0].steps
                   if isinstance(s, ReadStep)}
    later_reads = {s.gfile.name for s in w.phases[10].steps
                   if isinstance(s, ReadStep)}
    assert "usr/bin/tex-suite" in first_reads & later_reads
    # But patches a different input each time.
    assert w.phases[0].steps[0].gfile.name != w.phases[1].steps[0].gfile.name


def test_latex_custom_iterations():
    w = LatexBenchmark(iterations=3)
    assert len(w.phases) == 3


def test_kernel_compile_structure():
    w = KernelCompile()
    assert [p.name for p in w.phases] == [
        "make dep", "make bzImage", "make modules", "make modules_install"]
    assert w.guest_cache_bytes == 48 * 1024 * 1024
    reads = sum(1 for p in w.phases for s in p.steps
                if isinstance(s, ReadStep))
    writes = sum(1 for p in w.phases for s in p.steps
                 if isinstance(s, WriteStep))
    assert reads > 100   # many-small-file read pattern
    assert writes > 50


def test_paper_benchmarks_have_guest_cache_hints():
    assert SpecSeis().guest_cache_bytes is not None
    assert LatexBenchmark().guest_cache_bytes is not None
    assert KernelCompile().guest_cache_bytes is not None


def test_latex_runs_end_to_end_in_small_vm():
    env, vm = make_vm()
    w = LatexBenchmark(iterations=2)
    result = run(env, w.run(vm))
    assert len(result.phases) == 2
    # Second iteration benefits from guest caching of the tool binaries.
    assert result.phases[1].seconds < result.phases[0].seconds
