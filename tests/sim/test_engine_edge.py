"""Edge-case tests for the engine: condition failures, interrupts during
resource waits, store/priority interactions."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    FifoResource,
    Interrupt,
    PriorityResource,
    Store,
)


def test_all_of_propagates_child_failure():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("child broke")

    def good(env):
        yield env.timeout(5)

    def parent(env):
        try:
            yield AllOf(env, [env.process(bad(env)), env.process(good(env))])
        except RuntimeError as exc:
            return str(exc)

    p = env.process(parent(env))
    env.run()
    assert p.value == "child broke"


def test_any_of_failure_beats_success():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("fast failure")

    def parent(env):
        try:
            yield AnyOf(env, [env.process(bad(env)), env.timeout(10, "slow")])
        except ValueError:
            return "caught"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught"


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    res = FifoResource(env, capacity=1)
    log = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def waiter(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            res.release(req)  # abandon the queued request
            log.append(("interrupted", env.now))

    env.process(holder(env))
    victim = env.process(waiter(env))

    def interrupter(env):
        yield env.timeout(5)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [("interrupted", 5)]
    assert res.queue_length == 0  # the abandoned request was removed


def test_interrupt_cause_none():
    env = Environment()
    seen = []

    def sleeper(env):
        try:
            yield env.timeout(50)
        except Interrupt as intr:
            seen.append(intr.cause)

    victim = env.process(sleeper(env))

    def actor(env):
        yield env.timeout(1)
        victim.interrupt()

    env.process(actor(env))
    env.run()
    assert seen == [None]


def test_priority_release_of_queued_request():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    held = res.request(priority=0)
    queued = res.request(priority=1)
    res.release(queued)  # cancel before grant
    res.release(held)
    assert res.count == 0


def test_store_items_survive_across_time():
    env = Environment()
    store = Store(env, name="mailbox")
    store.put("early")
    got = []

    def late_consumer(env):
        yield env.timeout(100)
        item = yield store.get()
        got.append((item, env.now))

    env.process(late_consumer(env))
    env.run()
    assert got == [("early", 100)]


def test_nested_all_of():
    env = Environment()

    def proc(env):
        inner1 = AllOf(env, [env.timeout(1, "a"), env.timeout(2, "b")])
        inner2 = AllOf(env, [env.timeout(3, "c")])
        outer = yield AllOf(env, [inner1, inner2])
        return outer

    p = env.process(proc(env))
    env.run()
    assert p.value == [["a", "b"], ["c"]]
    assert env.now == 3


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_run_is_idempotent_after_drain():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    env.process(proc(env))
    env.run()
    env.run()  # nothing left: no-op
    assert env.now == 2


def test_run_until_between_immediate_and_heap_event():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(0)          # immediate queue
        fired.append(("immediate", env.now))
        yield env.timeout(5)          # heap
        fired.append(("heap", env.now))

    env.process(proc(env))
    env.run(until=2)
    # The zero-delay hop fires (it is due at t=0 <= 2); the timed hop
    # stays scheduled and the clock parks exactly at the horizon.
    assert fired == [("immediate", 0)]
    assert env.now == 2
    env.run()
    assert fired == [("immediate", 0), ("heap", 5)]


def test_run_until_exactly_at_heap_event_fires_it():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(3)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=3)
    assert fired == [3]
    assert env.now == 3


def test_peek_with_nonempty_immediate_queue():
    env = Environment()

    def proc(env):
        yield env.timeout(0)
        yield env.timeout(7)

    env.process(proc(env))
    # The bootstrap event sits in the immediate queue: next event is now.
    assert env.peek() == 0
    env.step()                        # bootstrap -> schedules timeout(0)
    assert env.peek() == 0            # immediate timeout still due now
    env.step()                        # fire it -> only the heap event left
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_interrupt_while_waiting_on_all_of():
    env = Environment()
    log = []

    def waiter(env):
        try:
            yield AllOf(env, [env.timeout(10, "a"), env.timeout(20, "b")])
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, env.now))
            yield env.timeout(1)
            log.append(("recovered", env.now))

    victim = env.process(waiter(env))

    def actor(env):
        yield env.timeout(5)
        victim.interrupt("fleet rebalance")

    env.process(actor(env))
    env.run()
    # The interrupt lands mid-wait; the abandoned condition still fires
    # later without resuming the process a second time.
    assert log == [("interrupted", "fleet rebalance", 5), ("recovered", 6)]
    assert env.now == 20


def test_interrupt_while_waiting_on_any_of():
    env = Environment()
    log = []

    def waiter(env):
        try:
            yield AnyOf(env, [env.timeout(10, "slow"), env.timeout(30)])
        except Interrupt:
            log.append(("interrupted", env.now))
            return "aborted"

    victim = env.process(waiter(env))

    def actor(env):
        yield env.timeout(2)
        victim.interrupt()

    env.process(actor(env))
    env.run()
    assert log == [("interrupted", 2)]
    assert victim.value == "aborted"


def test_clock_never_goes_backward():
    env = Environment()
    stamps = []

    def proc(env, delays):
        for d in delays:
            yield env.timeout(d)
            stamps.append(env.now)

    env.process(proc(env, [3, 0, 1]))
    env.process(proc(env, [0, 0, 5]))
    env.run()
    assert stamps == sorted(stamps)
