"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    assert env.now == 2.5


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    env.run()
    assert p.value == 42
    assert p.ok


def test_sequential_timeouts_accumulate():
    env = Environment()
    stamps = []

    def proc(env):
        for d in (1.0, 2.0, 3.0):
            yield env.timeout(d)
            stamps.append(env.now)

    env.process(proc(env))
    env.run()
    assert stamps == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc(env, "a", 2))
    env.process(proc(env, "b", 1))
    env.process(proc(env, "c", 3))
    env.run()
    assert order == [("b", 1), ("a", 2), ("c", 3)]


def test_tie_break_is_creation_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1)
        order.append(name)

    for name in "abcd":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcd")


def test_process_waits_on_process():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-result"
    assert env.now == 5


def test_wait_on_already_finished_process():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 7

    def parent(env, child_proc):
        yield env.timeout(10)
        value = yield child_proc
        return value

    c = env.process(child(env))
    p = env.process(parent(env, c))
    env.run()
    assert p.value == 7
    assert env.now == 10


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        v = yield gate
        log.append((env.now, v))

    def opener(env):
        yield env.timeout(3)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(3, "open")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_throws_into_process():
    env = Environment()
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unobserved_process_failure_raises_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("lost work")

    env.process(proc(env))
    with pytest.raises(ValueError, match="lost work"):
        env.run()


def test_observed_child_failure_is_delivered_not_reraised():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("expected")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError:
            return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_yield_non_event_is_an_error():
    env = Environment()
    caught = []

    def proc(env):
        try:
            yield 42
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught and "non-event" in caught[0]


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        values = yield AllOf(env, [env.timeout(1, "a"), env.timeout(3, "b"),
                                   env.timeout(2, "c")])
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == ["a", "b", "c"]
    assert env.now == 3


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        value = yield AnyOf(env, [env.timeout(5, "slow"), env.timeout(1, "fast")])
        return value

    p = env.process(proc(env))
    env.run(until=10)
    assert p.value == "fast"


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        values = yield AllOf(env, [])
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == []
    assert env.now == 0


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_raises():
    env = Environment()
    env.process(iter_timeout(env, 5))
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt(cause="wake-up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2, "wake-up")]


def test_interrupt_finished_process_raises():
    env = Environment()
    p = env.process(iter_timeout(env, 1))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_is_alive():
    env = Environment()
    p = env.process(iter_timeout(env, 4))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_and_step():
    env = Environment()
    env.process(iter_timeout(env, 3))
    assert env.peek() == 0.0  # bootstrap event
    env.step()
    assert env.peek() == 3.0


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_immediate_return_process():
    env = Environment()

    def proc(env):
        return "instant"
        yield  # pragma: no cover

    p = env.process(proc(env))
    env.run()
    assert p.value == "instant"
    assert env.now == 0


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_large_fanout_all_complete():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i % 7 + 0.1)
        done.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert sorted(done) == list(range(500))
