"""Layer-targeted chaos: stack attachment naming, the layer-fault plan
builders, and injector dispatch through the ``inject_fault`` port."""

import pytest

from repro.sim import Environment
from repro.sim.chaos import attach_stack, layer_fault, layer_outage
from repro.sim.faults import LAYER_KINDS, FaultInjector, FaultKind


class _FakeLayer:
    def __init__(self, role):
        self.ROLE = role
        self.injected = []

    def inject_fault(self, kind, arg=None):
        self.injected.append((kind, arg))


class _FakeStack:
    def __init__(self, roles):
        self.layers = [_FakeLayer(role) for role in roles]


# --------------------------------------------------------------------------
# attach_stack naming
# --------------------------------------------------------------------------

def test_attach_stack_names_layers_by_role_in_stack_order():
    env = Environment()
    injector = FaultInjector(env)
    stack = _FakeStack(["attr-patch", "block-cache", "upstream-rpc"])
    names = attach_stack(injector, "c0", stack)
    assert names == ["c0/attr-patch", "c0/block-cache", "c0/upstream-rpc"]
    plan = layer_fault(FaultKind.CORRUPT_FRAME, "c0/block-cache", at=0.0)
    injector.schedule(plan)               # resolves: really attached
    env.run()
    assert stack.layers[1].injected == [("corrupt-frame", None)]


def test_attach_stack_keeps_first_of_duplicate_roles():
    env = Environment()
    injector = FaultInjector(env)
    stack = _FakeStack(["block-cache", "block-cache"])
    names = attach_stack(injector, "l2", stack)
    assert names == ["l2/block-cache"]    # client-nearest wins
    injector.schedule(layer_fault(
        FaultKind.CORRUPT_FRAME, "l2/block-cache", at=0.0, arg=3))
    env.run()
    assert stack.layers[0].injected == [("corrupt-frame", 3)]
    assert stack.layers[1].injected == []


def test_attach_stack_rejects_reused_stack_names():
    injector = FaultInjector(Environment())
    attach_stack(injector, "c0", _FakeStack(["block-cache"]))
    with pytest.raises(ValueError):
        attach_stack(injector, "c0", _FakeStack(["block-cache"]))


# --------------------------------------------------------------------------
# Plan builders
# --------------------------------------------------------------------------

def test_layer_fault_builders_reject_coarse_kinds():
    for builder in (lambda: layer_fault(FaultKind.LINK_DOWN, "wan", 0.0),
                    lambda: layer_outage(FaultKind.SERVER_CRASH, "srv",
                                         0.0, 1.0)):
        with pytest.raises(ValueError):
            builder()


def test_layer_outage_pairs_failure_with_repair_carrying_the_arg():
    plan = layer_outage(FaultKind.BLACKHOLE_PROC, "l2/upstream-rpc",
                        at=1.0, down_for=2.0, arg="READ")
    assert [(e.at, e.kind, e.target, e.arg) for e in plan.events] == [
        (1.0, FaultKind.BLACKHOLE_PROC, "l2/upstream-rpc", "READ"),
        (3.0, FaultKind.RESTORE_PROC, "l2/upstream-rpc", "READ")]
    stall = layer_outage(FaultKind.STALL_UPLOADS, "c0/file-channel",
                         at=0.5, down_for=1.0)
    assert [e.kind for e in stall.events] == [
        FaultKind.STALL_UPLOADS, FaultKind.RESUME_UPLOADS]


def test_one_shot_layer_kinds_have_no_repair_pair():
    for kind in (FaultKind.CORRUPT_FRAME, FaultKind.DROP_UPLOAD,
                 FaultKind.DELAY_PROC, FaultKind.DUPLICATE_PROC):
        assert kind in LAYER_KINDS
        with pytest.raises(ValueError):
            layer_outage(kind, "t", at=0.0, down_for=1.0)
        assert len(layer_fault(kind, "t", at=0.0)) == 1


# --------------------------------------------------------------------------
# Injector dispatch
# --------------------------------------------------------------------------

def test_injector_dispatches_layer_kinds_through_the_fault_port():
    env = Environment()
    injector = FaultInjector(env)
    layer = _FakeLayer("file-channel")
    injector.attach("c0/file-channel", layer)
    plan = layer_outage(FaultKind.STALL_UPLOADS, "c0/file-channel",
                        at=1.0, down_for=2.0).merged(
        layer_fault(FaultKind.DELAY_PROC, "c0/file-channel",
                    at=2.0, arg=("READ", 0.05)))
    injector.schedule(plan)
    env.run()
    assert layer.injected == [("stall-uploads", None),
                              ("delay-proc", ("READ", 0.05)),
                              ("resume-uploads", None)]
    assert injector.timeline == [(1.0, "stall-uploads", "c0/file-channel"),
                                 (2.0, "delay-proc", "c0/file-channel"),
                                 (3.0, "resume-uploads", "c0/file-channel")]


def test_layer_plans_replay_identical_timelines():
    def run_once():
        env = Environment()
        injector = FaultInjector(env)
        injector.attach("c0/block-cache", _FakeLayer("block-cache"))
        injector.schedule(layer_fault(
            FaultKind.CORRUPT_FRAME, "c0/block-cache", at=0.25, arg=7))
        env.run()
        return injector.timeline

    assert run_once() == run_once()


def test_base_layer_rejects_unknown_fault_kinds():
    from repro.core.layers.base import ProxyLayer

    plain = ProxyLayer()                  # FAULT_PROCS defaults to False
    with pytest.raises(ValueError):
        plain.inject_fault("blackhole-proc", "READ")

    class _ProcLayer(ProxyLayer):
        FAULT_PROCS = True

    faulty = _ProcLayer()
    with pytest.raises(ValueError):
        faulty.inject_fault("corrupt-frame", 0)
